//! The bulk-synchronous engine abstraction shared by the baselines.

/// One task inside a stage: a closure producing a value.
pub type StageTask<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// A bulk-synchronous execution engine: runs a vector of independent
/// tasks to completion (a *stage*) and returns their results in input
/// order. The barrier at the end of each stage is the defining BSP
/// property the paper contrasts with fine-grained dataflow (R5).
pub trait Engine: Sync {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Executes one stage, blocking until every task finishes.
    fn run_stage<T: Send + 'static>(&self, tasks: Vec<StageTask<T>>) -> Vec<T>;
}

/// Convenience: build a stage out of a per-index closure.
pub fn stage_of<T, F>(n: usize, f: F) -> Vec<StageTask<T>>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + Clone + 'static,
{
    (0..n)
        .map(|i| {
            let f = f.clone();
            Box::new(move || f(i)) as StageTask<T>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_of_builds_n_tasks() {
        let tasks = stage_of(4, |i| i * 2);
        assert_eq!(tasks.len(), 4);
        let results: Vec<usize> = tasks.into_iter().map(|t| t()).collect();
        assert_eq!(results, vec![0, 2, 4, 6]);
    }
}
