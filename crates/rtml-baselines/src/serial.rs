//! The single-threaded baseline: the paper's reference point.

use crate::engine::{Engine, StageTask};

/// Runs every task inline on the calling thread, in submission order.
/// Zero scheduling overhead, zero parallelism — the yardstick both the
/// BSP baseline (9x slower in the paper) and the rtml runtime (7x
/// faster) are measured against.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialEngine;

impl Engine for SerialEngine {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn run_stage<T: Send + 'static>(&self, tasks: Vec<StageTask<T>>) -> Vec<T> {
        tasks.into_iter().map(|task| task()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_in_order() {
        let engine = SerialEngine;
        let order = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<StageTask<usize>> = (0..8)
            .map(|i| {
                let order = order.clone();
                Box::new(move || {
                    // Each task must observe exactly `i` predecessors.
                    let seen = order.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(seen, i);
                    i
                }) as StageTask<usize>
            })
            .collect();
        let results = engine.run_stage(tasks);
        assert_eq!(results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_stage_is_fine() {
        let engine = SerialEngine;
        let results: Vec<u32> = engine.run_stage(vec![]);
        assert!(results.is_empty());
    }
}
