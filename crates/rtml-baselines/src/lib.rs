//! Comparator execution engines for the paper's §4.2 evaluation.
//!
//! The paper compares its prototype against (a) a **single-threaded**
//! implementation and (b) a **Spark** implementation, reporting that the
//! Spark version is 9x *slower* than single-threaded for the RL workload
//! (7 ms tasks drown in per-task overhead) while the prototype is 7x
//! *faster* — the famous 63x gap.
//!
//! This crate supplies those two baselines:
//!
//! - [`SerialEngine`] — runs stage tasks inline, in order.
//! - [`BspEngine`] — a faithful *mechanism* model of a driver-coordinated
//!   bulk-synchronous engine: one central driver thread dispatches every
//!   task (paying a configurable per-task launch overhead, serialized at
//!   the driver exactly as in Spark), executors run them, and a stage
//!   barrier joins everything before the next stage may begin. The
//!   overhead constants are calibration knobs (see `DESIGN.md`); the
//!   benchmark harness sweeps them so no conclusion rests on one value.
//!
//! Both engines implement [`Engine`], so workloads can be written once
//! per execution model and compared like-for-like.

pub mod bsp;
pub mod engine;
pub mod serial;

pub use bsp::{BspConfig, BspEngine};
pub use engine::{Engine, StageTask};
pub use serial::SerialEngine;
