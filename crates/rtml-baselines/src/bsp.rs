//! The bulk-synchronous-parallel (Spark-model) baseline.
//!
//! Mechanism, not mock: a single **driver thread** owns task dispatch.
//! For every task it pays a launch overhead (serialization, bookkeeping,
//! RPC — the things that cost Spark milliseconds per task) *serially*,
//! then enqueues the task for the executor pool. The stage ends with a
//! barrier; the next stage cannot start until the last straggler
//! finishes. Per-stage setup adds a further fixed cost.
//!
//! With 7 ms tasks (the paper's RL workload), a driver that needs
//! ~10-20 ms per launch becomes the bottleneck regardless of executor
//! count — which is precisely how a cluster framework ends up 9x
//! *slower* than one thread. The experiment harness sweeps
//! [`BspConfig::per_task_overhead`] so the conclusion is shown as a
//! curve, not a single calibrated point.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::engine::{Engine, StageTask};

/// Tuning for the BSP engine.
#[derive(Clone, Debug)]
pub struct BspConfig {
    /// Executor threads.
    pub workers: usize,
    /// Driver-side cost to launch one task (paid serially per task).
    pub per_task_overhead: Duration,
    /// Fixed cost to start a stage (DAG scheduling, broadcast).
    pub per_stage_overhead: Duration,
}

impl Default for BspConfig {
    fn default() -> Self {
        BspConfig {
            workers: 8,
            per_task_overhead: Duration::from_millis(10),
            per_stage_overhead: Duration::from_millis(100),
        }
    }
}

impl BspConfig {
    /// A configuration with the given worker count and default
    /// overheads.
    pub fn with_workers(workers: usize) -> Self {
        BspConfig {
            workers,
            ..BspConfig::default()
        }
    }

    /// Overheads calibrated so the §4.2 RL workload reproduces the
    /// paper's "Spark is 9x slower than single-threaded" observation
    /// (fine-grained ~7 ms tasks, driver-bound dispatch, per-stage
    /// scheduling). The A1 ablation sweeps this knob so the conclusion
    /// is shown as a curve, not one point.
    pub fn spark_calibrated(workers: usize) -> Self {
        BspConfig {
            workers,
            per_task_overhead: Duration::from_millis(60),
            per_stage_overhead: Duration::from_millis(100),
        }
    }

    /// Overrides the per-task launch overhead builder-style.
    pub fn with_task_overhead(mut self, overhead: Duration) -> Self {
        self.per_task_overhead = overhead;
        self
    }

    /// Overrides the per-stage overhead builder-style.
    pub fn with_stage_overhead(mut self, overhead: Duration) -> Self {
        self.per_stage_overhead = overhead;
        self
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The driver-coordinated BSP engine. See module docs for the model.
pub struct BspEngine {
    config: BspConfig,
    queue_tx: mpsc::Sender<Job>,
    // Kept so the pool drains and joins on drop.
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl BspEngine {
    /// Starts the executor pool.
    pub fn new(config: BspConfig) -> BspEngine {
        let (queue_tx, queue_rx) = mpsc::channel::<Job>();
        let queue_rx = Arc::new(Mutex::new(queue_rx));
        let mut handles = Vec::new();
        for i in 0..config.workers.max(1) {
            let queue_rx = queue_rx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("bsp-exec-{i}"))
                    .spawn(move || loop {
                        // Central queue: one task at a time per executor.
                        let job = {
                            let guard = queue_rx.lock().expect("queue lock");
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => return,
                        }
                    })
                    .expect("spawn bsp executor"),
            );
        }
        BspEngine {
            config,
            queue_tx,
            handles,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &BspConfig {
        &self.config
    }
}

impl Engine for BspEngine {
    fn name(&self) -> &'static str {
        "bsp"
    }

    fn run_stage<T: Send + 'static>(&self, tasks: Vec<StageTask<T>>) -> Vec<T> {
        // Stage setup (DAG scheduling, closure broadcast).
        spin_for(self.config.per_stage_overhead);

        let n = tasks.len();
        let (done_tx, done_rx) = mpsc::channel::<(usize, T)>();
        for (index, task) in tasks.into_iter().enumerate() {
            // The driver launches tasks one at a time: this loop *is*
            // the central bottleneck being modelled.
            spin_for(self.config.per_task_overhead);
            let done_tx = done_tx.clone();
            let job: Job = Box::new(move || {
                let value = task();
                let _ = done_tx.send((index, value));
            });
            self.queue_tx.send(job).expect("executor pool alive");
        }
        drop(done_tx);

        // Barrier: collect every result before returning.
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (index, value) = done_rx.recv().expect("task result");
            results[index] = Some(value);
        }
        results
            .into_iter()
            .map(|v| v.expect("every slot filled"))
            .collect()
    }
}

impl Drop for BspEngine {
    fn drop(&mut self) {
        // Close the queue; executors drain and exit.
        let (dead_tx, _) = mpsc::channel();
        self.queue_tx = dead_tx;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Burns wall-clock time like real driver-side work would (serialization
/// is CPU work, not sleep — but for overheads ≥ 1 ms the distinction is
/// immaterial and sleep is kinder to test machines).
fn spin_for(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    if duration < Duration::from_millis(2) {
        rtml_common::time::busy_work(duration);
    } else {
        std::thread::sleep(duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    fn fast_config(workers: usize) -> BspConfig {
        BspConfig {
            workers,
            per_task_overhead: Duration::ZERO,
            per_stage_overhead: Duration::ZERO,
        }
    }

    #[test]
    fn results_keep_input_order() {
        let engine = BspEngine::new(fast_config(4));
        let tasks: Vec<StageTask<usize>> = (0..32usize)
            .map(|i| {
                Box::new(move || {
                    // Reverse sleep order so completion order differs
                    // from submission order.
                    std::thread::sleep(Duration::from_millis((32 - i) as u64 % 5));
                    i
                }) as StageTask<usize>
            })
            .collect();
        let results = engine.run_stage(tasks);
        assert_eq!(results, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn executes_in_parallel() {
        let engine = BspEngine::new(fast_config(8));
        let start = Instant::now();
        let tasks: Vec<StageTask<()>> = (0..8)
            .map(|_| Box::new(|| std::thread::sleep(Duration::from_millis(50))) as StageTask<()>)
            .collect();
        engine.run_stage(tasks);
        // 8 x 50 ms with 8 workers: well under the 400 ms serial time.
        assert!(start.elapsed() < Duration::from_millis(300));
    }

    #[test]
    fn stage_is_a_barrier() {
        let engine = BspEngine::new(fast_config(4));
        let counter = Arc::new(AtomicUsize::new(0));
        let c1 = counter.clone();
        let stage1: Vec<StageTask<()>> = (0..16)
            .map(|_| {
                let c = c1.clone();
                Box::new(move || {
                    std::thread::sleep(Duration::from_millis(5));
                    c.fetch_add(1, Ordering::SeqCst);
                }) as StageTask<()>
            })
            .collect();
        engine.run_stage(stage1);
        // After the barrier every stage-1 effect is visible.
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn per_task_overhead_is_serialized_at_driver() {
        let engine = BspEngine::new(BspConfig {
            workers: 8,
            per_task_overhead: Duration::from_millis(5),
            per_stage_overhead: Duration::ZERO,
        });
        let start = Instant::now();
        let tasks: Vec<StageTask<()>> = (0..10).map(|_| Box::new(|| ()) as StageTask<()>).collect();
        engine.run_stage(tasks);
        // 10 launches x 5 ms, serial at the driver, regardless of the 8
        // idle executors.
        assert!(
            start.elapsed() >= Duration::from_millis(50),
            "took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn stage_overhead_applies_once_per_stage() {
        let engine = BspEngine::new(BspConfig {
            workers: 2,
            per_task_overhead: Duration::ZERO,
            per_stage_overhead: Duration::from_millis(30),
        });
        let start = Instant::now();
        let _: Vec<()> = engine.run_stage(vec![Box::new(|| ())]);
        let one = start.elapsed();
        assert!(one >= Duration::from_millis(30));
        let start = Instant::now();
        let _: Vec<()> = engine.run_stage(vec![Box::new(|| ()), Box::new(|| ())]);
        let two = start.elapsed();
        // Same stage overhead even with two tasks.
        assert!(two < Duration::from_millis(90), "took {two:?}");
    }

    #[test]
    fn empty_stage_pays_only_stage_overhead() {
        let engine = BspEngine::new(fast_config(2));
        let results: Vec<u8> = engine.run_stage(vec![]);
        assert!(results.is_empty());
    }

    #[test]
    fn drop_joins_executors() {
        let engine = BspEngine::new(fast_config(4));
        let _: Vec<()> = engine.run_stage(vec![Box::new(|| ())]);
        drop(engine); // Must not hang.
    }
}
