//! Eviction + reconstruction interplay: bounded stores must not lose
//! data that lineage can rebuild (DESIGN.md §7).

use std::time::Duration;

use rtml_common::error::Error;
use rtml_runtime::{Cluster, ClusterConfig, NodeConfig};

fn tiny_store_cluster(capacity: u64) -> Cluster {
    Cluster::start(ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(2).with_store_capacity(capacity)],
        ..ClusterConfig::default()
    })
    .unwrap()
}

#[test]
fn evicted_objects_are_rebuilt_by_lineage() {
    // Store fits ~4 of the 100 KB results at a time; producing 12 of
    // them forces evictions. Every result must still be retrievable.
    let cluster = tiny_store_cluster(450 * 1024);
    let make = cluster.register_fn1("make_block", |i: u64| Ok(vec![i as u8; 100 * 1024]));
    let driver = cluster.driver();
    let futs: Vec<_> = (0..12u64)
        .map(|i| driver.submit1(&make, i).unwrap())
        .collect();
    // Materialize everything (later puts evict earlier results).
    let (ready, pending) = driver.wait(&futs, futs.len(), Duration::from_secs(60));
    assert_eq!(ready.len(), 12);
    assert!(pending.is_empty());

    // Early results have likely been evicted; get() must replay their
    // producers transparently.
    for (i, fut) in futs.iter().enumerate() {
        let block = driver.get(fut).unwrap();
        assert_eq!(block.len(), 100 * 1024);
        assert_eq!(block[0], i as u8, "object {i} corrupted");
    }
    // At least one eviction must actually have happened for this test
    // to be meaningful.
    let report = cluster.profile();
    assert!(
        report.evictions > 0,
        "expected evictions with a 450 KB store and 12 x 100 KB objects"
    );
    cluster.shutdown();
}

#[test]
fn eviction_keeps_store_within_capacity() {
    let capacity = 300 * 1024;
    let cluster = tiny_store_cluster(capacity);
    let make = cluster.register_fn1("make_blk2", |i: u64| Ok(vec![i as u8; 64 * 1024]));
    let driver = cluster.driver();
    for i in 0..20u64 {
        let fut = driver.submit1(&make, i).unwrap();
        let block = driver.get(&fut).unwrap();
        assert_eq!(block.len(), 64 * 1024);
        let store = driver
            .services()
            .store(rtml_common::ids::NodeId(0))
            .unwrap();
        assert!(
            store.used_bytes() <= capacity,
            "store exceeded capacity: {}",
            store.used_bytes()
        );
    }
    cluster.shutdown();
}

#[test]
fn oversized_result_surfaces_as_error_not_hang() {
    // A result bigger than the whole store can never seal; the consumer
    // must get a timeout rather than wedging forever.
    let cluster = Cluster::start(ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(2).with_store_capacity(32 * 1024)],
        default_get_timeout: Duration::from_millis(700),
        ..ClusterConfig::default()
    })
    .unwrap();
    let make = cluster.register_fn0("too_big", || Ok(vec![1u8; 256 * 1024]));
    let driver = cluster.driver();
    let fut = driver.submit0(&make).unwrap();
    match driver.get(&fut) {
        Err(Error::Timeout) => {}
        other => panic!("expected timeout for unsealable result, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn evicted_put_object_reports_broken_lineage() {
    // Puts carry no lineage; if eviction claims the only copy, consumers
    // must fail fast with a broken-lineage error.
    let cluster = tiny_store_cluster(200 * 1024);
    let make = cluster.register_fn1("filler", |i: u64| Ok(vec![i as u8; 80 * 1024]));
    let driver = cluster.driver();
    let pinned_value = driver.put(&vec![9u8; 64 * 1024]).unwrap();
    // Force evictions until the put object is displaced.
    for i in 0..6u64 {
        let fut = driver.submit1(&make, i).unwrap();
        let _ = driver.get(&fut).unwrap();
    }
    match driver.get_timeout(&pinned_value, Duration::from_secs(5)) {
        Ok(v) => assert_eq!(v.len(), 64 * 1024), // survived eviction: fine
        Err(Error::TaskFailed { message, .. }) => {
            assert!(message.contains("lineage"), "{message}");
        }
        Err(Error::Timeout) => {} // also acceptable: value gone, no lineage
        Err(other) => panic!("unexpected error {other:?}"),
    }
    cluster.shutdown();
}
