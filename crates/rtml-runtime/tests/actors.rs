//! Actor-extension tests: stateful workers with ordered method
//! execution and object-store-integrated results.

use std::collections::VecDeque;
use std::time::Duration;

use rtml_common::error::Error;
use rtml_common::ids::NodeId;
use rtml_runtime::{Cluster, ClusterConfig};

fn cluster() -> Cluster {
    Cluster::start(ClusterConfig::local(2, 2)).unwrap()
}

#[test]
fn actor_state_accumulates_across_calls() {
    let cluster = cluster();
    let actor = cluster
        .spawn_actor("acc", NodeId(0), Vec::<i64>::new)
        .unwrap();
    let driver = cluster.driver();
    for i in 0..5 {
        let fut = actor
            .call(move |v| {
                v.push(i);
                Ok(v.len() as i64)
            })
            .unwrap();
        assert_eq!(driver.get(&fut).unwrap(), i + 1);
    }
    let contents = actor.call(|v| Ok(v.clone())).unwrap();
    assert_eq!(driver.get(&contents).unwrap(), vec![0, 1, 2, 3, 4]);
    actor.stop();
    cluster.shutdown();
}

#[test]
fn actor_results_compose_with_tasks() {
    // Actor results are ordinary objects: pass them into remote tasks.
    let cluster = cluster();
    let double = cluster.register_fn1("double_act", |x: i64| Ok(x * 2));
    let actor = cluster.spawn_actor("counter2", NodeId(1), || 0i64).unwrap();
    let driver = cluster.driver();
    let fut = actor
        .call(|c| {
            *c += 21;
            Ok(*c)
        })
        .unwrap();
    let doubled = driver.submit1(&double, &fut).unwrap();
    assert_eq!(driver.get(&doubled).unwrap(), 42);
    actor.stop();
    cluster.shutdown();
}

#[test]
fn actor_panic_is_contained() {
    let cluster = cluster();
    let actor = cluster.spawn_actor("fragile2", NodeId(0), || 7i64).unwrap();
    let driver = cluster.driver();
    let boom = actor
        .call(|_s| -> rtml_common::error::Result<i64> { panic!("actor crash") })
        .unwrap();
    match driver.get(&boom) {
        Err(Error::TaskFailed { message, .. }) => {
            assert!(message.contains("panicked"), "{message}");
        }
        other => panic!("expected contained panic, got {other:?}"),
    }
    // State survives the panicking call (catch_unwind isolation).
    let still = actor.call(|s| Ok(*s)).unwrap();
    assert_eq!(driver.get(&still).unwrap(), 7);
    actor.stop();
    cluster.shutdown();
}

#[test]
fn many_actors_coexist() {
    let cluster = cluster();
    let driver = cluster.driver();
    let actors: Vec<_> = (0..6)
        .map(|i| {
            cluster
                .spawn_actor(&format!("a{i}"), NodeId((i % 2) as u32), move || i as i64)
                .unwrap()
        })
        .collect();
    let futs: Vec<_> = actors
        .iter()
        .map(|a| a.call(|s| Ok(*s * 10)).unwrap())
        .collect();
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(driver.get(fut).unwrap(), i as i64 * 10);
    }
    for a in actors {
        a.stop();
    }
    cluster.shutdown();
}

#[test]
fn actor_queue_drains_in_fifo_order() {
    let cluster = cluster();
    let actor = cluster
        .spawn_actor("fifo", NodeId(0), VecDeque::<u64>::new)
        .unwrap();
    let driver = cluster.driver();
    // Flood calls without getting; ordering must still hold.
    let futs: Vec<_> = (0..50u64)
        .map(|i| {
            actor
                .call(move |q| {
                    q.push_back(i);
                    Ok(q.len() as u64)
                })
                .unwrap()
        })
        .collect();
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(driver.get(fut).unwrap(), i as u64 + 1);
    }
    actor.stop();
    cluster.shutdown();
}

#[test]
fn spawn_on_dead_node_errors() {
    let cluster = cluster();
    cluster.kill_node(NodeId(1)).unwrap();
    let err = cluster
        .spawn_actor("ghost", NodeId(1), || 0u64)
        .err()
        .expect("must fail");
    assert_eq!(err, Error::NodeDown(NodeId(1)));
    cluster.shutdown();
}

#[test]
fn wait_works_on_actor_results() {
    let cluster = cluster();
    let actor = cluster.spawn_actor("waiter", NodeId(0), || 0u64).unwrap();
    let driver = cluster.driver();
    let slow = actor
        .call(|_s| {
            std::thread::sleep(Duration::from_millis(300));
            Ok(1u64)
        })
        .unwrap();
    let fast_after = actor.call(|_s| Ok(2u64)).unwrap();
    // Both ride the same mailbox: neither is ready quickly...
    let (ready, pending) = driver.wait(&[slow, fast_after], 1, Duration::from_millis(50));
    assert!(ready.is_empty());
    assert_eq!(pending.len(), 2);
    // ...but both complete in order eventually.
    let (ready, pending) = driver.wait(&[slow, fast_after], 2, Duration::from_secs(10));
    assert_eq!(ready.len(), 2);
    assert!(pending.is_empty());
    actor.stop();
    cluster.shutdown();
}
