//! End-to-end tests of the runtime: the paper's API semantics (§3.1),
//! scheduling behaviour (§3.2), and fault tolerance (R6).

use std::time::{Duration, Instant};

use rtml_common::error::Error;
use rtml_common::ids::{NodeId, WorkerId};
use rtml_common::resources::Resources;
use rtml_common::task::TaskState;
use rtml_net::LatencyModel;
use rtml_runtime::{Cluster, ClusterConfig, NodeConfig, TaskOptions};
use rtml_sched::SpillMode;

fn small_cluster() -> Cluster {
    Cluster::start(ClusterConfig::local(2, 2)).unwrap()
}

#[test]
fn submit_and_get_round_trip() {
    let cluster = small_cluster();
    let square = cluster.register_fn1("square", |x: i64| Ok(x * x));
    let driver = cluster.driver();
    let fut = driver.submit1(&square, 12).unwrap();
    assert_eq!(driver.get(&fut).unwrap(), 144);
    cluster.shutdown();
}

#[test]
fn get_many_returns_values_in_order_with_duplicates() {
    let cluster = small_cluster();
    let square = cluster.register_fn1("gm_square", |x: i64| Ok(x * x));
    let driver = cluster.driver();
    let futs: Vec<_> = (0..16)
        .map(|i| driver.submit1(&square, i).unwrap())
        .collect();
    // Input order preserved, duplicates allowed.
    let mut query = futs.clone();
    query.push(futs[3].clone());
    query.push(futs[3].clone());
    let values = driver.get_many(&query).unwrap();
    let expect: Vec<i64> = (0..16).map(|i| i * i).chain([9, 9]).collect();
    assert_eq!(values, expect);
    cluster.shutdown();
}

#[test]
fn get_many_matches_get_loop_across_nodes() {
    // Values produced across a multi-node cluster: get_many must agree
    // with a plain get loop (it only batches how bytes move).
    let cluster = Cluster::start(
        ClusterConfig::local(3, 2).with_latency(LatencyModel::Constant(Duration::from_micros(200))),
    )
    .unwrap();
    let triple = cluster.register_fn1("gm_triple", |x: i64| Ok(x * 3));
    let driver = cluster.driver();
    let futs: Vec<_> = (0..24)
        .map(|i| driver.submit1(&triple, i).unwrap())
        .collect();
    let batched = driver.get_many(&futs).unwrap();
    let looped: Vec<i64> = futs.iter().map(|f| driver.get(f).unwrap()).collect();
    assert_eq!(batched, looped);
    cluster.shutdown();
}

#[test]
fn get_many_propagates_task_errors() {
    let cluster = small_cluster();
    let ok = cluster.register_fn1("gm_ok", |x: i64| Ok(x));
    let boom = cluster.register_fn0("gm_boom", || -> rtml_common::error::Result<i64> {
        Err(Error::InvalidArgument("nope".into()))
    });
    let driver = cluster.driver();
    let good = driver.submit1(&ok, 5).unwrap();
    let bad = driver.submit0(&boom).unwrap();
    let err = driver.get_many(&[good, bad]).unwrap_err();
    assert!(matches!(err, Error::TaskFailed { .. }), "{err:?}");
    cluster.shutdown();
}

#[test]
fn profile_reports_prefetches_and_suppressed_duplicates() {
    // Remote-dependency tasks on a latency fabric: the consuming node's
    // scheduler must prefetch the dependencies while tasks queue, and
    // the profile must surface the counters.
    let cluster = Cluster::start(
        ClusterConfig::local(2, 1).with_latency(LatencyModel::Constant(Duration::from_micros(500))),
    )
    .unwrap();
    let pass = cluster.register_fn1("pf_pass", |x: i64| Ok(x));
    let driver = cluster.driver();
    // Produce values (resident wherever their tasks ran), then force
    // consumers that need them as remote dependencies via fan-in.
    let sources: Vec<_> = (0..8).map(|i| driver.submit1(&pass, i).unwrap()).collect();
    let sinks: Vec<_> = sources
        .iter()
        .map(|s| driver.submit1(&pass, s).unwrap())
        .collect();
    let values = driver.get_many(&sinks).unwrap();
    assert_eq!(values, (0..8).collect::<Vec<i64>>());
    let report = cluster.profile();
    // Transfers implies the data plane moved objects; any prefetch that
    // was issued must be visible, with hits bounded by issues.
    assert!(report.prefetch_hits <= report.prefetches_issued);
    assert!(report.prefetch_hit_rate() <= 1.0);
    cluster.shutdown();
}

#[test]
fn futures_compose_into_dags() {
    let cluster = small_cluster();
    let add = cluster.register_fn2("add", |a: i64, b: i64| Ok(a + b));
    let driver = cluster.driver();
    // Diamond: d = (a+b) + (a+c).
    let ab = driver.submit2(&add, 1, 2).unwrap();
    let ac = driver.submit2(&add, 1, 3).unwrap();
    let d = driver.submit2(&add, &ab, &ac).unwrap();
    assert_eq!(driver.get(&d).unwrap(), 7);
    cluster.shutdown();
}

#[test]
fn deep_chain_executes_in_order() {
    let cluster = small_cluster();
    let inc = cluster.register_fn1("inc", |x: i64| Ok(x + 1));
    let driver = cluster.driver();
    let mut fut = driver.submit1(&inc, 0).unwrap();
    for _ in 0..49 {
        fut = driver.submit1(&inc, &fut).unwrap();
    }
    assert_eq!(driver.get(&fut).unwrap(), 50);
    cluster.shutdown();
}

#[test]
fn nested_tasks_build_dynamic_graphs() {
    // R3: a task spawns subtasks and aggregates them with get.
    let cluster = small_cluster();
    let leaf = cluster.register_fn1("leaf", |x: i64| Ok(x * 10));
    let fanout = cluster.register_fn1_ctx("fanout", move |ctx, n: i64| {
        let futs: Vec<_> = (0..n).map(|i| ctx.submit1(&leaf, i).unwrap()).collect();
        let mut total = 0;
        for fut in &futs {
            total += ctx.get(fut)?;
        }
        Ok(total)
    });
    let driver = cluster.driver();
    let fut = driver.submit1(&fanout, 5).unwrap();
    // 10*(0+1+2+3+4) = 100.
    assert_eq!(driver.get(&fut).unwrap(), 100);
    cluster.shutdown();
}

#[test]
fn put_then_pass_as_argument() {
    let cluster = small_cluster();
    let sum = cluster.register_fn1("sum_vec", |v: Vec<i64>| Ok(v.iter().sum::<i64>()));
    let driver = cluster.driver();
    let data = driver.put(&vec![1i64, 2, 3, 4]).unwrap();
    let fut = driver.submit1(&sum, &data).unwrap();
    assert_eq!(driver.get(&fut).unwrap(), 10);
    // put objects can also be fetched directly.
    assert_eq!(driver.get(&data).unwrap(), vec![1, 2, 3, 4]);
    cluster.shutdown();
}

#[test]
fn wait_returns_completed_subset() {
    let cluster = small_cluster();
    let sleepy = cluster.register_fn1("sleepy", |ms: u64| {
        std::thread::sleep(Duration::from_millis(ms));
        Ok(ms)
    });
    let driver = cluster.driver();
    let fast = driver.submit1(&sleepy, 5u64).unwrap();
    let slow = driver.submit1(&sleepy, 3_000u64).unwrap();
    let (ready, pending) = driver.wait(&[fast, slow], 1, Duration::from_secs(2));
    assert_eq!(ready, vec![fast]);
    assert_eq!(pending, vec![slow]);
    cluster.shutdown();
}

#[test]
fn wait_timeout_returns_empty_ready() {
    let cluster = small_cluster();
    let sleepy = cluster.register_fn1("sleepy2", |ms: u64| {
        std::thread::sleep(Duration::from_millis(ms));
        Ok(ms)
    });
    let driver = cluster.driver();
    let slow = driver.submit1(&sleepy, 2_000u64).unwrap();
    let start = Instant::now();
    let (ready, pending) = driver.wait(&[slow], 1, Duration::from_millis(50));
    assert!(ready.is_empty());
    assert_eq!(pending.len(), 1);
    assert!(start.elapsed() < Duration::from_secs(1));
    cluster.shutdown();
}

#[test]
fn application_errors_propagate_to_get() {
    let cluster = small_cluster();
    let fail = cluster.register_fn0("fail", || -> rtml_common::error::Result<i64> {
        Err(Error::InvalidArgument("bad input".into()))
    });
    let driver = cluster.driver();
    let fut = driver.submit0(&fail).unwrap();
    match driver.get(&fut) {
        Err(Error::TaskFailed { message, .. }) => {
            assert!(message.contains("bad input"), "{message}");
        }
        other => panic!("expected TaskFailed, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn errors_cascade_through_dataflow() {
    let cluster = small_cluster();
    let fail = cluster.register_fn0("fail2", || -> rtml_common::error::Result<i64> {
        Err(Error::InvalidArgument("root cause".into()))
    });
    let inc = cluster.register_fn1("inc2", |x: i64| Ok(x + 1));
    let driver = cluster.driver();
    let bad = driver.submit0(&fail).unwrap();
    let downstream = driver.submit1(&inc, &bad).unwrap();
    match driver.get(&downstream) {
        Err(Error::TaskFailed { message, .. }) => {
            assert!(message.contains("root cause"), "{message}");
        }
        other => panic!("expected cascaded failure, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn panics_become_task_failures() {
    let cluster = small_cluster();
    let boom = cluster.register_fn0("boom", || -> rtml_common::error::Result<i64> {
        panic!("kaboom");
    });
    let driver = cluster.driver();
    let fut = driver.submit0(&boom).unwrap();
    match driver.get(&fut) {
        Err(Error::TaskFailed { message, .. }) => {
            assert!(message.contains("kaboom"), "{message}");
        }
        other => panic!("expected panic capture, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn unschedulable_demand_fails_fast() {
    let cluster = small_cluster(); // CPU-only nodes
    let f = cluster.register_fn0("gpu_hungry", || Ok(1i64));
    let driver = cluster.driver();
    let fut = driver.submit0_opts(&f, TaskOptions::gpu(4.0)).unwrap();
    match driver.get_timeout(&fut, Duration::from_secs(5)) {
        Err(Error::TaskFailed { message, .. }) => {
            assert!(message.contains("unschedulable"), "{message}");
        }
        other => panic!("expected unschedulable failure, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn gpu_tasks_route_to_gpu_nodes() {
    let config = ClusterConfig {
        nodes: vec![
            NodeConfig::cpu_only(2),
            NodeConfig::cpu_only(2).with_gpus(1.0),
        ],
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).unwrap();
    let whereami = cluster.register_fn0_ctx("whereami", |ctx| Ok(ctx.worker().node.0 as i64));
    let driver = cluster.driver();
    let fut = driver
        .submit0_opts(&whereami, TaskOptions::resources(Resources::new(1.0, 1.0)))
        .unwrap();
    // Must run on node 1 (the only GPU node), even though the driver is
    // on node 0.
    assert_eq!(driver.get(&fut).unwrap(), 1);
    cluster.shutdown();
}

#[test]
fn heavy_fanout_spreads_across_nodes() {
    let config = ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(2); 4],
        spill: SpillMode::Hybrid { queue_threshold: 2 },
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).unwrap();
    let whereami = cluster.register_fn1_ctx("whereami2", |ctx, _i: i64| {
        std::thread::sleep(Duration::from_millis(20));
        Ok(ctx.worker().node.0 as i64)
    });
    let driver = cluster.driver();
    let futs: Vec<_> = (0..32)
        .map(|i| driver.submit1(&whereami, i).unwrap())
        .collect();
    let mut nodes_used = std::collections::HashSet::new();
    for fut in &futs {
        nodes_used.insert(driver.get(fut).unwrap());
    }
    assert!(
        nodes_used.len() >= 2,
        "spillover should engage more than one node, got {nodes_used:?}"
    );
    cluster.shutdown();
}

#[test]
fn killed_worker_task_is_reconstructed() {
    let cluster = Cluster::start(ClusterConfig::local(1, 2)).unwrap();
    let slow_id = cluster.register_fn1("slow_square", |x: i64| {
        std::thread::sleep(Duration::from_millis(300));
        Ok(x * x)
    });
    let driver = cluster.driver();
    let fut = driver.submit1(&slow_id, 9).unwrap();
    // Let the task start, then kill the worker running it.
    std::thread::sleep(Duration::from_millis(100));
    let running: Vec<(_, TaskState)> = driver
        .services()
        .tasks
        .scan_states()
        .into_iter()
        .filter(|(_, s)| matches!(s, TaskState::Running(_)))
        .collect();
    assert!(!running.is_empty(), "task should be running");
    if let TaskState::Running(worker) = running[0].1 {
        cluster.kill_worker(worker).unwrap();
    }
    // get() must trigger lineage replay and still produce the answer.
    assert_eq!(driver.get(&fut).unwrap(), 81);
    assert!(cluster.reconstructions() >= 1);
    cluster.shutdown();
}

#[test]
fn killed_node_objects_are_reconstructed() {
    let config = ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(2), NodeConfig::cpu_only(2)],
        // Force everything onto remote queues aggressively.
        spill: SpillMode::Hybrid { queue_threshold: 0 },
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).unwrap();
    let make = cluster.register_fn1("make_data", |x: i64| Ok(vec![x; 100]));
    let driver = cluster.driver();
    let futs: Vec<_> = (0..8).map(|i| driver.submit1(&make, i).unwrap()).collect();
    // Materialize everything first.
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(driver.get(fut).unwrap(), vec![i as i64; 100]);
    }
    // Kill node 1; objects that lived only there are gone.
    cluster.kill_node(NodeId(1)).unwrap();
    // All values must still be retrievable (local copies or replay).
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(
            driver.get(fut).unwrap(),
            vec![i as i64; 100],
            "object {i} lost forever"
        );
    }
    cluster.shutdown();
}

#[test]
fn node_restart_rejoins_cluster() {
    let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
    let f = cluster.register_fn1("echo", |x: i64| Ok(x));
    let driver = cluster.driver();
    let node_config = cluster.node_config(NodeId(1)).unwrap();
    cluster.kill_node(NodeId(1)).unwrap();
    assert_eq!(cluster.alive_nodes(), vec![NodeId(0)]);
    cluster.restart_node(NodeId(1), node_config).unwrap();
    assert_eq!(cluster.alive_nodes(), vec![NodeId(0), NodeId(1)]);
    // The cluster still works end to end.
    let fut = driver.submit1(&f, 5).unwrap();
    assert_eq!(driver.get(&fut).unwrap(), 5);
    cluster.shutdown();
}

#[test]
fn lost_put_objects_report_broken_lineage() {
    let config = ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(2), NodeConfig::cpu_only(2)],
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).unwrap();
    let driver = cluster.driver(); // homed on node 0
    let data = driver.put(&42u64).unwrap();
    cluster.kill_node(NodeId(0)).unwrap();
    // The only copy died with node 0 and puts carry no lineage: the
    // error must say so rather than hang.
    let driver2 = cluster.driver(); // homed on node 1 now
    match driver2.get_timeout(&data, Duration::from_secs(5)) {
        Err(Error::TaskFailed { message, .. }) => {
            assert!(message.contains("lineage"), "{message}");
        }
        other => panic!("expected broken-lineage failure, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn remote_latency_affects_cross_node_tasks() {
    // The task must run on node 1 (only GPU there) while the driver and
    // the global scheduler live on node 0: the placement message pays one
    // 3 ms hop and the result fetch pays two more.
    let config = ClusterConfig {
        nodes: vec![
            NodeConfig::cpu_only(2),
            NodeConfig::cpu_only(2).with_gpus(1.0),
        ],
        latency: LatencyModel::Constant(Duration::from_millis(3)),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).unwrap();
    let f = cluster.register_fn0("quick", || Ok(1i64));
    let driver = cluster.driver();
    let start = Instant::now();
    let fut = driver.submit0_opts(&f, TaskOptions::gpu(1.0)).unwrap();
    assert_eq!(driver.get(&fut).unwrap(), 1);
    assert!(
        start.elapsed() >= Duration::from_millis(6),
        "remote task should pay network hops, took {:?}",
        start.elapsed()
    );
    cluster.shutdown();
}

#[test]
fn actor_methods_execute_in_order() {
    let cluster = small_cluster();
    let actor = cluster.spawn_actor("counter", NodeId(0), || 0i64).unwrap();
    let driver = cluster.driver();
    let mut futs = Vec::new();
    for i in 1..=10 {
        futs.push(
            actor
                .call(move |state| {
                    *state += i;
                    Ok(*state)
                })
                .unwrap(),
        );
    }
    // Running totals prove strict ordering: 1, 3, 6, 10, ...
    let mut expected = 0;
    for (i, fut) in futs.iter().enumerate() {
        expected += (i + 1) as i64;
        assert_eq!(driver.get(fut).unwrap(), expected);
    }
    actor.stop();
    cluster.shutdown();
}

#[test]
fn actor_errors_propagate() {
    let cluster = small_cluster();
    let actor = cluster.spawn_actor("fragile", NodeId(0), || 0i64).unwrap();
    let driver = cluster.driver();
    let fut = actor
        .call(|_state| -> rtml_common::error::Result<i64> {
            Err(Error::InvalidArgument("actor refused".into()))
        })
        .unwrap();
    match driver.get(&fut) {
        Err(Error::TaskFailed { message, .. }) => {
            assert!(message.contains("actor refused"), "{message}");
        }
        other => panic!("expected actor error, got {other:?}"),
    }
    // The actor survives failed calls.
    let ok = actor
        .call(|state| {
            *state += 1;
            Ok(*state)
        })
        .unwrap();
    assert_eq!(driver.get(&ok).unwrap(), 1);
    actor.stop();
    cluster.shutdown();
}

#[test]
fn profile_report_covers_run() {
    let cluster = small_cluster();
    let f = cluster.register_fn1("plus1", |x: i64| Ok(x + 1));
    let driver = cluster.driver();
    let futs: Vec<_> = (0..10).map(|i| driver.submit1(&f, i).unwrap()).collect();
    for fut in &futs {
        driver.get(fut).unwrap();
    }
    let report = cluster.profile();
    assert!(
        report.tasks.len() >= 10,
        "profile saw {}",
        report.tasks.len()
    );
    assert!(report.seals >= 10);
    let trace = report.chrome_trace();
    assert!(trace.starts_with('[') && trace.ends_with(']'));
    assert!(report.summary().contains("tasks:"));
    cluster.shutdown();
}

#[test]
fn many_drivers_do_not_collide() {
    let cluster = small_cluster();
    let f = cluster.register_fn1("ident", |x: i64| Ok(x));
    let d1 = cluster.driver();
    let d2 = cluster.driver();
    let f1 = d1.submit1(&f, 1).unwrap();
    let f2 = d2.submit1(&f, 2).unwrap();
    assert_ne!(f1.id(), f2.id());
    assert_eq!(d1.get(&f1).unwrap(), 1);
    assert_eq!(d2.get(&f2).unwrap(), 2);
    cluster.shutdown();
}

#[test]
fn throughput_thousand_tasks() {
    let cluster = Cluster::start(ClusterConfig::local(2, 4).without_event_log()).unwrap();
    let f = cluster.register_fn1("tiny", |x: u64| Ok(x));
    let driver = cluster.driver();
    let futs: Vec<_> = (0..1000u64)
        .map(|i| driver.submit1(&f, i).unwrap())
        .collect();
    let (ready, pending) = driver.wait(&futs, 1000, Duration::from_secs(60));
    assert_eq!(ready.len(), 1000);
    assert!(pending.is_empty());
    cluster.shutdown();
}

#[test]
fn kill_worker_on_dead_node_errors() {
    let cluster = small_cluster();
    cluster.kill_node(NodeId(1)).unwrap();
    let err = cluster
        .kill_worker(WorkerId::new(NodeId(1), 0))
        .unwrap_err();
    assert_eq!(err, Error::NodeDown(NodeId(1)));
    cluster.shutdown();
}
