//! The user-facing API surface: submission contexts for drivers and for
//! running tasks.
//!
//! A [`Caller`] implements the paper's five API elements (§3.1): create
//! tasks without blocking, pass values or futures as arguments, create
//! tasks from within tasks, `get`, and `wait`. [`Driver`] wraps a
//! `Caller` rooted at a driver program; [`TaskContext`] wraps one rooted
//! at the currently-executing task (making the task graph dynamic, R3).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rtml_common::codec::Codec;
use rtml_common::error::{Error, Result};
use rtml_common::event::{Component, Event, EventKind};
use rtml_common::ids::{DriverId, FunctionId, NodeId, ObjectId, TaskId, WorkerId};
use rtml_common::resources::Resources;
use rtml_common::task::{ArgSpec, TaskSpec, TaskState};
use rtml_common::time::now_nanos;

use crate::envelope;
use crate::fetch;
use crate::lineage::ReconstructionManager;
use crate::object_ref::{IntoArg, ObjectRef};
use crate::registry::{Func0, Func1, Func2, Func3, Func4};
use crate::services::Services;

/// Per-submission options.
#[derive(Clone, Debug)]
pub struct TaskOptions {
    /// Resource demand (admission + placement, R4). Default: 1 CPU.
    pub resources: Resources,
}

impl Default for TaskOptions {
    fn default() -> Self {
        TaskOptions {
            resources: Resources::cpu(1.0),
        }
    }
}

impl TaskOptions {
    /// A demand of `cpu` CPUs.
    pub fn cpu(cpu: f64) -> Self {
        TaskOptions {
            resources: Resources::cpu(cpu),
        }
    }

    /// A demand of `gpu` GPUs (plus zero CPUs).
    pub fn gpu(gpu: f64) -> Self {
        TaskOptions {
            resources: Resources::gpu(gpu),
        }
    }

    /// An explicit resource vector.
    pub fn resources(resources: Resources) -> Self {
        TaskOptions { resources }
    }
}

/// Raw parts of one task inside a [`Caller::submit_raw_batch`] — what
/// [`Caller::submit_raw`] takes as separate arguments, as a value so
/// batches can be built up front.
#[derive(Clone, Debug)]
pub struct TaskRequest {
    /// Function to invoke.
    pub function: FunctionId,
    /// Arguments in positional order (inline values or futures).
    pub args: Vec<ArgSpec>,
    /// Number of return objects.
    pub num_returns: u32,
    /// Resource demand (admission + placement, R4).
    pub resources: Resources,
}

struct CallerInner {
    services: Arc<Services>,
    recon: Arc<ReconstructionManager>,
    home: NodeId,
    current_task: TaskId,
    component: Component,
    /// Set for worker contexts: lets blocking calls report to the local
    /// scheduler so the task's resources are released while parked
    /// (nested-task deadlock avoidance).
    worker: Option<WorkerId>,
    child_counter: AtomicU64,
    put_counter: AtomicU64,
    /// Counts driver submission batches for round-robin striping
    /// ([`crate::services::RuntimeTuning::submit_striping`]).
    batch_counter: AtomicU64,
}

/// RAII guard bracketing a blocking section with WorkerBlocked /
/// WorkerUnblocked notifications to the local scheduler.
struct BlockGuard<'a> {
    inner: &'a CallerInner,
    notified: bool,
}

impl<'a> BlockGuard<'a> {
    fn enter(inner: &'a CallerInner) -> BlockGuard<'a> {
        let mut notified = false;
        if let Some(worker) = inner.worker {
            if let Some(tx) = inner.services.sched_sender(worker.node) {
                notified = tx
                    .send(rtml_sched::LocalMsg::WorkerBlocked {
                        worker,
                        task: inner.current_task,
                    })
                    .is_ok();
            }
        }
        BlockGuard { inner, notified }
    }
}

impl Drop for BlockGuard<'_> {
    fn drop(&mut self) {
        if !self.notified {
            return;
        }
        if let Some(worker) = self.inner.worker {
            if let Some(tx) = self.inner.services.sched_sender(worker.node) {
                let _ = tx.send(rtml_sched::LocalMsg::WorkerUnblocked {
                    worker,
                    task: self.inner.current_task,
                });
            }
        }
    }
}

/// A submission context: the capability to create tasks, put objects, and
/// block on futures. Cheap to clone.
#[derive(Clone)]
pub struct Caller {
    inner: Arc<CallerInner>,
}

impl Caller {
    pub(crate) fn new(
        services: Arc<Services>,
        recon: Arc<ReconstructionManager>,
        home: NodeId,
        current_task: TaskId,
        component: Component,
    ) -> Caller {
        Caller::with_worker(services, recon, home, current_task, component, None)
    }

    pub(crate) fn with_worker(
        services: Arc<Services>,
        recon: Arc<ReconstructionManager>,
        home: NodeId,
        current_task: TaskId,
        component: Component,
        worker: Option<WorkerId>,
    ) -> Caller {
        Caller {
            inner: Arc::new(CallerInner {
                services,
                recon,
                home,
                current_task,
                component,
                worker,
                child_counter: AtomicU64::new(0),
                put_counter: AtomicU64::new(0),
                batch_counter: AtomicU64::new(0),
            }),
        }
    }

    /// The services bundle (exposed for tooling and benchmarks).
    pub fn services(&self) -> &Arc<Services> {
        &self.inner.services
    }

    /// The node this caller submits from.
    pub fn home_node(&self) -> NodeId {
        self.inner.home
    }

    /// The task identity this caller derives child IDs from.
    pub fn current_task(&self) -> TaskId {
        self.inner.current_task
    }

    /// Submits a task by raw parts. Returns the future(s) for its
    /// returns. Thin wrapper over [`Caller::submit_raw_batch`] — the
    /// non-blocking primitive behind all typed wrappers (§3.1 item 1).
    pub fn submit_raw(
        &self,
        function: FunctionId,
        args: Vec<ArgSpec>,
        num_returns: u32,
        resources: Resources,
    ) -> Result<Vec<ObjectId>> {
        let mut results = self.submit_raw_batch(vec![TaskRequest {
            function,
            args,
            num_returns,
            resources,
        }])?;
        Ok(results.pop().expect("one request in, one result out"))
    }

    /// Submits a batch of tasks by raw parts, amortizing every per-task
    /// cost of the submit path over the batch: one child-counter
    /// reservation, one replay-check read sweep, group-committed task
    /// table / object table / event log writes, and one scheduler
    /// message. Task and object IDs are **bit-identical** to the ones
    /// the equivalent sequence of [`Caller::submit_raw`] calls would
    /// produce — batching changes costs, not identity — so lineage
    /// replay is oblivious to how work was submitted.
    ///
    /// Returns one `Vec<ObjectId>` of return futures per request, in
    /// request order.
    pub fn submit_raw_batch(&self, requests: Vec<TaskRequest>) -> Result<Vec<Vec<ObjectId>>> {
        let inner = &self.inner;
        let services = &inner.services;
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        for request in &requests {
            if services.registry.get(request.function).is_none() {
                return Err(Error::FunctionNotFound(request.function));
            }
        }
        let count = requests.len() as u64;
        let base = inner.child_counter.fetch_add(count, Ordering::Relaxed);
        let task_ids: Vec<TaskId> = (0..count)
            .map(|i| inner.current_task.child(base + i))
            .collect();

        // Replay-aware submission, batched: if a task already exists (we
        // are a re-executed parent), do not double-submit unless its
        // previous attempt was lost. Only worker contexts can be
        // re-executed — a driver root never replays its submission loop
        // and hands out fresh counters for life, so the read sweep would
        // be pure per-task overhead on the driver hot path.
        let states = if inner.component == Component::Driver {
            vec![None; task_ids.len()]
        } else {
            services.tasks.get_states_many(&task_ids)
        };

        // Where this batch ingests. Driver batches stripe round-robin
        // across `submit_striping` nodes so one local scheduler is not
        // the funnel; worker (nested) submissions always ingest at home,
        // where their argument objects already live. The spec's
        // `submitter_node` records the ingest target so the kill-node
        // repair scan covers a batch lost in the target's mailbox or
        // staging ring. Ids are producer-embedded and placement ignores
        // the submitter, so striping never moves *what runs where* —
        // only which scheduler does the ingest bookkeeping.
        let stripe_index = (inner.component == Component::Driver)
            .then(|| inner.batch_counter.fetch_add(1, Ordering::Relaxed));
        let ingest = match stripe_index {
            Some(index) => services.stripe_target(inner.home, index),
            None => inner.home,
        };

        let mut results: Vec<Vec<ObjectId>> = Vec::with_capacity(requests.len());
        let mut fresh: Vec<TaskSpec> = Vec::with_capacity(requests.len());
        let mut unschedulable: Vec<(TaskSpec, Vec<ObjectId>)> = Vec::new();
        // Admission-control cache: batches overwhelmingly share one
        // resource vector, so check the cluster once per distinct demand
        // instead of once per task.
        let mut fits_cache: Option<(Resources, bool)> = None;
        for ((request, task_id), state) in requests.into_iter().zip(&task_ids).zip(states) {
            let task_id = *task_id;
            let return_ids: Vec<ObjectId> = (0..request.num_returns)
                .map(|i| task_id.return_object(i))
                .collect();
            if let Some(state) = state {
                if state == TaskState::Lost {
                    inner.recon.resubmit(task_id);
                }
                results.push(return_ids);
                continue;
            }
            let spec = TaskSpec {
                task_id,
                function: request.function,
                args: request.args,
                num_returns: request.num_returns,
                resources: request.resources,
                submitter_node: ingest,
                attempt: 0,
                actor: None,
            };
            // Admission control: a demand no node can ever satisfy fails
            // fast with sealed error envelopes (consumers see the error
            // rather than hanging).
            let fits = match &fits_cache {
                Some((resources, fits)) if *resources == spec.resources => *fits,
                _ => {
                    let fits = services.cluster_fits(&spec.resources);
                    fits_cache = Some((spec.resources.clone(), fits));
                    fits
                }
            };
            if !fits {
                unschedulable.push((spec, return_ids.clone()));
                results.push(return_ids);
                continue;
            }
            results.push(return_ids);
            fresh.push(spec);
        }

        for (spec, return_ids) in unschedulable {
            self.seal_unschedulable(spec, &return_ids);
        }
        if fresh.is_empty() {
            return Ok(results);
        }

        // Durable lineage first, then visibility, then routing — each
        // phase one group-committed control-plane call for the whole
        // batch. Nothing can observe these tasks until the final routing
        // send, so the inter-phase windows are private to this call.
        // No object records are written at all: every return object's
        // lineage edge rides inside its ID (`ObjectId::producer_task`).
        let commit_started = Instant::now();
        services.tasks.record_many(&fresh, &TaskState::Submitted);
        let commit_micros = commit_started.elapsed().as_micros() as u64;
        let at_nanos = now_nanos();
        let mut events: Vec<Event> = fresh
            .iter()
            .map(|spec| Event {
                at_nanos,
                component: inner.component,
                kind: EventKind::TaskSubmitted { task: spec.task_id },
            })
            .collect();
        // The segment-commit span rides the same frame as the per-task
        // submission events. `base` (this submitter's child counter) is
        // monotonic per caller, so it doubles as the batch seq.
        events.push(Event {
            at_nanos,
            component: inner.component,
            kind: EventKind::SpecSegmentCommitted {
                node: inner.home,
                seq: base,
                tasks: fresh.len() as u32,
                micros: commit_micros,
            },
        });
        services.events.append_many(inner.home, events);
        match stripe_index {
            // Driver stripes fail over to the next stripe position when
            // the target's scheduler died mid-send; `submitter_node`
            // still names the first-choice target, and a batch that
            // lands elsewhere is covered by the stuck-task backstop if
            // *that* node dies too.
            Some(index) => services.submit_batch_striped(inner.home, index, fresh)?,
            None => services.submit_batch_to(ingest, fresh)?,
        }
        Ok(results)
    }

    /// Fails a permanently unschedulable task fast: durable spec +
    /// `Failed` state and sealed error envelopes so consumers see the
    /// error rather than hanging.
    fn seal_unschedulable(&self, spec: TaskSpec, return_ids: &[ObjectId]) {
        let inner = &self.inner;
        let services = &inner.services;
        let task_id = spec.task_id;
        let message = format!(
            "task {task_id} is unschedulable: demand {} exceeds every node",
            spec.resources
        );
        services.tasks.put_spec(&spec);
        services
            .tasks
            .set_state(task_id, &TaskState::Failed(message.clone()));
        if let Some(store) = services
            .store(inner.home)
            .or_else(|| services.any_alive().and_then(|n| services.store(n)))
        {
            let bytes = envelope::seal_error(&message);
            for ret in return_ids {
                if store.put(*ret, bytes.clone()).is_ok() {
                    services
                        .objects
                        .add_location(*ret, store.node(), bytes.len() as u64);
                }
            }
        }
    }

    /// Stores a value directly into the local object store and returns a
    /// future for it. Unlike task returns, `put` objects carry no lineage
    /// (losing every copy is unrecoverable — documented paper-faithful
    /// behaviour).
    pub fn put<T: Codec>(&self, value: &T) -> Result<ObjectRef<T>> {
        let inner = &self.inner;
        let counter = inner.put_counter.fetch_add(1, Ordering::Relaxed);
        let object = inner.current_task.put_object(counter);
        let store = inner
            .services
            .store(inner.home)
            .or_else(|| {
                inner
                    .services
                    .any_alive()
                    .and_then(|n| inner.services.store(n))
            })
            .ok_or(Error::ShuttingDown)?;
        let bytes = envelope::seal_value(value);
        let len = bytes.len() as u64;
        store.put(object, bytes)?;
        inner.services.objects.declare(object, None);
        inner
            .services
            .objects
            .add_location(object, store.node(), len);
        Ok(ObjectRef::typed(object))
    }

    /// Blocks until the future's value is available (default deadline
    /// from the cluster tuning), fetching or reconstructing as needed.
    pub fn get<T: Codec>(&self, fut: &ObjectRef<T>) -> Result<T> {
        self.get_timeout(fut, self.inner.services.tuning.default_get_timeout)
    }

    /// [`Caller::get`] with an explicit deadline.
    pub fn get_timeout<T: Codec>(&self, fut: &ObjectRef<T>, timeout: Duration) -> Result<T> {
        let deadline = Instant::now() + timeout;
        // Fast path: no scheduler round-trip when the value is local.
        if let Some(store) = self.inner.services.store(self.inner.home) {
            if let Some(bytes) = store.get(fut.id()) {
                let producer = fut.id().producer_task().unwrap_or(TaskId::NIL);
                return envelope::open_value(&bytes, producer);
            }
        }
        let _guard = BlockGuard::enter(&self.inner);
        let (bytes, producer) = fetch::ensure_local_with_producer(
            &self.inner.services,
            &self.inner.recon,
            self.inner.home,
            fut.id(),
            deadline,
        )?;
        envelope::open_value(&bytes, producer)
    }

    /// Blocks until **every** future's value is available, and returns
    /// the values in input order (duplicates allowed).
    ///
    /// The batched `get`: local hits resolve immediately; the distinct
    /// missing objects are grouped by holder and each group is pulled as
    /// **one** coalesced `FetchMany` request (answered by one chunked
    /// reply stream), instead of one blocking round trip per object.
    /// Objects the fast path cannot deliver fall back to the plain
    /// `get` path per object — including lineage reconstruction (R6) —
    /// exactly as [`Caller::get`] would.
    pub fn get_many<T: Codec>(&self, futs: &[ObjectRef<T>]) -> Result<Vec<T>> {
        self.get_many_timeout(futs, self.inner.services.tuning.default_get_timeout)
    }

    /// [`Caller::get_many`] with an explicit deadline.
    pub fn get_many_timeout<T: Codec>(
        &self,
        futs: &[ObjectRef<T>],
        timeout: Duration,
    ) -> Result<Vec<T>> {
        let ids: Vec<ObjectId> = futs.iter().map(|f| f.id()).collect();
        let all_bytes = self.get_many_raw(&ids, timeout)?;
        // Producer attribution for error envelopes comes from the IDs
        // themselves — no table sweep.
        all_bytes
            .iter()
            .zip(&ids)
            .map(|(bytes, id)| {
                let producer = id.producer_task().unwrap_or(TaskId::NIL);
                envelope::open_value(bytes, producer)
            })
            .collect()
    }

    /// Raw batched `get`: sealed envelope bytes of many objects by ID,
    /// in input order.
    pub fn get_many_raw(&self, ids: &[ObjectId], timeout: Duration) -> Result<Vec<bytes::Bytes>> {
        let deadline = Instant::now() + timeout;
        let _guard = BlockGuard::enter(&self.inner);
        fetch::ensure_local_many(
            &self.inner.services,
            &self.inner.recon,
            self.inner.home,
            ids,
            deadline,
        )
    }

    /// Raw `get`: sealed envelope bytes of an object by ID.
    pub fn get_raw(&self, object: ObjectId, timeout: Duration) -> Result<bytes::Bytes> {
        let deadline = Instant::now() + timeout;
        let _guard = BlockGuard::enter(&self.inner);
        fetch::ensure_local(
            &self.inner.services,
            &self.inner.recon,
            self.inner.home,
            object,
            deadline,
        )
    }

    /// Blocks until `num_ready` of `futs` have completed or `timeout`
    /// elapses; returns `(ready, pending)` in input order (§3.1 item 5).
    pub fn wait<T>(
        &self,
        futs: &[ObjectRef<T>],
        num_ready: usize,
        timeout: Duration,
    ) -> (Vec<ObjectRef<T>>, Vec<ObjectRef<T>>) {
        let ids: Vec<ObjectId> = futs.iter().map(|f| f.id()).collect();
        let (ready, pending) = self.wait_ids(&ids, num_ready, timeout);
        let to_refs = |ids: Vec<ObjectId>| ids.into_iter().map(ObjectRef::typed).collect();
        (to_refs(ready), to_refs(pending))
    }

    /// Untyped [`Caller::wait`].
    pub fn wait_ids(
        &self,
        ids: &[ObjectId],
        num_ready: usize,
        timeout: Duration,
    ) -> (Vec<ObjectId>, Vec<ObjectId>) {
        let _guard = BlockGuard::enter(&self.inner);
        fetch::wait_ready(
            &self.inner.services,
            &self.inner.recon,
            self.inner.home,
            ids,
            num_ready,
            timeout,
        )
    }
}

macro_rules! submit_arity {
    (
        $(#[$meta:meta])*
        $name:ident, $name_opts:ident, $token:ident, [$($ty:ident / $arg:ident),*]
    ) => {
        impl Caller {
            $(#[$meta])*
            pub fn $name<$($ty: Codec + 'static,)* R: Codec + 'static>(
                &self,
                f: &$token<$($ty,)* R>,
                $($arg: impl IntoArg<$ty>,)*
            ) -> Result<ObjectRef<R>> {
                self.$name_opts(f, $($arg,)* TaskOptions::default())
            }

            /// Same, with explicit [`TaskOptions`] (resources).
            pub fn $name_opts<$($ty: Codec + 'static,)* R: Codec + 'static>(
                &self,
                f: &$token<$($ty,)* R>,
                $($arg: impl IntoArg<$ty>,)*
                opts: TaskOptions,
            ) -> Result<ObjectRef<R>> {
                let args = vec![$($arg.into_arg()),*];
                let ids = self.submit_raw(f.id(), args, 1, opts.resources)?;
                Ok(ObjectRef::typed(ids[0]))
            }
        }
    };
}

impl Caller {
    /// Submits `args.len()` invocations of `f` as **one batch**: one
    /// scheduler message and group-committed control-plane writes for
    /// the whole set, instead of per-task channel sends, table writes,
    /// and log appends. The returned futures (and the underlying
    /// task/object IDs) are bit-identical to what the equivalent
    /// [`Caller::submit1`] loop would produce.
    pub fn submit_batch<A: Codec + 'static, R: Codec + 'static>(
        &self,
        f: &Func1<A, R>,
        args: impl IntoIterator<Item = impl IntoArg<A>>,
    ) -> Result<Vec<ObjectRef<R>>> {
        self.submit_batch_opts(f, args, TaskOptions::default())
    }

    /// Same, with explicit [`TaskOptions`] (resources) applied to every
    /// task in the batch.
    pub fn submit_batch_opts<A: Codec + 'static, R: Codec + 'static>(
        &self,
        f: &Func1<A, R>,
        args: impl IntoIterator<Item = impl IntoArg<A>>,
        opts: TaskOptions,
    ) -> Result<Vec<ObjectRef<R>>> {
        let requests: Vec<TaskRequest> = args
            .into_iter()
            .map(|a| TaskRequest {
                function: f.id(),
                args: vec![a.into_arg()],
                num_returns: 1,
                resources: opts.resources.clone(),
            })
            .collect();
        let results = self.submit_raw_batch(requests)?;
        Ok(results
            .into_iter()
            .map(|ids| ObjectRef::typed(ids[0]))
            .collect())
    }

    /// Submits `count` invocations of a nullary task as one batch.
    pub fn submit_batch0<R: Codec + 'static>(
        &self,
        f: &Func0<R>,
        count: usize,
    ) -> Result<Vec<ObjectRef<R>>> {
        let requests: Vec<TaskRequest> = (0..count)
            .map(|_| TaskRequest {
                function: f.id(),
                args: Vec::new(),
                num_returns: 1,
                resources: TaskOptions::default().resources,
            })
            .collect();
        let results = self.submit_raw_batch(requests)?;
        Ok(results
            .into_iter()
            .map(|ids| ObjectRef::typed(ids[0]))
            .collect())
    }
}

submit_arity!(
    /// Submits a nullary task; returns its future immediately.
    submit0, submit0_opts, Func0, []
);
submit_arity!(
    /// Submits a unary task; the argument may be a value or a future.
    submit1, submit1_opts, Func1, [A / a]
);
submit_arity!(
    /// Submits a binary task; arguments may mix values and futures.
    submit2, submit2_opts, Func2, [A / a, B / b]
);
submit_arity!(
    /// Submits a ternary task; arguments may mix values and futures.
    submit3, submit3_opts, Func3, [A / a, B / b, C / c]
);
submit_arity!(
    /// Submits a 4-ary task; arguments may mix values and futures.
    submit4, submit4_opts, Func4, [A / a, B / b, C / c, D / d]
);

/// A driver program's connection to the cluster.
///
/// Obtained from [`crate::cluster::Cluster::driver`]; dereferences to
/// [`Caller`] for the full API.
pub struct Driver {
    caller: Caller,
    id: DriverId,
}

impl Driver {
    pub(crate) fn new(
        services: Arc<Services>,
        recon: Arc<ReconstructionManager>,
        home: NodeId,
        id: DriverId,
    ) -> Driver {
        let root = TaskId::driver_root(id);
        Driver {
            caller: Caller::new(services, recon, home, root, Component::Driver),
            id,
        }
    }

    /// This driver's identity.
    pub fn id(&self) -> DriverId {
        self.id
    }

    /// Submits many invocations of `f` (one per argument) as a single
    /// batch — the driver-facing name for [`Caller::submit_batch`].
    pub fn submit_many<A: Codec + 'static, R: Codec + 'static>(
        &self,
        f: &Func1<A, R>,
        args: impl IntoIterator<Item = impl IntoArg<A>>,
    ) -> Result<Vec<ObjectRef<R>>> {
        self.caller.submit_batch(f, args)
    }

    /// Blocks on many futures at once, fetching the missing ones with
    /// one coalesced request per holding node — the batched counterpart
    /// of [`Caller::get`]; see [`Caller::get_many`].
    pub fn get_many<T: Codec>(&self, futs: &[ObjectRef<T>]) -> Result<Vec<T>> {
        self.caller.get_many(futs)
    }
}

impl std::ops::Deref for Driver {
    type Target = Caller;

    fn deref(&self) -> &Caller {
        &self.caller
    }
}

/// The context handed to an executing task: the same API as a driver,
/// rooted at the running task (so nested submissions derive deterministic
/// child IDs — the backbone of replay).
pub struct TaskContext {
    caller: Caller,
    worker: WorkerId,
}

impl TaskContext {
    pub(crate) fn new(
        services: Arc<Services>,
        recon: Arc<ReconstructionManager>,
        task: TaskId,
        worker: WorkerId,
    ) -> TaskContext {
        TaskContext {
            caller: Caller::with_worker(
                services,
                recon,
                worker.node,
                task,
                Component::Worker,
                Some(worker),
            ),
            worker,
        }
    }

    /// The executing worker.
    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    /// The executing task.
    pub fn task(&self) -> TaskId {
        self.caller.current_task()
    }
}

impl std::ops::Deref for TaskContext {
    type Target = Caller;

    fn deref(&self) -> &Caller {
        &self.caller
    }
}

/// Test-only helpers for constructing detached contexts.
pub mod test_support {
    use super::*;
    use crate::services::RuntimeTuning;

    /// Runs `f` with a context not attached to any cluster (submissions
    /// will fail; argument decoding and similar pure paths work).
    pub fn with_detached_context<R>(f: impl FnOnce(&TaskContext) -> R) -> R {
        let services = Services::create(
            1,
            rtml_net::FabricConfig::default(),
            false,
            RuntimeTuning::default(),
        );
        let recon = ReconstructionManager::new(services.clone());
        let root = TaskId::driver_root(DriverId::from_index(u64::MAX));
        let ctx = TaskContext::new(services, recon, root, WorkerId::new(NodeId(0), 0));
        f(&ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_context_exposes_identity() {
        test_support::with_detached_context(|ctx| {
            assert_eq!(ctx.worker(), WorkerId::new(NodeId(0), 0));
            assert_eq!(ctx.home_node(), NodeId(0));
        });
    }

    #[test]
    fn submit_unknown_function_errors() {
        test_support::with_detached_context(|ctx| {
            let err = ctx
                .submit_raw(
                    FunctionId::from_name("nope"),
                    vec![],
                    1,
                    Resources::cpu(1.0),
                )
                .unwrap_err();
            assert!(matches!(err, Error::FunctionNotFound(_)));
        });
    }

    #[test]
    fn submit_batch_with_unknown_function_errors_before_ids_are_consumed() {
        test_support::with_detached_context(|ctx| {
            let requests: Vec<TaskRequest> = (0..3)
                .map(|_| TaskRequest {
                    function: FunctionId::from_name("nope"),
                    args: vec![],
                    num_returns: 1,
                    resources: Resources::cpu(1.0),
                })
                .collect();
            let err = ctx.submit_raw_batch(requests).unwrap_err();
            assert!(matches!(err, Error::FunctionNotFound(_)));
        });
    }

    #[test]
    fn empty_batch_is_a_noop() {
        test_support::with_detached_context(|ctx| {
            assert_eq!(ctx.submit_raw_batch(vec![]).unwrap(), Vec::<Vec<_>>::new());
        });
    }

    #[test]
    fn put_without_nodes_errors() {
        test_support::with_detached_context(|ctx| {
            let err = ctx.put(&5u64).unwrap_err();
            assert_eq!(err, Error::ShuttingDown);
        });
    }

    #[test]
    fn task_options_constructors() {
        assert_eq!(TaskOptions::cpu(2.0).resources, Resources::cpu(2.0));
        assert_eq!(TaskOptions::gpu(1.0).resources, Resources::gpu(1.0));
        assert_eq!(TaskOptions::default().resources, Resources::cpu(1.0));
    }
}
