//! Profiling and debugging tools over the event log (requirement R7).
//!
//! The paper's Figure 3 attaches profiling, debugging, and error-
//! diagnosis tools to the centralized control state. This module is that
//! box: it folds the event log into per-task timelines, summarizes
//! scheduling latency, and exports a Chrome-trace JSON
//! (`chrome://tracing` / Perfetto) of the whole run.

use std::collections::HashMap;

use rtml_common::event::{Event, EventKind};
use rtml_common::ids::{NodeId, TaskId, WorkerId};
use rtml_common::metrics::{fmt_nanos, Histogram};
use rtml_sched::StealStats;

/// Per-task timeline assembled from the event log.
#[derive(Clone, Debug, Default)]
pub struct TaskProfile {
    /// Task identity.
    pub task: Option<TaskId>,
    /// When the task was submitted (nanos since epoch).
    pub submitted: Option<u64>,
    /// When a local scheduler queued it.
    pub queued: Option<u64>,
    /// The node whose scheduler queued it.
    pub queued_node: Option<NodeId>,
    /// Whether it took the spillover path.
    pub spilled: bool,
    /// When the global scheduler placed it (spilled tasks only).
    pub placed: Option<u64>,
    /// Where the global scheduler placed it.
    pub placed_node: Option<NodeId>,
    /// When (and to where) a steal moved it, if one did.
    pub stolen: Option<(u64, NodeId)>,
    /// When a worker started it.
    pub started: Option<u64>,
    /// When it finished.
    pub finished: Option<u64>,
    /// Executor-measured run time in microseconds.
    pub exec_micros: Option<u64>,
    /// The worker that ran it.
    pub worker: Option<WorkerId>,
    /// Whether it failed.
    pub failed: bool,
    /// Reconstruction attempts observed.
    pub reconstructions: u32,
}

impl TaskProfile {
    /// Submit→start latency (the system overhead the paper's §4.1
    /// microbenchmarks measure), if both endpoints were recorded.
    pub fn scheduling_latency_nanos(&self) -> Option<u64> {
        Some(self.started?.saturating_sub(self.submitted?))
    }

    /// Queue→start (dispatch-to-run) latency: how long the task sat on
    /// its local scheduler between being queued and starting on a
    /// worker. For tasks with remote dependencies this includes the
    /// transfer wait — the quantity dispatch-time prefetch shrinks by
    /// overlapping transfer with queueing.
    pub fn dispatch_latency_nanos(&self) -> Option<u64> {
        Some(self.started?.saturating_sub(self.queued?))
    }
}

/// Aggregated live data-plane counters (transfer services + fetch
/// agents across all alive nodes), attached by
/// [`crate::Cluster::profile`]. Zero when a report is built from raw
/// events alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransferPlaneStats {
    /// Request frames served by transfer services (each may name many
    /// objects — compare with `objects_served` for the coalescing
    /// factor).
    pub requests_served: u64,
    /// Objects served (found and streamed back).
    pub objects_served: u64,
    /// Requested objects the holder no longer had.
    pub misses: u64,
    /// Undecodable or misrouted frames observed by services.
    pub decode_errors: u64,
    /// Reply streams the fabric refused (requester gone).
    pub send_failures: u64,
    /// Chunk frames emitted by services.
    pub chunks_sent: u64,
    /// Distinct transfers started by fetch agents.
    pub fetches: u64,
    /// Fetches answered by joining an in-flight transfer instead of
    /// issuing a duplicate request (single-flight suppression).
    pub duplicate_fetches_suppressed: u64,
    /// Chunk frames received by fetch agents.
    pub chunks_received: u64,
    /// Fetch waits that gave up before completion.
    pub fetch_timeouts: u64,
}

/// Aggregated live replication-plane counters (per-node
/// [`rtml_store::ReplicationAgent`]s), attached by
/// [`crate::Cluster::profile`]. Zero when the plane is off or a report
/// is built from raw events alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplicationPlaneStats {
    /// Demand sweeps executed across all agents.
    pub sweeps: u64,
    /// Objects whose remote-read demand crossed the threshold.
    pub hot_objects: u64,
    /// Replica copies successfully placed on additional holders.
    pub replicas_created: u64,
    /// Replica copies proactively dropped by the demand-decay
    /// reclamation sweep.
    pub replicas_released: u64,
    /// Replica pulls that failed (target died, store pressure, ...).
    pub failures: u64,
}

/// Aggregated live steal-plane counters (per-node local schedulers),
/// attached by [`crate::Cluster::profile`]. Zero when the plane is off
/// or a report is built from raw events alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StealPlaneStats {
    /// Steal requests sent by idle schedulers.
    pub attempts: u64,
    /// Non-empty grants received.
    pub grants: u64,
    /// Empty grants received (stale victims whose queues drained).
    pub empty_grants: u64,
    /// Requests that timed out without any grant (victim died).
    pub timeouts: u64,
    /// Tasks received via grants.
    pub tasks_stolen: u64,
    /// Stolen tasks arriving with at least one dependency already
    /// resident on the thief — the locality scoring landing.
    pub locality_hits: u64,
    /// Tasks handed out by victims.
    pub tasks_granted: u64,
}

impl StealPlaneStats {
    /// Fraction of stolen tasks that found a dependency already local
    /// (1.0 when every steal was locality-guided; 0.0 when none were,
    /// or nothing was stolen).
    pub fn locality_hit_rate(&self) -> f64 {
        if self.tasks_stolen == 0 {
            return 0.0;
        }
        self.locality_hits as f64 / self.tasks_stolen as f64
    }

    /// Folds one scheduler's live counters in.
    pub fn absorb(&mut self, stats: &StealStats) {
        self.attempts += stats.attempts.get();
        self.grants += stats.grants.get();
        self.empty_grants += stats.empty_grants.get();
        self.timeouts += stats.timeouts.get();
        self.tasks_stolen += stats.tasks_stolen.get();
        self.locality_hits += stats.locality_hits.get();
        self.tasks_granted += stats.tasks_granted.get();
    }
}

/// Aggregated chaos-plane counters: what the fault plan injected on the
/// fabric and how the graceful-degradation machinery responded.
/// Attached by [`crate::Cluster::profile`]; zero when the fault plan is
/// inert or a report is built from raw events alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlaneStats {
    /// Frames silently dropped by the fault plan (drop rules and
    /// scheduled partition windows combined).
    pub injected_drops: u64,
    /// Frames delivered twice by the duplication rules.
    pub injected_dups: u64,
    /// Frames held back by a delay-spike rule.
    pub injected_delays: u64,
    /// Frames slowed by a gray-link rule.
    pub injected_gray: u64,
    /// Lineage replays deferred by the reconstruction cap.
    pub reconstructions_deferred: u64,
}

/// One plane-operation span folded from the event log. The emitting
/// events carry a duration and are stamped at span *end*, so the span
/// runs backwards from `end_nanos`.
#[derive(Clone, Debug)]
pub struct PlaneSpan {
    /// Which plane: `"control"`, `"staging"`, `"placement"`, `"steal"`,
    /// `"transfer"`, or `"replication"`.
    pub plane: &'static str,
    /// The node the span is attributed to (the thief for steal round
    /// trips, the receiver for transfers).
    pub node: NodeId,
    /// When the operation completed (nanos since epoch).
    pub end_nanos: u64,
    /// How long it took.
    pub micros: u64,
    /// Short human label ("segment 4096", "steal from node-2", ...).
    pub label: String,
    /// Structured payload, rendered as Chrome-trace args.
    pub args: Vec<(&'static str, u64)>,
}

impl PlaneSpan {
    /// When the operation began.
    pub fn start_nanos(&self) -> u64 {
        self.end_nanos
            .saturating_sub(self.micros.saturating_mul(1_000))
    }
}

/// A point incident worth a marker on the timeline: task failures,
/// lineage reconstructions, node losses.
#[derive(Clone, Debug)]
pub struct Incident {
    /// When it happened (nanos since epoch).
    pub at_nanos: u64,
    /// `"task_failed"`, `"task_reconstructed"`, or `"node_lost"`.
    pub kind: &'static str,
    /// What it happened to (task or node).
    pub label: String,
    /// The node involved, when the event names one.
    pub node: Option<NodeId>,
}

/// A digest of one run's event log.
#[derive(Debug, Default)]
pub struct ProfileReport {
    /// Per-task timelines, ordered by submission time.
    pub tasks: Vec<TaskProfile>,
    /// Cross-node transfers completed.
    pub transfers: usize,
    /// Objects evicted.
    pub evictions: usize,
    /// Objects sealed.
    pub seals: usize,
    /// Workers lost.
    pub workers_lost: usize,
    /// Nodes lost.
    pub nodes_lost: usize,
    /// Dependencies proactively requested at task-queue time.
    pub prefetches_issued: usize,
    /// Prefetched dependencies that subsequently arrived on the
    /// requesting node (the transfer completed).
    pub prefetch_hits: usize,
    /// Live data-plane counters (populated by
    /// [`crate::Cluster::profile`]; zero for raw event folds).
    pub transfer: TransferPlaneStats,
    /// Live replication-plane counters (populated by
    /// [`crate::Cluster::profile`]; zero for raw event folds).
    pub replication: ReplicationPlaneStats,
    /// Dispatch-time prefetches skipped by the capacity admission guard
    /// (live scheduler counters; zero for raw event folds).
    pub prefetch_skipped_capacity: u64,
    /// Dispatch-time prefetches deferred by head-of-queue
    /// prioritization under a tight budget (live scheduler counters).
    pub prefetch_deferred_priority: u64,
    /// Live steal-plane counters (populated by
    /// [`crate::Cluster::profile`]; zero for raw event folds).
    pub steal: StealPlaneStats,
    /// Live chaos-plane counters (populated by
    /// [`crate::Cluster::profile`]; zero for raw event folds).
    pub faults: FaultPlaneStats,
    /// Grant-arrival → worker-dispatch latency across every stolen
    /// task, folded from the per-node histograms.
    pub steal_to_run: Histogram,
    /// Steal grants recorded in the event log (`TaskStolen` records —
    /// the events-based mirror of `steal.tasks_granted`).
    pub steal_events: usize,
    /// Plane-operation spans (segment commits, placement batches, steal
    /// round trips, staged-batch indexing, transfers, replication
    /// sweeps), in log order.
    pub spans: Vec<PlaneSpan>,
    /// Failures, reconstructions, and node losses, in log order.
    pub incidents: Vec<Incident>,
    /// Staging-ring occupancy samples `(at_nanos, node, depth)` — one
    /// per accepted batch, rendered as a Chrome-trace counter track.
    pub staging_occupancy: Vec<(u64, NodeId, u32)>,
    /// Event records the bounded log dropped to stay within retention
    /// (populated by [`crate::Cluster::profile`]; zero for raw event
    /// folds). When nonzero the report is partial: timelines may be
    /// missing their oldest edges.
    pub dropped_records: u64,
    /// Whether retention dropped anything (`dropped_records > 0`).
    pub partial: bool,
}

impl ProfileReport {
    /// Folds a (time-sorted) event stream into a report.
    pub fn from_events(events: &[Event]) -> ProfileReport {
        let mut by_task: HashMap<TaskId, TaskProfile> = HashMap::new();
        let mut report = ProfileReport::default();
        let mut prefetched: std::collections::HashSet<(
            rtml_common::ids::ObjectId,
            rtml_common::ids::NodeId,
        )> = std::collections::HashSet::new();
        for event in events {
            match &event.kind {
                EventKind::ObjectSealed { .. } => report.seals += 1,
                EventKind::ObjectEvicted { .. } => report.evictions += 1,
                EventKind::TransferFinished { object, to, micros } => {
                    report.transfers += 1;
                    if prefetched.remove(&(*object, *to)) {
                        report.prefetch_hits += 1;
                    }
                    report.spans.push(PlaneSpan {
                        plane: "transfer",
                        node: *to,
                        end_nanos: event.at_nanos,
                        micros: *micros,
                        label: format!("{object}"),
                        args: Vec::new(),
                    });
                }
                EventKind::PrefetchIssued { object, node } => {
                    report.prefetches_issued += 1;
                    prefetched.insert((*object, *node));
                }
                EventKind::WorkerLost { .. } => report.workers_lost += 1,
                EventKind::NodeLost { node } => {
                    report.nodes_lost += 1;
                    report.incidents.push(Incident {
                        at_nanos: event.at_nanos,
                        kind: "node_lost",
                        label: format!("node-{}", node.0),
                        node: Some(*node),
                    });
                }
                EventKind::TaskStolen { .. } => report.steal_events += 1,
                EventKind::SpecSegmentCommitted {
                    node,
                    seq,
                    tasks,
                    micros,
                } => report.spans.push(PlaneSpan {
                    plane: "control",
                    node: *node,
                    end_nanos: event.at_nanos,
                    micros: *micros,
                    label: format!("segment {seq}"),
                    args: vec![("tasks", u64::from(*tasks)), ("seq", *seq)],
                }),
                EventKind::PlacementBatch {
                    node,
                    shard,
                    tasks,
                    micros,
                } => report.spans.push(PlaneSpan {
                    plane: "placement",
                    node: *node,
                    end_nanos: event.at_nanos,
                    micros: *micros,
                    label: format!("shard {shard}"),
                    args: vec![("tasks", u64::from(*tasks)), ("shard", u64::from(*shard))],
                }),
                EventKind::StealRoundTrip {
                    thief,
                    victim,
                    seq,
                    tasks,
                    micros,
                } => report.spans.push(PlaneSpan {
                    plane: "steal",
                    node: *thief,
                    end_nanos: event.at_nanos,
                    micros: *micros,
                    label: format!("steal from node-{}", victim.0),
                    args: vec![("tasks", u64::from(*tasks)), ("seq", *seq)],
                }),
                EventKind::ReplicationSweep {
                    node,
                    hot,
                    placed,
                    released,
                    micros,
                } => report.spans.push(PlaneSpan {
                    plane: "replication",
                    node: *node,
                    end_nanos: event.at_nanos,
                    micros: *micros,
                    label: String::from("sweep"),
                    args: vec![
                        ("hot", u64::from(*hot)),
                        ("placed", u64::from(*placed)),
                        ("released", u64::from(*released)),
                    ],
                }),
                EventKind::BatchStaged { node, depth, .. } => {
                    report
                        .staging_occupancy
                        .push((event.at_nanos, *node, *depth));
                }
                EventKind::BatchIndexed {
                    node,
                    seq,
                    tasks,
                    micros,
                } => report.spans.push(PlaneSpan {
                    plane: "staging",
                    node: *node,
                    end_nanos: event.at_nanos,
                    micros: *micros,
                    label: format!("index batch {seq}"),
                    args: vec![("tasks", u64::from(*tasks)), ("seq", *seq)],
                }),
                _ => {}
            }
            let Some(task) = event.kind.task() else {
                continue;
            };
            let profile = by_task.entry(task).or_default();
            profile.task = Some(task);
            match &event.kind {
                EventKind::TaskSubmitted { .. } => {
                    profile.submitted.get_or_insert(event.at_nanos);
                }
                EventKind::TaskQueuedLocal { node, .. } => {
                    if profile.queued.is_none() {
                        profile.queued = Some(event.at_nanos);
                        profile.queued_node = Some(*node);
                    }
                }
                EventKind::TaskSpilled { .. } => profile.spilled = true,
                EventKind::TaskPlaced { node, .. } => {
                    if profile.placed.is_none() {
                        profile.placed = Some(event.at_nanos);
                        profile.placed_node = Some(*node);
                    }
                }
                EventKind::TaskStolen { to, .. } => {
                    profile.stolen.get_or_insert((event.at_nanos, *to));
                }
                EventKind::TaskStarted { worker, .. } => {
                    profile.started.get_or_insert(event.at_nanos);
                    profile.worker = Some(*worker);
                }
                EventKind::TaskFinished { micros, .. } => {
                    profile.finished = Some(event.at_nanos);
                    profile.exec_micros = Some(*micros);
                }
                EventKind::TaskFailed { .. } => {
                    profile.failed = true;
                    report.incidents.push(Incident {
                        at_nanos: event.at_nanos,
                        kind: "task_failed",
                        label: format!("{task}"),
                        node: None,
                    });
                }
                EventKind::TaskReconstructed { .. } => {
                    profile.reconstructions += 1;
                    report.incidents.push(Incident {
                        at_nanos: event.at_nanos,
                        kind: "task_reconstructed",
                        label: format!("{task}"),
                        node: None,
                    });
                }
                _ => {}
            }
        }
        let mut tasks: Vec<TaskProfile> = by_task.into_values().collect();
        tasks.sort_by_key(|t| t.submitted.unwrap_or(u64::MAX));
        report.tasks = tasks;
        report
    }

    /// Histogram of submit→start scheduling latency.
    pub fn scheduling_latency(&self) -> Histogram {
        let hist = Histogram::new();
        for task in &self.tasks {
            if let Some(nanos) = task.scheduling_latency_nanos() {
                hist.record(nanos);
            }
        }
        hist
    }

    /// Histogram of queue→start (dispatch-to-run) latency — the window
    /// dispatch-time prefetch shrinks for remote-dependency tasks.
    pub fn dispatch_latency(&self) -> Histogram {
        let hist = Histogram::new();
        for task in &self.tasks {
            if let Some(nanos) = task.dispatch_latency_nanos() {
                hist.record(nanos);
            }
        }
        hist
    }

    /// Fraction of issued prefetches whose transfer completed on the
    /// requesting node (1.0 when every prefetch landed).
    pub fn prefetch_hit_rate(&self) -> f64 {
        if self.prefetches_issued == 0 {
            return 0.0;
        }
        self.prefetch_hits as f64 / self.prefetches_issued as f64
    }

    /// Number of tasks that took the spill path.
    pub fn spilled_count(&self) -> usize {
        self.tasks.iter().filter(|t| t.spilled).count()
    }

    /// Number of failed tasks.
    pub fn failed_count(&self) -> usize {
        self.tasks.iter().filter(|t| t.failed).count()
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let latency = self.scheduling_latency().snapshot();
        let steal_latency = self.steal_to_run.snapshot();
        let retention = if self.partial {
            format!(
                "\nevent log: PARTIAL — {} records dropped by retention; oldest timeline edges may be missing",
                self.dropped_records
            )
        } else {
            String::new()
        };
        format!(
            "tasks: {} ({} spilled, {} failed)\n\
             scheduling latency: p50 {} / p99 {} / max {}\n\
             objects sealed: {}, transfers: {}, evictions: {}\n\
             prefetch: {} issued, {} hits, {} skipped (capacity), {} deferred (priority); duplicates suppressed: {}\n\
             replication: {} hot objects, {} replicas created, {} released, {} failures\n\
             steal: {} attempts, {} grants, {} tasks stolen ({:.2} locality), steal-to-run p50 {}\n\
             failures injected: {} workers, {} nodes\n\
             chaos: {} drops, {} dups, {} delay spikes, {} gray injected; {} replays deferred{retention}",
            self.tasks.len(),
            self.spilled_count(),
            self.failed_count(),
            fmt_nanos(latency.p50()),
            fmt_nanos(latency.p99()),
            fmt_nanos(latency.max()),
            self.seals,
            self.transfers,
            self.evictions,
            self.prefetches_issued,
            self.prefetch_hits,
            self.prefetch_skipped_capacity,
            self.prefetch_deferred_priority,
            self.transfer.duplicate_fetches_suppressed,
            self.replication.hot_objects,
            self.replication.replicas_created,
            self.replication.replicas_released,
            self.replication.failures,
            self.steal.attempts,
            self.steal.grants,
            self.steal.tasks_stolen,
            self.steal.locality_hit_rate(),
            fmt_nanos(steal_latency.p50()),
            self.workers_lost,
            self.nodes_lost,
            self.faults.injected_drops,
            self.faults.injected_dups,
            self.faults.injected_delays,
            self.faults.injected_gray,
            self.faults.reconstructions_deferred,
        )
    }

    /// Chrome-trace JSON (the "trace event format"), loadable in
    /// `chrome://tracing` or Perfetto:
    ///
    /// - one complete (`ph:"X"`) slice per executed task, node as pid
    ///   and worker as tid — tasks whose start was never recorded (or
    ///   whose `TaskStarted` fell to retention) are skipped rather than
    ///   invented onto a fake worker;
    /// - per-plane duration slices on dedicated lanes (tid 1000+, named
    ///   via thread-name metadata): segment commits, staged-batch
    ///   indexing, placement batches, steal round trips, transfers,
    ///   replication sweeps;
    /// - a counter track (`ph:"C"`) for staging-ring occupancy;
    /// - flow arrows (`ph:"s"`/`"t"`/`"f"`) stitching each task's
    ///   submit → queue → place/steal → start across nodes;
    /// - instant markers (`ph:"i"`) for failures, reconstructions, and
    ///   node losses.
    pub fn chrome_trace(&self) -> String {
        // Lane tids per plane, well above any real worker index.
        const LANES: [(&str, u32); 6] = [
            ("control", 1000),
            ("staging", 1001),
            ("placement", 1002),
            ("steal", 1003),
            ("transfer", 1004),
            ("replication", 1005),
        ];
        let lane = |plane: &str| -> u32 {
            LANES
                .iter()
                .find(|(name, _)| *name == plane)
                .map(|(_, tid)| *tid)
                .expect("every span plane has a lane")
        };
        let mut records: Vec<String> = Vec::new();

        // Thread-name metadata for each (node, plane) lane in use.
        let mut lanes_used: Vec<(NodeId, &'static str)> = self
            .spans
            .iter()
            .map(|span| (span.node, span.plane))
            .collect();
        lanes_used.sort_by_key(|(node, plane)| (node.0, lane(plane)));
        lanes_used.dedup();
        for (node, plane) in &lanes_used {
            records.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{plane}\"}}}}",
                node.0,
                lane(plane),
            ));
        }

        // Task slices, with flow arrows stitching the journey. The flow
        // id is the task's index in the (submission-ordered) report.
        for (index, task) in self.tasks.iter().enumerate() {
            let Some(id) = task.task else { continue };
            let name = escape_json(&format!("{id}"));
            let Some(started) = task.started else {
                continue;
            };
            let Some(worker) = task.worker else {
                continue;
            };
            let finished = task.finished.unwrap_or(started);
            records.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
                started / 1_000,
                (finished.saturating_sub(started)) / 1_000,
                worker.node.0,
                worker.index,
            ));
            // Flow: start at submit (anchored on the queueing node's
            // control lane — TaskSubmitted does not name one), step at
            // queue, step at place/steal, bind (`bp:"e"`) into the
            // task slice at start.
            let anchor = task.queued_node.unwrap_or(worker.node);
            let mut flow = |ph: &str, ts: u64, pid: u32, tid: u32, extra: &str| {
                records.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"flow\",\"ph\":\"{ph}\",\"id\":{index},\"ts\":{},\"pid\":{pid},\"tid\":{tid}{extra}}}",
                    ts / 1_000,
                ));
            };
            if let Some(submitted) = task.submitted {
                flow("s", submitted, anchor.0, lane("control"), "");
            }
            if let Some(queued) = task.queued {
                flow("t", queued, anchor.0, lane("staging"), "");
            }
            if let (Some(placed), Some(node)) = (task.placed, task.placed_node) {
                flow("t", placed, node.0, lane("placement"), "");
            }
            if let Some((at, to)) = task.stolen {
                flow("t", at, to.0, lane("steal"), "");
            }
            flow("f", started, worker.node.0, worker.index, ",\"bp\":\"e\"");
        }

        // Plane spans on their lanes.
        for span in &self.spans {
            let mut args = String::new();
            for (key, value) in &span.args {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!("\"{key}\":{value}"));
            }
            records.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{{args}}}}}",
                escape_json(&span.label),
                span.plane,
                span.start_nanos() / 1_000,
                span.micros,
                span.node.0,
                lane(span.plane),
            ));
        }

        // Staging-ring occupancy counter.
        for (at_nanos, node, depth) in &self.staging_occupancy {
            records.push(format!(
                "{{\"name\":\"staging-depth\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"depth\":{depth}}}}}",
                at_nanos / 1_000,
                node.0,
            ));
        }

        // Instant markers for incidents (process scope when the event
        // names a node, global otherwise).
        for incident in &self.incidents {
            let (scope, pid) = match incident.node {
                Some(node) => ("p", node.0),
                None => ("g", 0),
            };
            records.push(format!(
                "{{\"name\":\"{}: {}\",\"cat\":\"incident\",\"ph\":\"i\",\"s\":\"{scope}\",\"ts\":{},\"pid\":{pid},\"tid\":0}}",
                incident.kind,
                escape_json(&incident.label),
                incident.at_nanos / 1_000,
            ));
        }

        let mut out = String::from("[");
        out.push_str(&records.join(","));
        out.push(']');
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::event::Component;
    use rtml_common::ids::{DriverId, NodeId};

    fn task_events() -> Vec<Event> {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let t = root.child(0);
        let w = WorkerId::new(NodeId(0), 1);
        vec![
            Event {
                at_nanos: 100,
                component: Component::Driver,
                kind: EventKind::TaskSubmitted { task: t },
            },
            Event {
                at_nanos: 150,
                component: Component::LocalScheduler,
                kind: EventKind::TaskQueuedLocal {
                    task: t,
                    node: NodeId(0),
                },
            },
            Event {
                at_nanos: 200,
                component: Component::Worker,
                kind: EventKind::TaskStarted { task: t, worker: w },
            },
            Event {
                at_nanos: 900,
                component: Component::ObjectStore,
                kind: EventKind::ObjectSealed {
                    object: t.return_object(0),
                    node: NodeId(0),
                    size: 8,
                },
            },
            Event {
                at_nanos: 1000,
                component: Component::Worker,
                kind: EventKind::TaskFinished {
                    task: t,
                    worker: w,
                    micros: 1,
                },
            },
        ]
    }

    #[test]
    fn folds_task_timeline() {
        let report = ProfileReport::from_events(&task_events());
        assert_eq!(report.tasks.len(), 1);
        let t = &report.tasks[0];
        assert_eq!(t.submitted, Some(100));
        assert_eq!(t.queued, Some(150));
        assert_eq!(t.started, Some(200));
        assert_eq!(t.finished, Some(1000));
        assert_eq!(t.scheduling_latency_nanos(), Some(100));
        assert!(!t.spilled);
        assert!(!t.failed);
        assert_eq!(report.seals, 1);
    }

    #[test]
    fn latency_histogram_counts_tasks() {
        let report = ProfileReport::from_events(&task_events());
        assert_eq!(report.scheduling_latency().count(), 1);
    }

    #[test]
    fn summary_is_readable() {
        let report = ProfileReport::from_events(&task_events());
        let s = report.summary();
        assert!(s.contains("tasks: 1"), "{s}");
    }

    #[test]
    fn chrome_trace_is_json_array() {
        let report = ProfileReport::from_events(&task_events());
        let json = report.chrome_trace();
        assert!(json.starts_with('['), "{json}");
        assert!(json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn prefetch_events_fold_into_hit_counts() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let o1 = root.child(0).return_object(0);
        let o2 = root.child(1).return_object(0);
        let n = NodeId(2);
        let events = vec![
            Event {
                at_nanos: 1,
                component: Component::LocalScheduler,
                kind: EventKind::PrefetchIssued {
                    object: o1,
                    node: n,
                },
            },
            Event {
                at_nanos: 2,
                component: Component::LocalScheduler,
                kind: EventKind::PrefetchIssued {
                    object: o2,
                    node: n,
                },
            },
            // o1 lands on the requesting node; o2's transfer completes
            // on a different node (not a hit for n).
            Event {
                at_nanos: 3,
                component: Component::ObjectStore,
                kind: EventKind::TransferFinished {
                    object: o1,
                    to: n,
                    micros: 5,
                },
            },
            Event {
                at_nanos: 4,
                component: Component::ObjectStore,
                kind: EventKind::TransferFinished {
                    object: o2,
                    to: NodeId(9),
                    micros: 5,
                },
            },
        ];
        let report = ProfileReport::from_events(&events);
        assert_eq!(report.prefetches_issued, 2);
        assert_eq!(report.prefetch_hits, 1);
        assert!((report.prefetch_hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(report.transfers, 2);
    }

    #[test]
    fn dispatch_latency_measures_queue_to_start() {
        let report = ProfileReport::from_events(&task_events());
        assert_eq!(report.tasks[0].dispatch_latency_nanos(), Some(50));
        assert_eq!(report.dispatch_latency().count(), 1);
    }

    #[test]
    fn empty_report_is_sane() {
        let report = ProfileReport::from_events(&[]);
        assert!(report.tasks.is_empty());
        assert_eq!(report.scheduling_latency().count(), 0);
        assert_eq!(report.chrome_trace(), "[]");
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny\t"), "x\\ny\\t");
        assert_eq!(escape_json("\u{01}"), "\\u0001");
    }

    #[test]
    fn chrome_trace_has_flows_and_no_fake_workers() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let started = root.child(0);
        let never_started = root.child(1);
        let w = WorkerId::new(NodeId(3), 7);
        let events = vec![
            Event {
                at_nanos: 100,
                component: Component::Driver,
                kind: EventKind::TaskSubmitted { task: started },
            },
            Event {
                at_nanos: 150,
                component: Component::LocalScheduler,
                kind: EventKind::TaskQueuedLocal {
                    task: started,
                    node: NodeId(3),
                },
            },
            Event {
                at_nanos: 200,
                component: Component::Worker,
                kind: EventKind::TaskStarted {
                    task: started,
                    worker: w,
                },
            },
            Event {
                at_nanos: 900,
                component: Component::Worker,
                kind: EventKind::TaskFinished {
                    task: started,
                    worker: w,
                    micros: 1,
                },
            },
            // Submitted but never started (or its start fell to
            // retention): must not appear as a slice on worker (0,0).
            Event {
                at_nanos: 120,
                component: Component::Driver,
                kind: EventKind::TaskSubmitted {
                    task: never_started,
                },
            },
        ];
        let report = ProfileReport::from_events(&events);
        let json = report.chrome_trace();
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\""), "{json}");
        assert!(json.contains("\"bp\":\"e\""), "{json}");
        assert!(json.contains("\"pid\":3,\"tid\":7"), "{json}");
        assert!(
            !json.contains(&format!("\"name\":\"{never_started}\",\"cat\":\"task\"")),
            "workerless task must not be invented onto a fake worker: {json}"
        );
    }

    #[test]
    fn chrome_trace_renders_plane_spans_counters_and_instants() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let t = root.child(0);
        let events = vec![
            Event {
                at_nanos: 5_000_000,
                component: Component::Driver,
                kind: EventKind::SpecSegmentCommitted {
                    node: NodeId(0),
                    seq: 1,
                    tasks: 64,
                    micros: 1_000,
                },
            },
            Event {
                at_nanos: 6_000_000,
                component: Component::LocalScheduler,
                kind: EventKind::BatchStaged {
                    node: NodeId(0),
                    seq: 1,
                    tasks: 64,
                    depth: 2,
                },
            },
            Event {
                at_nanos: 7_000_000,
                component: Component::LocalScheduler,
                kind: EventKind::BatchIndexed {
                    node: NodeId(0),
                    seq: 1,
                    tasks: 64,
                    micros: 500,
                },
            },
            Event {
                at_nanos: 8_000_000,
                component: Component::GlobalScheduler,
                kind: EventKind::PlacementBatch {
                    node: NodeId(0),
                    shard: 2,
                    tasks: 32,
                    micros: 200,
                },
            },
            Event {
                at_nanos: 9_000_000,
                component: Component::LocalScheduler,
                kind: EventKind::StealRoundTrip {
                    thief: NodeId(1),
                    victim: NodeId(0),
                    seq: 0,
                    tasks: 4,
                    micros: 300,
                },
            },
            Event {
                at_nanos: 10_000_000,
                component: Component::ReplicationAgent,
                kind: EventKind::ReplicationSweep {
                    node: NodeId(1),
                    hot: 1,
                    placed: 2,
                    released: 0,
                    micros: 400,
                },
            },
            Event {
                at_nanos: 11_000_000,
                component: Component::Worker,
                kind: EventKind::TaskFailed {
                    task: t,
                    message: String::from("boom"),
                },
            },
            Event {
                at_nanos: 12_000_000,
                component: Component::Supervisor,
                kind: EventKind::NodeLost { node: NodeId(1) },
            },
        ];
        let report = ProfileReport::from_events(&events);
        let planes: std::collections::HashSet<&str> =
            report.spans.iter().map(|s| s.plane).collect();
        for plane in ["control", "staging", "placement", "steal", "replication"] {
            assert!(planes.contains(plane), "missing plane {plane}");
        }
        assert_eq!(report.staging_occupancy, vec![(6_000_000, NodeId(0), 2)]);
        assert_eq!(report.incidents.len(), 2);
        let json = report.chrome_trace();
        assert!(json.contains("\"name\":\"thread_name\""), "{json}");
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"name\":\"segment 1\""), "{json}");
        assert!(json.contains("node_lost"), "{json}");
        // Span runs backwards from its end stamp: 5ms end, 1ms dur.
        assert!(json.contains("\"ts\":4000,\"dur\":1000"), "{json}");
    }

    #[test]
    fn summary_reports_retention_drops() {
        let mut report = ProfileReport::from_events(&task_events());
        assert!(!report.summary().contains("PARTIAL"));
        report.dropped_records = 17;
        report.partial = true;
        let s = report.summary();
        assert!(s.contains("PARTIAL"), "{s}");
        assert!(s.contains("17 records dropped"), "{s}");
    }
}
