//! Profiling and debugging tools over the event log (requirement R7).
//!
//! The paper's Figure 3 attaches profiling, debugging, and error-
//! diagnosis tools to the centralized control state. This module is that
//! box: it folds the event log into per-task timelines, summarizes
//! scheduling latency, and exports a Chrome-trace JSON
//! (`chrome://tracing` / Perfetto) of the whole run.

use std::collections::HashMap;

use rtml_common::event::{Event, EventKind};
use rtml_common::ids::{TaskId, WorkerId};
use rtml_common::metrics::{fmt_nanos, Histogram};
use rtml_sched::StealStats;

/// Per-task timeline assembled from the event log.
#[derive(Clone, Debug, Default)]
pub struct TaskProfile {
    /// Task identity.
    pub task: Option<TaskId>,
    /// When the task was submitted (nanos since epoch).
    pub submitted: Option<u64>,
    /// When a local scheduler queued it.
    pub queued: Option<u64>,
    /// Whether it took the spillover path.
    pub spilled: bool,
    /// When the global scheduler placed it (spilled tasks only).
    pub placed: Option<u64>,
    /// When a worker started it.
    pub started: Option<u64>,
    /// When it finished.
    pub finished: Option<u64>,
    /// Executor-measured run time in microseconds.
    pub exec_micros: Option<u64>,
    /// The worker that ran it.
    pub worker: Option<WorkerId>,
    /// Whether it failed.
    pub failed: bool,
    /// Reconstruction attempts observed.
    pub reconstructions: u32,
}

impl TaskProfile {
    /// Submit→start latency (the system overhead the paper's §4.1
    /// microbenchmarks measure), if both endpoints were recorded.
    pub fn scheduling_latency_nanos(&self) -> Option<u64> {
        Some(self.started?.saturating_sub(self.submitted?))
    }

    /// Queue→start (dispatch-to-run) latency: how long the task sat on
    /// its local scheduler between being queued and starting on a
    /// worker. For tasks with remote dependencies this includes the
    /// transfer wait — the quantity dispatch-time prefetch shrinks by
    /// overlapping transfer with queueing.
    pub fn dispatch_latency_nanos(&self) -> Option<u64> {
        Some(self.started?.saturating_sub(self.queued?))
    }
}

/// Aggregated live data-plane counters (transfer services + fetch
/// agents across all alive nodes), attached by
/// [`crate::Cluster::profile`]. Zero when a report is built from raw
/// events alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransferPlaneStats {
    /// Request frames served by transfer services (each may name many
    /// objects — compare with `objects_served` for the coalescing
    /// factor).
    pub requests_served: u64,
    /// Objects served (found and streamed back).
    pub objects_served: u64,
    /// Requested objects the holder no longer had.
    pub misses: u64,
    /// Undecodable or misrouted frames observed by services.
    pub decode_errors: u64,
    /// Reply streams the fabric refused (requester gone).
    pub send_failures: u64,
    /// Chunk frames emitted by services.
    pub chunks_sent: u64,
    /// Distinct transfers started by fetch agents.
    pub fetches: u64,
    /// Fetches answered by joining an in-flight transfer instead of
    /// issuing a duplicate request (single-flight suppression).
    pub duplicate_fetches_suppressed: u64,
    /// Chunk frames received by fetch agents.
    pub chunks_received: u64,
    /// Fetch waits that gave up before completion.
    pub fetch_timeouts: u64,
}

/// Aggregated live replication-plane counters (per-node
/// [`rtml_store::ReplicationAgent`]s), attached by
/// [`crate::Cluster::profile`]. Zero when the plane is off or a report
/// is built from raw events alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplicationPlaneStats {
    /// Demand sweeps executed across all agents.
    pub sweeps: u64,
    /// Objects whose remote-read demand crossed the threshold.
    pub hot_objects: u64,
    /// Replica copies successfully placed on additional holders.
    pub replicas_created: u64,
    /// Replica copies proactively dropped by the demand-decay
    /// reclamation sweep.
    pub replicas_released: u64,
    /// Replica pulls that failed (target died, store pressure, ...).
    pub failures: u64,
}

/// Aggregated live steal-plane counters (per-node local schedulers),
/// attached by [`crate::Cluster::profile`]. Zero when the plane is off
/// or a report is built from raw events alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StealPlaneStats {
    /// Steal requests sent by idle schedulers.
    pub attempts: u64,
    /// Non-empty grants received.
    pub grants: u64,
    /// Empty grants received (stale victims whose queues drained).
    pub empty_grants: u64,
    /// Requests that timed out without any grant (victim died).
    pub timeouts: u64,
    /// Tasks received via grants.
    pub tasks_stolen: u64,
    /// Stolen tasks arriving with at least one dependency already
    /// resident on the thief — the locality scoring landing.
    pub locality_hits: u64,
    /// Tasks handed out by victims.
    pub tasks_granted: u64,
}

impl StealPlaneStats {
    /// Fraction of stolen tasks that found a dependency already local
    /// (1.0 when every steal was locality-guided; 0.0 when none were,
    /// or nothing was stolen).
    pub fn locality_hit_rate(&self) -> f64 {
        if self.tasks_stolen == 0 {
            return 0.0;
        }
        self.locality_hits as f64 / self.tasks_stolen as f64
    }

    /// Folds one scheduler's live counters in.
    pub fn absorb(&mut self, stats: &StealStats) {
        self.attempts += stats.attempts.get();
        self.grants += stats.grants.get();
        self.empty_grants += stats.empty_grants.get();
        self.timeouts += stats.timeouts.get();
        self.tasks_stolen += stats.tasks_stolen.get();
        self.locality_hits += stats.locality_hits.get();
        self.tasks_granted += stats.tasks_granted.get();
    }
}

/// A digest of one run's event log.
#[derive(Debug, Default)]
pub struct ProfileReport {
    /// Per-task timelines, ordered by submission time.
    pub tasks: Vec<TaskProfile>,
    /// Cross-node transfers completed.
    pub transfers: usize,
    /// Objects evicted.
    pub evictions: usize,
    /// Objects sealed.
    pub seals: usize,
    /// Workers lost.
    pub workers_lost: usize,
    /// Nodes lost.
    pub nodes_lost: usize,
    /// Dependencies proactively requested at task-queue time.
    pub prefetches_issued: usize,
    /// Prefetched dependencies that subsequently arrived on the
    /// requesting node (the transfer completed).
    pub prefetch_hits: usize,
    /// Live data-plane counters (populated by
    /// [`crate::Cluster::profile`]; zero for raw event folds).
    pub transfer: TransferPlaneStats,
    /// Live replication-plane counters (populated by
    /// [`crate::Cluster::profile`]; zero for raw event folds).
    pub replication: ReplicationPlaneStats,
    /// Dispatch-time prefetches skipped by the capacity admission guard
    /// (live scheduler counters; zero for raw event folds).
    pub prefetch_skipped_capacity: u64,
    /// Dispatch-time prefetches deferred by head-of-queue
    /// prioritization under a tight budget (live scheduler counters).
    pub prefetch_deferred_priority: u64,
    /// Live steal-plane counters (populated by
    /// [`crate::Cluster::profile`]; zero for raw event folds).
    pub steal: StealPlaneStats,
    /// Grant-arrival → worker-dispatch latency across every stolen
    /// task, folded from the per-node histograms.
    pub steal_to_run: Histogram,
    /// Steal grants recorded in the event log (`TaskStolen` records —
    /// the events-based mirror of `steal.tasks_granted`).
    pub steal_events: usize,
}

impl ProfileReport {
    /// Folds a (time-sorted) event stream into a report.
    pub fn from_events(events: &[Event]) -> ProfileReport {
        let mut by_task: HashMap<TaskId, TaskProfile> = HashMap::new();
        let mut report = ProfileReport::default();
        let mut prefetched: std::collections::HashSet<(
            rtml_common::ids::ObjectId,
            rtml_common::ids::NodeId,
        )> = std::collections::HashSet::new();
        for event in events {
            match &event.kind {
                EventKind::ObjectSealed { .. } => report.seals += 1,
                EventKind::ObjectEvicted { .. } => report.evictions += 1,
                EventKind::TransferFinished { object, to, .. } => {
                    report.transfers += 1;
                    if prefetched.remove(&(*object, *to)) {
                        report.prefetch_hits += 1;
                    }
                }
                EventKind::PrefetchIssued { object, node } => {
                    report.prefetches_issued += 1;
                    prefetched.insert((*object, *node));
                }
                EventKind::WorkerLost { .. } => report.workers_lost += 1,
                EventKind::NodeLost { .. } => report.nodes_lost += 1,
                EventKind::TaskStolen { .. } => report.steal_events += 1,
                _ => {}
            }
            let Some(task) = event.kind.task() else {
                continue;
            };
            let profile = by_task.entry(task).or_default();
            profile.task = Some(task);
            match &event.kind {
                EventKind::TaskSubmitted { .. } => {
                    profile.submitted.get_or_insert(event.at_nanos);
                }
                EventKind::TaskQueuedLocal { .. } => {
                    profile.queued.get_or_insert(event.at_nanos);
                }
                EventKind::TaskSpilled { .. } => profile.spilled = true,
                EventKind::TaskPlaced { .. } => {
                    profile.placed.get_or_insert(event.at_nanos);
                }
                EventKind::TaskStarted { worker, .. } => {
                    profile.started.get_or_insert(event.at_nanos);
                    profile.worker = Some(*worker);
                }
                EventKind::TaskFinished { micros, .. } => {
                    profile.finished = Some(event.at_nanos);
                    profile.exec_micros = Some(*micros);
                }
                EventKind::TaskFailed { .. } => profile.failed = true,
                EventKind::TaskReconstructed { .. } => profile.reconstructions += 1,
                _ => {}
            }
        }
        let mut tasks: Vec<TaskProfile> = by_task.into_values().collect();
        tasks.sort_by_key(|t| t.submitted.unwrap_or(u64::MAX));
        report.tasks = tasks;
        report
    }

    /// Histogram of submit→start scheduling latency.
    pub fn scheduling_latency(&self) -> Histogram {
        let hist = Histogram::new();
        for task in &self.tasks {
            if let Some(nanos) = task.scheduling_latency_nanos() {
                hist.record(nanos);
            }
        }
        hist
    }

    /// Histogram of queue→start (dispatch-to-run) latency — the window
    /// dispatch-time prefetch shrinks for remote-dependency tasks.
    pub fn dispatch_latency(&self) -> Histogram {
        let hist = Histogram::new();
        for task in &self.tasks {
            if let Some(nanos) = task.dispatch_latency_nanos() {
                hist.record(nanos);
            }
        }
        hist
    }

    /// Fraction of issued prefetches whose transfer completed on the
    /// requesting node (1.0 when every prefetch landed).
    pub fn prefetch_hit_rate(&self) -> f64 {
        if self.prefetches_issued == 0 {
            return 0.0;
        }
        self.prefetch_hits as f64 / self.prefetches_issued as f64
    }

    /// Number of tasks that took the spill path.
    pub fn spilled_count(&self) -> usize {
        self.tasks.iter().filter(|t| t.spilled).count()
    }

    /// Number of failed tasks.
    pub fn failed_count(&self) -> usize {
        self.tasks.iter().filter(|t| t.failed).count()
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let latency = self.scheduling_latency().snapshot();
        let steal_latency = self.steal_to_run.snapshot();
        format!(
            "tasks: {} ({} spilled, {} failed)\n\
             scheduling latency: p50 {} / p99 {} / max {}\n\
             objects sealed: {}, transfers: {}, evictions: {}\n\
             prefetch: {} issued, {} hits, {} skipped (capacity), {} deferred (priority); duplicates suppressed: {}\n\
             replication: {} hot objects, {} replicas created, {} released, {} failures\n\
             steal: {} attempts, {} grants, {} tasks stolen ({:.2} locality), steal-to-run p50 {}\n\
             failures injected: {} workers, {} nodes",
            self.tasks.len(),
            self.spilled_count(),
            self.failed_count(),
            fmt_nanos(latency.p50()),
            fmt_nanos(latency.p99()),
            fmt_nanos(latency.max()),
            self.seals,
            self.transfers,
            self.evictions,
            self.prefetches_issued,
            self.prefetch_hits,
            self.prefetch_skipped_capacity,
            self.prefetch_deferred_priority,
            self.transfer.duplicate_fetches_suppressed,
            self.replication.hot_objects,
            self.replication.replicas_created,
            self.replication.replicas_released,
            self.replication.failures,
            self.steal.attempts,
            self.steal.grants,
            self.steal.tasks_stolen,
            self.steal.locality_hit_rate(),
            fmt_nanos(steal_latency.p50()),
            self.workers_lost,
            self.nodes_lost,
        )
    }

    /// Chrome-trace JSON (the "trace event format"): one complete event
    /// per executed task, with node as pid and worker as tid. Load in
    /// `chrome://tracing` or Perfetto.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for task in &self.tasks {
            let (Some(id), Some(started)) = (task.task, task.started) else {
                continue;
            };
            let finished = task.finished.unwrap_or(started);
            let worker = task
                .worker
                .unwrap_or(WorkerId::new(rtml_common::ids::NodeId(0), 0));
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{id}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
                started / 1_000,
                (finished.saturating_sub(started)) / 1_000,
                worker.node.0,
                worker.index,
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::event::Component;
    use rtml_common::ids::{DriverId, NodeId};

    fn task_events() -> Vec<Event> {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let t = root.child(0);
        let w = WorkerId::new(NodeId(0), 1);
        vec![
            Event {
                at_nanos: 100,
                component: Component::Driver,
                kind: EventKind::TaskSubmitted { task: t },
            },
            Event {
                at_nanos: 150,
                component: Component::LocalScheduler,
                kind: EventKind::TaskQueuedLocal {
                    task: t,
                    node: NodeId(0),
                },
            },
            Event {
                at_nanos: 200,
                component: Component::Worker,
                kind: EventKind::TaskStarted { task: t, worker: w },
            },
            Event {
                at_nanos: 900,
                component: Component::ObjectStore,
                kind: EventKind::ObjectSealed {
                    object: t.return_object(0),
                    node: NodeId(0),
                    size: 8,
                },
            },
            Event {
                at_nanos: 1000,
                component: Component::Worker,
                kind: EventKind::TaskFinished {
                    task: t,
                    worker: w,
                    micros: 1,
                },
            },
        ]
    }

    #[test]
    fn folds_task_timeline() {
        let report = ProfileReport::from_events(&task_events());
        assert_eq!(report.tasks.len(), 1);
        let t = &report.tasks[0];
        assert_eq!(t.submitted, Some(100));
        assert_eq!(t.queued, Some(150));
        assert_eq!(t.started, Some(200));
        assert_eq!(t.finished, Some(1000));
        assert_eq!(t.scheduling_latency_nanos(), Some(100));
        assert!(!t.spilled);
        assert!(!t.failed);
        assert_eq!(report.seals, 1);
    }

    #[test]
    fn latency_histogram_counts_tasks() {
        let report = ProfileReport::from_events(&task_events());
        assert_eq!(report.scheduling_latency().count(), 1);
    }

    #[test]
    fn summary_is_readable() {
        let report = ProfileReport::from_events(&task_events());
        let s = report.summary();
        assert!(s.contains("tasks: 1"), "{s}");
    }

    #[test]
    fn chrome_trace_is_json_array() {
        let report = ProfileReport::from_events(&task_events());
        let json = report.chrome_trace();
        assert!(json.starts_with('['), "{json}");
        assert!(json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn prefetch_events_fold_into_hit_counts() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let o1 = root.child(0).return_object(0);
        let o2 = root.child(1).return_object(0);
        let n = NodeId(2);
        let events = vec![
            Event {
                at_nanos: 1,
                component: Component::LocalScheduler,
                kind: EventKind::PrefetchIssued {
                    object: o1,
                    node: n,
                },
            },
            Event {
                at_nanos: 2,
                component: Component::LocalScheduler,
                kind: EventKind::PrefetchIssued {
                    object: o2,
                    node: n,
                },
            },
            // o1 lands on the requesting node; o2's transfer completes
            // on a different node (not a hit for n).
            Event {
                at_nanos: 3,
                component: Component::ObjectStore,
                kind: EventKind::TransferFinished {
                    object: o1,
                    to: n,
                    micros: 5,
                },
            },
            Event {
                at_nanos: 4,
                component: Component::ObjectStore,
                kind: EventKind::TransferFinished {
                    object: o2,
                    to: NodeId(9),
                    micros: 5,
                },
            },
        ];
        let report = ProfileReport::from_events(&events);
        assert_eq!(report.prefetches_issued, 2);
        assert_eq!(report.prefetch_hits, 1);
        assert!((report.prefetch_hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(report.transfers, 2);
    }

    #[test]
    fn dispatch_latency_measures_queue_to_start() {
        let report = ProfileReport::from_events(&task_events());
        assert_eq!(report.tasks[0].dispatch_latency_nanos(), Some(50));
        assert_eq!(report.dispatch_latency().count(), 1);
    }

    #[test]
    fn empty_report_is_sane() {
        let report = ProfileReport::from_events(&[]);
        assert!(report.tasks.is_empty());
        assert_eq!(report.scheduling_latency().count(), 0);
        assert_eq!(report.chrome_trace(), "[]");
    }
}
