//! The shared service bundle threaded through every runtime component.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Sender;
use parking_lot::RwLock;

use rtml_common::error::{Error, Result};
use rtml_common::ids::NodeId;
use rtml_common::resources::Resources;
use rtml_common::retry::RetryPolicy;
use rtml_common::task::TaskSpec;
use rtml_kv::{EventLog, FunctionTable, KvStore, ObjectTable, TaskTable};
use rtml_net::{Fabric, FabricConfig};
use rtml_sched::LocalMsg;
use rtml_store::{FetchAgent, ObjectStore, TransferDirectory, TransferStats};

use crate::health::HealthTracker;
use crate::registry::FunctionRegistry;

/// Runtime-wide timing knobs.
#[derive(Clone, Debug)]
pub struct RuntimeTuning {
    /// Per-attempt timeout for cross-node object fetches.
    pub fetch_timeout: Duration,
    /// Default deadline for blocking `get`s.
    pub default_get_timeout: Duration,
    /// Retention cap per event-log stream (`None` = unbounded). Bounds
    /// control-plane memory on sustained throughput runs; dropped
    /// records are counted on the [`EventLog`].
    pub event_log_retention: Option<usize>,
    /// Driver-side submission striping: consecutive driver batches are
    /// routed round-robin across this many nodes' local schedulers so
    /// one scheduler is not the ingest funnel. `1` (the default) keeps
    /// every batch on the driver's home node. Striping is
    /// placement-neutral — task ids stay producer-embedded and the
    /// placement policies ignore the submitting node — so results and
    /// placements are identical with it on or off.
    pub submit_striping: usize,
    /// The one retry/backoff discipline shared by the fetch path,
    /// stripe failover, and replication pulls.
    pub retry: RetryPolicy,
    /// A peer whose newest load report is older than this is suspect
    /// (see [`crate::health::HealthTracker`]).
    pub suspect_after: Duration,
    /// Cap on concurrently in-flight lineage reconstructions, so a
    /// churn burst cannot trigger a reconstruction storm. Deferred
    /// replays are retried by the callers' poll loops.
    pub reconstruction_cap: usize,
}

impl Default for RuntimeTuning {
    fn default() -> Self {
        RuntimeTuning {
            fetch_timeout: Duration::from_secs(2),
            default_get_timeout: Duration::from_secs(30),
            event_log_retention: None,
            submit_striping: 1,
            retry: RetryPolicy::default(),
            suspect_after: Duration::from_millis(100),
            reconstruction_cap: 64,
        }
    }
}

/// Everything a component needs to participate in the cluster: the
/// control-plane tables, the function registry, the fabric, and the
/// routing maps for live nodes.
///
/// All mutable state lives in the control plane or behind the node maps;
/// `Services` itself can be shared freely.
pub struct Services {
    /// Control-plane store.
    pub kv: Arc<KvStore>,
    /// Object table view.
    pub objects: ObjectTable,
    /// Task table view.
    pub tasks: TaskTable,
    /// Function metadata table.
    pub functions: FunctionTable,
    /// Event log (R7).
    pub events: EventLog,
    /// In-process callables.
    pub registry: Arc<FunctionRegistry>,
    /// Simulated network.
    pub fabric: Arc<Fabric>,
    /// Node → transfer service address.
    pub directory: Arc<TransferDirectory>,
    /// Peer health view (heartbeat staleness + failure evidence),
    /// steering stripe targets, replication placement, and holder
    /// rankings away from suspect nodes.
    pub health: Arc<HealthTracker>,
    /// Timing knobs.
    pub tuning: RuntimeTuning,
    router: RwLock<HashMap<NodeId, Sender<LocalMsg>>>,
    stores: RwLock<HashMap<NodeId, Arc<ObjectStore>>>,
    agents: RwLock<HashMap<NodeId, Arc<FetchAgent>>>,
    transfer_stats: RwLock<HashMap<NodeId, Arc<TransferStats>>>,
    node_totals: RwLock<HashMap<NodeId, Resources>>,
}

impl Services {
    /// Creates the service bundle (control plane, fabric, registry).
    pub fn create(
        kv_shards: usize,
        fabric_config: FabricConfig,
        event_logging: bool,
        tuning: RuntimeTuning,
    ) -> Arc<Self> {
        let kv = KvStore::new(kv_shards);
        let events = if event_logging {
            EventLog::new(kv.clone()).with_retention(tuning.event_log_retention)
        } else {
            EventLog::disabled(kv.clone())
        };
        Arc::new(Services {
            objects: ObjectTable::new(kv.clone()),
            tasks: TaskTable::new(kv.clone()),
            functions: FunctionTable::new(kv.clone()),
            events,
            registry: FunctionRegistry::new(),
            fabric: Fabric::new(fabric_config),
            directory: TransferDirectory::new(),
            health: HealthTracker::new(kv.clone(), tuning.suspect_after),
            tuning,
            router: RwLock::new(HashMap::new()),
            stores: RwLock::new(HashMap::new()),
            agents: RwLock::new(HashMap::new()),
            transfer_stats: RwLock::new(HashMap::new()),
            node_totals: RwLock::new(HashMap::new()),
            kv,
        })
    }

    /// Registers a node's transfer-service counters so other components
    /// (the scheduler's replication hint) can route per-object demand to
    /// the holder that will act on it.
    pub fn attach_transfer_stats(&self, node: NodeId, stats: Arc<TransferStats>) {
        self.transfer_stats.write().insert(node, stats);
    }

    /// The node's transfer-service counters, if the node is alive.
    pub fn transfer_stats(&self, node: NodeId) -> Option<Arc<TransferStats>> {
        self.transfer_stats.read().get(&node).cloned()
    }

    /// Registers a live node's store, fetch agent, scheduler channel,
    /// and capacity.
    pub fn attach_node(
        &self,
        node: NodeId,
        store: Arc<ObjectStore>,
        agent: Arc<FetchAgent>,
        sched: Sender<LocalMsg>,
        total: Resources,
    ) {
        self.stores.write().insert(node, store);
        self.agents.write().insert(node, agent);
        self.router.write().insert(node, sched);
        self.node_totals.write().insert(node, total);
    }

    /// Removes a node from the routing maps (kill or shutdown).
    pub fn detach_node(&self, node: NodeId) {
        self.stores.write().remove(&node);
        self.agents.write().remove(&node);
        self.transfer_stats.write().remove(&node);
        self.router.write().remove(&node);
        self.node_totals.write().remove(&node);
    }

    /// The node's object store, if the node is alive.
    pub fn store(&self, node: NodeId) -> Option<Arc<ObjectStore>> {
        self.stores.read().get(&node).cloned()
    }

    /// The node's fetch agent (persistent, single-flighting transfer
    /// client), if the node is alive.
    pub fn fetch_agent(&self, node: NodeId) -> Option<Arc<FetchAgent>> {
        self.agents.read().get(&node).cloned()
    }

    /// Sends a task to `node`'s local scheduler. Falls back to any alive
    /// node when the target is gone (e.g. reconstruction onto a dead
    /// submitter).
    pub fn submit_to(&self, node: NodeId, spec: TaskSpec) -> Result<()> {
        let router = self.router.read();
        let target = router
            .get(&node)
            .or_else(|| self.lowest_alive_locked(&router))
            .ok_or(Error::ShuttingDown)?;
        target
            .send(LocalMsg::Submit {
                spec,
                via_global: false,
            })
            .map_err(|_| Error::Disconnected("local scheduler"))
    }

    /// Sends a whole batch of tasks to `node`'s local scheduler as one
    /// message — the routing half of the batched hot path. Falls back to
    /// any alive node when the target is gone, like
    /// [`Services::submit_to`].
    pub fn submit_batch_to(&self, node: NodeId, specs: Vec<TaskSpec>) -> Result<()> {
        let router = self.router.read();
        let target = router
            .get(&node)
            .or_else(|| self.lowest_alive_locked(&router))
            .ok_or(Error::ShuttingDown)?;
        target
            .send(LocalMsg::SubmitBatch {
                specs,
                via_global: false,
            })
            .map_err(|_| Error::Disconnected("local scheduler"))
    }

    fn lowest_alive_locked<'a>(
        &self,
        router: &'a HashMap<NodeId, Sender<LocalMsg>>,
    ) -> Option<&'a Sender<LocalMsg>> {
        router.iter().min_by_key(|(n, _)| **n).map(|(_, tx)| tx)
    }

    /// The lowest-numbered alive node (the driver's preferred home).
    pub fn any_alive(&self) -> Option<NodeId> {
        self.router.read().keys().min().copied()
    }

    /// The ingest target for the driver's `index`-th submission batch
    /// under [`RuntimeTuning::submit_striping`]: round-robin over the
    /// `min(K, alive)` lowest alive nodes, starting at `home`'s position
    /// so stripe width 1 degenerates to the home node exactly. Falls
    /// back to `home` when the router is empty (shutdown race — the
    /// send itself will fail cleanly downstream).
    pub fn stripe_target(&self, home: NodeId, index: u64) -> NodeId {
        let width = self.tuning.submit_striping.max(1);
        if width == 1 {
            return home;
        }
        let router = self.router.read();
        let mut nodes: Vec<NodeId> = router.keys().copied().collect();
        drop(router);
        if nodes.is_empty() {
            return home;
        }
        nodes.sort();
        nodes.truncate(width);
        // Suspect nodes are steered out of the stripe set (unless the
        // whole set is suspect) so a gray ingest target stops taking
        // fresh batches while its suspicion lasts.
        let nodes = self.health.filter_healthy(nodes);
        let start = nodes.iter().position(|n| *n == home).unwrap_or(0);
        nodes[(start + index as usize) % nodes.len()]
    }

    /// Routes one driver stripe batch with failover: try the computed
    /// stripe target; if its scheduler channel is gone (killed
    /// mid-send), re-aim at the next stripe position. Attempts are
    /// bounded by the retry policy; specs are recovered from each
    /// failed send, never lost.
    pub fn submit_batch_striped(
        &self,
        home: NodeId,
        index: u64,
        specs: Vec<TaskSpec>,
    ) -> Result<()> {
        let attempts = self.tuning.retry.max_attempts.max(1) as u64;
        let mut specs = specs;
        let mut last = Error::ShuttingDown;
        for attempt in 0..attempts {
            let target = self.stripe_target(home, index + attempt);
            match self.try_submit_batch_to(target, specs) {
                Ok(()) => return Ok(()),
                Err((returned, err)) => {
                    specs = returned;
                    last = err;
                }
            }
        }
        Err(last)
    }

    /// Like [`Services::submit_batch_to`], but hands the specs back on
    /// failure so the caller can fail over without losing the batch.
    fn try_submit_batch_to(
        &self,
        node: NodeId,
        specs: Vec<TaskSpec>,
    ) -> std::result::Result<(), (Vec<TaskSpec>, Error)> {
        let router = self.router.read();
        let Some(target) = router
            .get(&node)
            .or_else(|| self.lowest_alive_locked(&router))
        else {
            return Err((specs, Error::ShuttingDown));
        };
        let target = target.clone();
        drop(router);
        target
            .send(LocalMsg::SubmitBatch {
                specs,
                via_global: false,
            })
            .map_err(|failed| match failed.0 {
                LocalMsg::SubmitBatch { specs, .. } => {
                    (specs, Error::Disconnected("local scheduler"))
                }
                _ => unreachable!("send returns the message it failed to send"),
            })
    }

    /// Direct channel to `node`'s local scheduler (used by worker
    /// contexts to report blocked/unblocked transitions).
    pub fn sched_sender(&self, node: NodeId) -> Option<Sender<LocalMsg>> {
        self.router.read().get(&node).cloned()
    }

    /// Nodes currently routable.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.router.read().keys().copied().collect();
        nodes.sort();
        nodes
    }

    /// Whether any alive node's total capacity fits `demand` — the
    /// admission-control check that rejects permanently unschedulable
    /// tasks at submission time.
    pub fn cluster_fits(&self, demand: &Resources) -> bool {
        self.node_totals
            .read()
            .values()
            .any(|total| total.fits(demand))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use rtml_store::StoreConfig;

    fn services() -> Arc<Services> {
        Services::create(2, FabricConfig::default(), true, RuntimeTuning::default())
    }

    fn store_and_agent(
        sv: &Services,
        node: NodeId,
    ) -> (Arc<ObjectStore>, Arc<rtml_store::FetchAgent>) {
        let store = Arc::new(ObjectStore::new(StoreConfig {
            node,
            ..StoreConfig::default()
        }));
        let agent = Arc::new(rtml_store::FetchAgent::spawn(
            sv.fabric.clone(),
            store.clone(),
            sv.directory.clone(),
        ));
        (store, agent)
    }

    #[test]
    fn attach_detach_lifecycle() {
        let sv = services();
        assert_eq!(sv.any_alive(), None);
        assert!(!sv.cluster_fits(&Resources::cpu(1.0)));

        let (store, agent) = store_and_agent(&sv, NodeId(3));
        let (tx, _rx) = unbounded();
        sv.attach_node(NodeId(3), store, agent, tx, Resources::cpu(4.0));
        assert_eq!(sv.any_alive(), Some(NodeId(3)));
        assert!(sv.cluster_fits(&Resources::cpu(4.0)));
        assert!(!sv.cluster_fits(&Resources::gpu(1.0)));
        assert!(sv.store(NodeId(3)).is_some());
        assert!(sv.fetch_agent(NodeId(3)).is_some());
        assert_eq!(sv.alive_nodes(), vec![NodeId(3)]);

        sv.detach_node(NodeId(3));
        assert_eq!(sv.any_alive(), None);
        assert!(sv.store(NodeId(3)).is_none());
        assert!(sv.fetch_agent(NodeId(3)).is_none());
    }

    #[test]
    fn submit_falls_back_to_alive_node() {
        let sv = services();
        let (store, agent) = store_and_agent(&sv, NodeId(0));
        let (tx, rx) = unbounded();
        sv.attach_node(NodeId(0), store, agent, tx, Resources::cpu(4.0));

        use rtml_common::ids::{DriverId, FunctionId, TaskId};
        let root = TaskId::driver_root(DriverId::from_index(0));
        let spec = TaskSpec::simple(root.child(0), FunctionId::from_name("f"), vec![]);
        // Target node 9 is dead; the task must land on node 0.
        sv.submit_to(NodeId(9), spec.clone()).unwrap();
        match rx.recv().unwrap() {
            LocalMsg::Submit { spec: got, .. } => assert_eq!(got.task_id, spec.task_id),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn submit_with_no_nodes_errors() {
        let sv = services();
        use rtml_common::ids::{DriverId, FunctionId, TaskId};
        let root = TaskId::driver_root(DriverId::from_index(0));
        let spec = TaskSpec::simple(root.child(0), FunctionId::from_name("f"), vec![]);
        assert_eq!(sv.submit_to(NodeId(0), spec), Err(Error::ShuttingDown));
    }
}
