//! The in-process function registry (the callable half of the paper's
//! function table).
//!
//! In a multi-process deployment, function *code* ships to workers and
//! the control plane's function table maps IDs to that code. In-process,
//! all workers share one registry of `Arc<dyn Fn>`s; the control-plane
//! [`rtml_kv::FunctionTable`] still records the metadata (name, arity) so
//! that lineage replay can verify a spec is executable and the profiler
//! can print names.
//!
//! Functions are identified by the hash of their registered **name**, so
//! a restarted process that re-registers the same names can execute specs
//! recorded before the restart — the property the paper's recovery story
//! requires.

use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use rtml_common::codec::{decode_from_slice, encode_to_bytes, Codec};
use rtml_common::error::{Error, Result};
use rtml_common::ids::FunctionId;

use crate::caller::TaskContext;

/// The raw callable form: value-encoded args in, value-encoded returns
/// out. The [`TaskContext`] allows nested submissions (R3).
pub type RawTaskFn = Arc<dyn Fn(&TaskContext, &[Bytes]) -> Result<Vec<Bytes>> + Send + Sync>;

struct Registered {
    name: String,
    arity: u32,
    f: RawTaskFn,
}

/// Process-wide registry of executable task functions.
#[derive(Default)]
pub struct FunctionRegistry {
    fns: RwLock<HashMap<FunctionId, Registered>>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(FunctionRegistry::default())
    }

    /// Registers a raw function under `name`. Re-registration replaces
    /// the callable (useful for process-restart simulations).
    pub fn register_raw(&self, name: &str, arity: u32, f: RawTaskFn) -> FunctionId {
        let id = FunctionId::from_name(name);
        self.fns.write().insert(
            id,
            Registered {
                name: name.to_string(),
                arity,
                f,
            },
        );
        id
    }

    /// Looks up the callable for `id`.
    pub fn get(&self, id: FunctionId) -> Option<RawTaskFn> {
        self.fns.read().get(&id).map(|r| r.f.clone())
    }

    /// The registered name for `id`.
    pub fn name_of(&self, id: FunctionId) -> Option<String> {
        self.fns.read().get(&id).map(|r| r.name.clone())
    }

    /// The registered arity for `id`.
    pub fn arity_of(&self, id: FunctionId) -> Option<u32> {
        self.fns.read().get(&id).map(|r| r.arity)
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.fns.read().len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Decodes argument `idx` for a function named `name`.
fn arg<T: Codec>(name: &str, args: &[Bytes], idx: usize) -> Result<T> {
    let bytes = args
        .get(idx)
        .ok_or_else(|| Error::InvalidArgument(format!("{name}: missing argument {idx}")))?;
    decode_from_slice(bytes)
        .map_err(|e| Error::InvalidArgument(format!("{name}: argument {idx}: {e}")))
}

macro_rules! typed_func {
    (
        $(#[$meta:meta])*
        $token:ident, $register:ident, $register_ctx:ident, $arity:literal,
        [$($ty:ident : $idx:tt),*]
    ) => {
        $(#[$meta])*
        pub struct $token<$($ty,)* R> {
            id: FunctionId,
            _marker: PhantomData<fn($($ty),*) -> R>,
        }

        impl<$($ty,)* R> Clone for $token<$($ty,)* R> {
            fn clone(&self) -> Self {
                *self
            }
        }
        impl<$($ty,)* R> Copy for $token<$($ty,)* R> {}

        impl<$($ty,)* R> $token<$($ty,)* R> {
            /// The function-table ID behind this token.
            pub fn id(&self) -> FunctionId {
                self.id
            }
        }

        impl FunctionRegistry {
            /// Registers a typed function without context access.
            pub fn $register<$($ty: Codec + 'static,)* R: Codec + 'static>(
                &self,
                name: &str,
                f: impl Fn($($ty),*) -> Result<R> + Send + Sync + 'static,
            ) -> $token<$($ty,)* R> {
                let owned = name.to_string();
                let id = self.register_raw(
                    name,
                    $arity,
                    Arc::new(move |_ctx, args: &[Bytes]| {
                        let _ = (&owned, args);
                        let result = f($(arg::<$ty>(&owned, args, $idx)?),*)?;
                        Ok(vec![encode_to_bytes(&result)])
                    }),
                );
                $token { id, _marker: PhantomData }
            }

            /// Registers a typed function that can also use the
            /// [`TaskContext`] (nested task creation, `get`, `wait`).
            pub fn $register_ctx<$($ty: Codec + 'static,)* R: Codec + 'static>(
                &self,
                name: &str,
                f: impl Fn(&TaskContext $(, $ty)*) -> Result<R> + Send + Sync + 'static,
            ) -> $token<$($ty,)* R> {
                let owned = name.to_string();
                let id = self.register_raw(
                    name,
                    $arity,
                    Arc::new(move |ctx, args: &[Bytes]| {
                        let _ = (&owned, args);
                        let result = f(ctx $(, arg::<$ty>(&owned, args, $idx)?)*)?;
                        Ok(vec![encode_to_bytes(&result)])
                    }),
                );
                $token { id, _marker: PhantomData }
            }
        }
    };
}

typed_func!(
    /// Token for a registered nullary function.
    Func0, register0, register0_ctx, 0, []
);
typed_func!(
    /// Token for a registered unary function.
    Func1, register1, register1_ctx, 1, [A: 0]
);
typed_func!(
    /// Token for a registered binary function.
    Func2, register2, register2_ctx, 2, [A: 0, B: 1]
);
typed_func!(
    /// Token for a registered ternary function.
    Func3, register3, register3_ctx, 3, [A: 0, B: 1, C: 2]
);
typed_func!(
    /// Token for a registered 4-ary function.
    Func4, register4, register4_ctx, 4, [A: 0, B: 1, C: 2, D: 3]
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_invoke_raw() {
        let reg = FunctionRegistry::new();
        let id = reg.register_raw(
            "add",
            2,
            Arc::new(|_ctx, args| {
                let a: i64 = decode_from_slice(&args[0]).unwrap();
                let b: i64 = decode_from_slice(&args[1]).unwrap();
                Ok(vec![encode_to_bytes(&(a + b))])
            }),
        );
        assert_eq!(reg.name_of(id).as_deref(), Some("add"));
        assert_eq!(reg.arity_of(id), Some(2));
        assert_eq!(reg.len(), 1);
        assert!(reg.get(FunctionId::from_name("missing")).is_none());
    }

    #[test]
    fn name_determines_id() {
        let reg = FunctionRegistry::new();
        let f = reg.register1("double", |x: i64| Ok(x * 2));
        assert_eq!(f.id(), FunctionId::from_name("double"));
    }

    #[test]
    fn reregistration_replaces() {
        let reg = FunctionRegistry::new();
        let _ = reg.register0("f", || Ok(1i64));
        let _ = reg.register0("f", || Ok(2i64));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn typed_tokens_are_copy() {
        let reg = FunctionRegistry::new();
        let f = reg.register2("sum", |a: i64, b: i64| Ok(a + b));
        let g = f;
        assert_eq!(f.id(), g.id());
    }

    #[test]
    fn missing_argument_is_an_error() {
        let reg = FunctionRegistry::new();
        let f = reg.register1("one_arg", |x: u64| Ok(x));
        let raw = reg.get(f.id()).unwrap();
        // Invoking with no args must error, not panic. A context is
        // required by the signature; build a detached one via test
        // helper.
        let err =
            crate::caller::test_support::with_detached_context(|ctx| raw(ctx, &[]).unwrap_err());
        assert!(matches!(err, Error::InvalidArgument(_)));
    }
}
