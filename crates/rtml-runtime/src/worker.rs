//! Worker threads: where tasks actually run.
//!
//! A worker receives [`WorkerCommand::Run`] from its local scheduler,
//! resolves the task's arguments from the node's object store (they are
//! local by the time the scheduler dispatches, modulo rare races that the
//! fetch path covers), invokes the registered function with a
//! [`TaskContext`] (giving the task the full API — dynamic graphs, R3),
//! seals the results, and reports back.
//!
//! Failure semantics:
//! - An application error or panic seals **error envelopes** for every
//!   return object, so consumers fail fast and errors propagate along
//!   dataflow edges.
//! - A worker killed by failure injection discards all effects of its
//!   in-flight task (no seals, no completion message) — exactly what a
//!   process crash would look like to the rest of the system.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};

use rtml_common::error::{Error, Result};
use rtml_common::event::{Component, Event, EventKind};
use rtml_common::ids::WorkerId;
use rtml_common::task::{ArgSpec, TaskSpec, TaskState};
use rtml_sched::{LocalMsg, WorkerCommand};

use crate::caller::TaskContext;
use crate::envelope::{self, Envelope};
use crate::fetch;
use crate::lineage::ReconstructionManager;
use crate::services::Services;

/// A running worker thread plus its kill switch.
pub struct WorkerRuntime {
    /// Worker identity.
    pub id: WorkerId,
    kill: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl WorkerRuntime {
    /// Spawns a worker thread.
    pub fn spawn(
        id: WorkerId,
        services: Arc<Services>,
        recon: Arc<ReconstructionManager>,
        sched_tx: Sender<LocalMsg>,
        cmd_rx: Receiver<WorkerCommand>,
    ) -> WorkerRuntime {
        let kill = Arc::new(AtomicBool::new(false));
        let kill2 = kill.clone();
        let join = std::thread::Builder::new()
            .name(format!("rtml-worker-{id}"))
            .spawn(move || worker_loop(id, services, recon, sched_tx, cmd_rx, kill2))
            .expect("spawn worker");
        WorkerRuntime {
            id,
            kill,
            join: Some(join),
        }
    }

    /// Simulates a crash: all effects of the in-flight task (if any) are
    /// discarded and the thread exits at the next checkpoint.
    pub fn kill(&self) {
        self.kill.store(true, Ordering::Release);
    }

    /// Whether the kill switch has been thrown.
    pub fn is_killed(&self) -> bool {
        self.kill.load(Ordering::Acquire)
    }

    /// Joins the worker thread (after a `Stop` command or kill).
    pub fn join(&mut self) {
        if let Some(handle) = self.join.take() {
            let _ = handle.join();
        }
    }

    /// Detaches the thread (used on kill paths where the worker may be
    /// blocked inside a long task).
    pub fn detach(&mut self) {
        self.join.take();
    }
}

fn worker_loop(
    id: WorkerId,
    services: Arc<Services>,
    recon: Arc<ReconstructionManager>,
    sched_tx: Sender<LocalMsg>,
    cmd_rx: Receiver<WorkerCommand>,
    kill: Arc<AtomicBool>,
) {
    while let Ok(cmd) = cmd_rx.recv() {
        match cmd {
            WorkerCommand::Stop => break,
            WorkerCommand::Run(spec) => {
                if kill.load(Ordering::Acquire) {
                    break;
                }
                execute_task(id, &services, &recon, &spec, &kill);
                if kill.load(Ordering::Acquire) {
                    // Crashed mid-task: no completion report.
                    break;
                }
                let _ = sched_tx.send(LocalMsg::WorkerDone {
                    worker: id,
                    task: spec.task_id,
                });
            }
        }
    }
}

fn execute_task(
    id: WorkerId,
    services: &Arc<Services>,
    recon: &Arc<ReconstructionManager>,
    spec: &TaskSpec,
    kill: &AtomicBool,
) {
    let node = id.node;
    let task = spec.task_id;
    services.tasks.set_state(task, &TaskState::Running(id));
    services.events.append(
        node,
        Event::now(
            Component::Worker,
            EventKind::TaskStarted { task, worker: id },
        ),
    );
    let started = Instant::now();

    let outcome = resolve_args(services, recon, id, spec).and_then(|raw_args| {
        let func = services
            .registry
            .get(spec.function)
            .ok_or(Error::FunctionNotFound(spec.function))?;
        let ctx = TaskContext::new(services.clone(), recon.clone(), task, id);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| func(&ctx, &raw_args)));
        match result {
            Ok(r) => r,
            Err(panic) => Err(Error::TaskFailed {
                task,
                message: panic_message(&panic),
            }),
        }
    });

    if kill.load(Ordering::Acquire) || services.store(node).is_none() {
        // Simulated crash — or the node was detached under us while we
        // ran (kill_node racing a dispatched task). Either way: discard
        // all results and state updates. Publishing a Failed state here
        // would mask the node death as an application error and exempt
        // the task from the Lost-state repair that replays it.
        return;
    }

    let exec_micros = started.elapsed().as_micros() as u64;
    match outcome {
        Ok(results) if results.len() == spec.num_returns as usize => {
            for (i, raw) in results.into_iter().enumerate() {
                let object = task.return_object(i as u32);
                seal(services, node, object, Envelope::Value(raw).seal());
            }
            services.tasks.set_state(task, &TaskState::Finished);
            services.events.append(
                node,
                Event::now(
                    Component::Worker,
                    EventKind::TaskFinished {
                        task,
                        worker: id,
                        micros: exec_micros,
                    },
                ),
            );
        }
        Ok(results) => {
            let message = format!(
                "task {task} returned {} values, expected {}",
                results.len(),
                spec.num_returns
            );
            fail_task(services, node, spec, &message, id);
        }
        Err(err) => {
            let message = err.to_string();
            fail_task(services, node, spec, &message, id);
        }
    }
}

/// Seals error envelopes for every return of a failed task, so consumers
/// unblock with the propagated error, then records the failure.
fn fail_task(
    services: &Arc<Services>,
    node: rtml_common::ids::NodeId,
    spec: &TaskSpec,
    message: &str,
    worker: WorkerId,
) {
    // State first, then the seals: the seals are what unblock
    // consumers, so anything they (or tools) read afterwards must
    // already say Failed.
    services
        .tasks
        .set_state(spec.task_id, &TaskState::Failed(message.to_string()));
    let bytes = envelope::seal_error(message);
    for i in 0..spec.num_returns {
        let object = spec.task_id.return_object(i);
        seal(services, node, object, bytes.clone());
    }
    services.events.append(
        node,
        Event::now(
            Component::Worker,
            EventKind::TaskFailed {
                task: spec.task_id,
                message: message.to_string(),
            },
        ),
    );
    let _ = worker;
}

fn seal(
    services: &Arc<Services>,
    node: rtml_common::ids::NodeId,
    object: rtml_common::ids::ObjectId,
    bytes: Bytes,
) {
    let Some(store) = services.store(node) else {
        return;
    };
    let len = bytes.len() as u64;
    match store.put(object, bytes) {
        Ok(outcome) => {
            // Log the seal before publishing the location: the location
            // is what unblocks consumers' `get`s, so anything they read
            // from the event log afterwards (profiling) must already
            // contain this seal.
            services.events.append(
                node,
                Event::now(
                    Component::ObjectStore,
                    EventKind::ObjectSealed {
                        object,
                        node,
                        size: len,
                    },
                ),
            );
            services.objects.add_location(object, node, len);
            if !outcome.evicted.is_empty() {
                // The whole eviction sweep drops as one group commit.
                services
                    .objects
                    .remove_location_many(&outcome.evicted, node);
                let at_nanos = rtml_common::time::now_nanos();
                services.events.append_many(
                    node,
                    outcome
                        .evicted
                        .iter()
                        .map(|evicted| Event {
                            at_nanos,
                            component: Component::ObjectStore,
                            kind: EventKind::ObjectEvicted {
                                object: *evicted,
                                node,
                            },
                        })
                        .collect(),
                );
            }
        }
        Err(_) => {
            // Store full beyond eviction: the object stays unsealed;
            // consumers will reconstruct (and likely hit the same wall —
            // surfaced as timeouts, which is honest).
        }
    }
}

/// Resolves argument bytes, propagating upstream errors. All `ObjectRef`
/// arguments resolve through one batched [`fetch::ensure_local_many`]:
/// by dispatch time they are normally local (the scheduler gated on
/// arrival and prefetched), and any that slipped away (eviction race)
/// are re-fetched grouped by holder instead of one round trip each.
fn resolve_args(
    services: &Arc<Services>,
    recon: &Arc<ReconstructionManager>,
    id: WorkerId,
    spec: &TaskSpec,
) -> Result<Vec<Bytes>> {
    let deadline = Instant::now() + services.tuning.default_get_timeout;
    let refs: Vec<rtml_common::ids::ObjectId> = spec
        .args
        .iter()
        .filter_map(|arg| match arg {
            ArgSpec::ObjectRef(object) => Some(*object),
            ArgSpec::Value(_) => None,
        })
        .collect();
    let resolved = if refs.is_empty() {
        Vec::new()
    } else {
        fetch::ensure_local_many(services, recon, id.node, &refs, deadline).map_err(|e| {
            Error::TaskFailed {
                task: spec.task_id,
                message: format!("failed to resolve arguments: {e}"),
            }
        })?
    };
    let mut raw = Vec::with_capacity(spec.args.len());
    let mut next_ref = 0usize;
    for arg in &spec.args {
        match arg {
            ArgSpec::Value(bytes) => raw.push(bytes.clone()),
            ArgSpec::ObjectRef(object) => {
                let bytes = &resolved[next_ref];
                // Error attribution: the producer rides inside the ID.
                let producer = object
                    .producer_task()
                    .unwrap_or(rtml_common::ids::TaskId::NIL);
                next_ref += 1;
                let value = Envelope::open(bytes)?.into_value_bytes(producer)?;
                raw.push(value);
            }
        }
    }
    Ok(raw)
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("task panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("task panicked: {s}")
    } else {
        "task panicked".to_string()
    }
}
