//! Critical-path attribution over the event log: *where did the
//! makespan go?*
//!
//! The profiler's histograms say how long tasks waited on average; this
//! module answers the sharper question for one result — walk the sink
//! task's dependency chain backwards picking, at every step, the input
//! whose producer finished last (the binding constraint), then walk the
//! chain forwards attributing every nanosecond of the end-to-end span
//! to one of five buckets: **staging** (submission + staging-ring
//! residency), **placement** (global-scheduler spill decisions),
//! **queue** (runnable but waiting for a worker), **transfer** (waiting
//! on remote inputs), and **execution**.
//!
//! The walk is a single forward cursor over the chain's recorded
//! timestamps, so the buckets sum to the measured span *by
//! construction* — the self-check [`CriticalPath::attributed_nanos`]
//! `==` [`CriticalPath::makespan_nanos`] is an invariant, not a
//! tolerance. Timestamps lost to event-log retention simply contribute
//! no boundary: their time folds into the enclosing bucket instead of
//! unbalancing the sum.

use std::collections::{HashMap, HashSet};

use rtml_common::event::{Event, EventKind};
use rtml_common::ids::{NodeId, ObjectId, TaskId};
use rtml_common::metrics::fmt_nanos;

use crate::profiling::{ProfileReport, TaskProfile};

/// Attribution of one sink task's end-to-end span across the planes.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// The task whose result the path explains.
    pub sink: TaskId,
    /// The binding dependency chain, root first, sink last.
    pub chain: Vec<TaskId>,
    /// When the chain's first recorded timestamp is (nanos since
    /// epoch) — normally the root's submission.
    pub start_nanos: u64,
    /// When the sink's last recorded timestamp is — normally its
    /// finish.
    pub end_nanos: u64,
    /// Submission + staging-ring residency (accept→index) time.
    pub staging_nanos: u64,
    /// Global-scheduler placement time (spilled chain links only).
    pub placement_nanos: u64,
    /// Runnable-but-waiting-for-a-worker time.
    pub queue_nanos: u64,
    /// Waiting on remote inputs still in flight at queue time.
    pub transfer_nanos: u64,
    /// On-worker execution time.
    pub execution_nanos: u64,
}

impl CriticalPath {
    /// The measured end-to-end span.
    pub fn makespan_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }

    /// The sum of the five buckets. Equals
    /// [`CriticalPath::makespan_nanos`] by construction.
    pub fn attributed_nanos(&self) -> u64 {
        self.staging_nanos
            + self.placement_nanos
            + self.queue_nanos
            + self.transfer_nanos
            + self.execution_nanos
    }

    /// Human-readable one-result breakdown.
    pub fn summary(&self) -> String {
        let total = self.makespan_nanos().max(1) as f64;
        let pct = |n: u64| 100.0 * n as f64 / total;
        format!(
            "critical path to {}: {} tasks, makespan {}\n\
             staging   {:>10} ({:>5.1}%)\n\
             placement {:>10} ({:>5.1}%)\n\
             queue     {:>10} ({:>5.1}%)\n\
             transfer  {:>10} ({:>5.1}%)\n\
             execution {:>10} ({:>5.1}%)",
            self.sink,
            self.chain.len(),
            fmt_nanos(self.makespan_nanos()),
            fmt_nanos(self.staging_nanos),
            pct(self.staging_nanos),
            fmt_nanos(self.placement_nanos),
            pct(self.placement_nanos),
            fmt_nanos(self.queue_nanos),
            pct(self.queue_nanos),
            fmt_nanos(self.transfer_nanos),
            pct(self.transfer_nanos),
            fmt_nanos(self.execution_nanos),
            pct(self.execution_nanos),
        )
    }
}

/// Attributes the end-to-end span of `sink` over the event log.
///
/// `deps` supplies each task's dependency *objects* (the runtime wires
/// it to the task table's specs; see [`crate::Cluster::critical_path`]).
/// Producers are recovered from the object ids themselves
/// ([`ObjectId::producer_task`]), so the walk needs no extra lineage
/// table. Returns `None` when the log holds no timestamps for `sink` at
/// all.
pub fn critical_path(
    events: &[Event],
    deps: impl Fn(TaskId) -> Vec<ObjectId>,
    sink: TaskId,
) -> Option<CriticalPath> {
    let report = ProfileReport::from_events(events);
    let profiles: HashMap<TaskId, &TaskProfile> = report
        .tasks
        .iter()
        .filter_map(|t| t.task.map(|id| (id, t)))
        .collect();
    profiles.get(&sink)?;

    // Last completed transfer of each object onto each node — the
    // "input still in flight" boundary for the transfer bucket.
    let mut transfer_end: HashMap<(ObjectId, NodeId), u64> = HashMap::new();
    for event in events {
        if let EventKind::TransferFinished { object, to, .. } = &event.kind {
            let entry = transfer_end.entry((*object, *to)).or_insert(0);
            *entry = (*entry).max(event.at_nanos);
        }
    }

    // Backward: follow, at every task, the dependency whose producer
    // finished last. A cycle is impossible in a real DAG but a
    // corrupted log must not hang us.
    let mut chain = vec![sink];
    let mut visited: HashSet<TaskId> = HashSet::from([sink]);
    let mut current = sink;
    loop {
        let binding = deps(current)
            .into_iter()
            .filter_map(|object| object.producer_task())
            .filter(|producer| !visited.contains(producer))
            .filter_map(|producer| {
                let p = profiles.get(&producer)?;
                Some((p.finished.or(p.started)?, producer))
            })
            .max();
        let Some((_, producer)) = binding else { break };
        visited.insert(producer);
        chain.push(producer);
        current = producer;
    }
    chain.reverse();

    // Forward: one cursor, every boundary clamps forward, so the bucket
    // sum telescopes to end - start exactly.
    let first = profiles[&chain[0]];
    let start_nanos = [first.submitted, first.queued, first.started, first.finished]
        .into_iter()
        .flatten()
        .next()?;
    let mut cursor = start_nanos;
    let mut path = CriticalPath {
        sink,
        chain: chain.clone(),
        start_nanos,
        end_nanos: start_nanos,
        staging_nanos: 0,
        placement_nanos: 0,
        queue_nanos: 0,
        transfer_nanos: 0,
        execution_nanos: 0,
    };
    for task in &chain {
        let profile = profiles[task];
        let step = |to: Option<u64>, bucket: &mut u64, cursor: &mut u64| {
            if let Some(to) = to {
                if to > *cursor {
                    *bucket += to - *cursor;
                    *cursor = to;
                }
            }
        };
        // Pred-finish → submit is control-plane/submission time; it and
        // submit → queue (the staging-ring residency) share the
        // staging bucket. Spilled links split out the global
        // scheduler's share.
        step(profile.submitted, &mut path.staging_nanos, &mut cursor);
        step(profile.placed, &mut path.placement_nanos, &mut cursor);
        step(profile.queued, &mut path.staging_nanos, &mut cursor);
        // Queue → start, minus the tail of any dependency transfer
        // still landing on the executing node after queueing.
        let wait_node = profile.queued_node.or(profile.worker.map(|w| w.node));
        if let (Some(node), Some(started)) = (wait_node, profile.started) {
            let inbound = deps(*task)
                .into_iter()
                .filter_map(|object| transfer_end.get(&(object, node)).copied())
                .max()
                .map(|end| end.min(started));
            step(inbound, &mut path.transfer_nanos, &mut cursor);
        }
        step(profile.started, &mut path.queue_nanos, &mut cursor);
        step(profile.finished, &mut path.execution_nanos, &mut cursor);
    }
    path.end_nanos = cursor;
    debug_assert_eq!(path.attributed_nanos(), path.makespan_nanos());
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::event::Component;
    use rtml_common::ids::{DriverId, WorkerId};

    fn ev(at_nanos: u64, kind: EventKind) -> Event {
        Event {
            at_nanos,
            component: Component::Worker,
            kind,
        }
    }

    /// Two-task chain with a cross-node transfer in the middle: every
    /// bucket lands where it should and the sum telescopes.
    #[test]
    fn attribution_sums_to_makespan() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let a = root.child(0);
        let b = root.child(1);
        let a_out = a.return_object(0);
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let w0 = WorkerId::new(n0, 0);
        let w1 = WorkerId::new(n1, 0);
        let events = vec![
            ev(100, EventKind::TaskSubmitted { task: a }),
            ev(150, EventKind::TaskQueuedLocal { task: a, node: n0 }),
            ev(
                200,
                EventKind::TaskStarted {
                    task: a,
                    worker: w0,
                },
            ),
            ev(
                500,
                EventKind::TaskFinished {
                    task: a,
                    worker: w0,
                    micros: 0,
                },
            ),
            // b depends on a's output, runs on node 1, and waits for
            // the transfer to land there.
            ev(120, EventKind::TaskSubmitted { task: b }),
            ev(510, EventKind::TaskQueuedLocal { task: b, node: n1 }),
            ev(
                700,
                EventKind::TransferFinished {
                    object: a_out,
                    to: n1,
                    micros: 0,
                },
            ),
            ev(
                800,
                EventKind::TaskStarted {
                    task: b,
                    worker: w1,
                },
            ),
            ev(
                1000,
                EventKind::TaskFinished {
                    task: b,
                    worker: w1,
                    micros: 0,
                },
            ),
        ];
        let deps = |task: TaskId| if task == b { vec![a_out] } else { Vec::new() };
        let path = critical_path(&events, deps, b).expect("sink profiled");
        assert_eq!(path.chain, vec![a, b]);
        assert_eq!(path.start_nanos, 100);
        assert_eq!(path.end_nanos, 1000);
        assert_eq!(path.attributed_nanos(), path.makespan_nanos());
        // a: 100→150 staging, 150→200 queue, 200→500 exec.
        // b (submitted at 120, already past): 500→510 staging,
        // 510→700 transfer, 700→800 queue, 800→1000 exec.
        assert_eq!(path.staging_nanos, 50 + 10);
        assert_eq!(path.queue_nanos, 50 + 100);
        assert_eq!(path.transfer_nanos, 190);
        assert_eq!(path.execution_nanos, 300 + 200);
        assert_eq!(path.placement_nanos, 0);
        assert!(path.summary().contains("critical path"));
    }

    /// A dropped boundary (b's queue record lost to retention) folds
    /// its window into the neighboring bucket without unbalancing the
    /// sum.
    #[test]
    fn missing_timestamps_keep_the_sum_balanced() {
        let root = TaskId::driver_root(DriverId::from_index(1));
        let a = root.child(0);
        let n0 = NodeId(0);
        let w0 = WorkerId::new(n0, 0);
        let events = vec![
            ev(100, EventKind::TaskSubmitted { task: a }),
            ev(
                400,
                EventKind::TaskStarted {
                    task: a,
                    worker: w0,
                },
            ),
            ev(
                900,
                EventKind::TaskFinished {
                    task: a,
                    worker: w0,
                    micros: 0,
                },
            ),
        ];
        let path = critical_path(&events, |_| Vec::new(), a).expect("sink profiled");
        assert_eq!(path.attributed_nanos(), path.makespan_nanos());
        assert_eq!(path.makespan_nanos(), 800);
        assert_eq!(path.queue_nanos, 300);
        assert_eq!(path.execution_nanos, 500);
    }

    #[test]
    fn unknown_sink_is_none() {
        let root = TaskId::driver_root(DriverId::from_index(2));
        assert!(critical_path(&[], |_| Vec::new(), root.child(0)).is_none());
    }
}
