//! The rtml execution framework: the paper's programming model (§3.1) on
//! top of the paper's architecture (§3.2).
//!
//! # Programming model (paper §3.1, items 1–5)
//!
//! 1. **Task creation is non-blocking** — [`Caller::submit1`] (on
//!    [`Driver`] via deref) and friends
//!    return an [`ObjectRef`] future immediately.
//! 2. **Arbitrary functions are remote tasks** — any function registered
//!    with the cluster can be submitted with values *or futures* as
//!    arguments; futures introduce dataflow edges (R5).
//! 3. **Tasks create tasks** — the [`TaskContext`] handed to running
//!    functions exposes the same API, so the task graph grows dynamically
//!    during execution (R3) without blocking on children.
//! 4. **`get`** blocks until a future's value is available, transparently
//!    fetching it across nodes and reconstructing it from lineage if the
//!    holding node died (R6).
//! 5. **`wait`** returns the subset of futures that completed within a
//!    timeout / count bound, enabling straggler-tolerant, latency-aware
//!    code (R1).
//!
//! # Architecture
//!
//! A [`Cluster`] wires together, per node: an object store, a transfer
//! service, a local scheduler, and a pool of worker threads — plus one
//! global scheduler and the sharded control plane shared by all nodes.
//! Failure injection ([`Cluster::kill_worker`], [`Cluster::kill_node`])
//! exercises the fault-tolerance story end to end: lost objects are
//! rebuilt by replaying their producing tasks from the durable task table
//! ([`lineage::ReconstructionManager`]).
//!
//! # Examples
//!
//! ```
//! use rtml_runtime::{Cluster, ClusterConfig};
//!
//! let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
//! let square = cluster.register_fn1("square", |x: i64| Ok(x * x));
//! let driver = cluster.driver();
//! let fut = driver.submit1(&square, 21).unwrap();
//! assert_eq!(driver.get(&fut).unwrap(), 441);
//! cluster.shutdown();
//! ```

pub mod actors;
pub mod caller;
pub mod cluster;
pub mod critical_path;
pub mod envelope;
pub mod fetch;
pub mod health;
pub mod lineage;
pub mod node;
pub mod object_ref;
pub mod profiling;
pub mod registry;
pub mod services;
pub mod telemetry;
pub mod tools;
pub mod worker;

pub use actors::ActorHandle;
pub use caller::{Caller, Driver, TaskContext, TaskOptions, TaskRequest};
pub use cluster::{Cluster, ClusterConfig};
pub use critical_path::{critical_path, CriticalPath};
pub use envelope::Envelope;
pub use health::HealthTracker;
pub use lineage::ReconstructionManager;
pub use node::NodeConfig;
pub use object_ref::{IntoArg, ObjectRef};
pub use profiling::{
    FaultPlaneStats, Incident, PlaneSpan, ProfileReport, TaskProfile, TransferPlaneStats,
};
pub use registry::{Func0, Func1, Func2, Func3, Func4, FunctionRegistry};
pub use services::Services;
pub use telemetry::{TelemetryConfig, TelemetrySampler};
