//! Cluster-state inspection: the textual equivalent of the paper's
//! "Web UI / Debugging Tools / Error Diagnosis" box (Figure 3, R7).
//!
//! Everything here reads only the centralized control plane — which is
//! the paper's point: because all system state lives in one
//! (logically-centralized) place, tooling needs no cooperation from the
//! data-path components.

use std::fmt::Write as _;

use rtml_common::codec::decode_from_slice;
use rtml_common::task::TaskState;
use rtml_sched::msg::load_key;
use rtml_sched::LoadReport;

use crate::services::Services;

/// A point-in-time textual dump of cluster state, assembled purely from
/// control-plane reads.
pub fn cluster_state(services: &Services) -> String {
    let mut out = String::new();

    // --- nodes and load ------------------------------------------------
    let _ = writeln!(out, "=== nodes ===");
    let nodes = services.alive_nodes();
    if nodes.is_empty() {
        let _ = writeln!(out, "(no nodes alive)");
    }
    for node in &nodes {
        match services
            .kv
            .get(&load_key(*node))
            .and_then(|b| decode_from_slice::<LoadReport>(&b).ok())
        {
            Some(load) => {
                let _ = writeln!(
                    out,
                    "{node}: ready {} | waiting {} | running {} | idle workers {} | avail {} / {}",
                    load.ready,
                    load.waiting,
                    load.running,
                    load.idle_workers,
                    load.available,
                    load.total,
                );
            }
            None => {
                let _ = writeln!(out, "{node}: (no load report yet)");
            }
        }
    }

    // --- tasks ----------------------------------------------------------
    let census = services.tasks.state_census();
    let _ = writeln!(out, "\n=== tasks ===");
    let _ = writeln!(
        out,
        "submitted {} | queued {} | spilled {} | running {} | finished {} | failed {} | lost {}",
        census.submitted,
        census.queued,
        census.spilled,
        census.running,
        census.finished,
        census.failed,
        census.lost,
    );

    // --- stuck / failed detail (error diagnosis) ------------------------
    let mut problems: Vec<String> = Vec::new();
    for (task, state) in services.tasks.scan_states() {
        match state {
            TaskState::Failed(message) => {
                let name = services
                    .tasks
                    .get_spec(task)
                    .and_then(|s| services.registry.name_of(s.function))
                    .unwrap_or_else(|| "?".into());
                problems.push(format!("{task} [{name}] FAILED: {message}"));
            }
            TaskState::Lost => problems.push(format!("{task} LOST (reconstructible)")),
            _ => {}
        }
    }
    if !problems.is_empty() {
        let _ = writeln!(out, "\n=== diagnosis ===");
        problems.sort();
        for p in problems.iter().take(20) {
            let _ = writeln!(out, "{p}");
        }
        if problems.len() > 20 {
            let _ = writeln!(out, "... and {} more", problems.len() - 20);
        }
    }

    // --- functions --------------------------------------------------------
    let mut functions = services.functions.list();
    functions.sort_by(|a, b| a.name.cmp(&b.name));
    let _ = writeln!(out, "\n=== functions ===");
    for f in functions {
        let _ = writeln!(out, "{} (arity {}) -> {}", f.name, f.arity, f.id);
    }

    // --- control plane ----------------------------------------------------
    let stats = services.kv.stats();
    let _ = writeln!(out, "\n=== control plane ===");
    let _ = writeln!(
        out,
        "{} shards | {} keys | {} ops | imbalance {:.2}",
        stats.ops_per_shard.len(),
        services.kv.len(),
        stats.total_ops(),
        stats.imbalance(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};

    #[test]
    fn dump_covers_sections() {
        let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
        let f = cluster.register_fn1("tool_echo", |x: i64| Ok(x));
        let boom = cluster.register_fn0("tool_boom", || -> rtml_common::error::Result<i64> {
            Err(rtml_common::error::Error::InvalidArgument("nope".into()))
        });
        let driver = cluster.driver();
        let ok = driver.submit1(&f, 1).unwrap();
        let bad = driver.submit0(&boom).unwrap();
        let _ = driver.get(&ok);
        let _ = driver.get(&bad);

        let dump = cluster_state(driver.services());
        assert!(dump.contains("=== nodes ==="), "{dump}");
        assert!(dump.contains("=== tasks ==="), "{dump}");
        assert!(dump.contains("finished"), "{dump}");
        assert!(dump.contains("=== diagnosis ==="), "{dump}");
        assert!(dump.contains("FAILED"), "{dump}");
        assert!(dump.contains("tool_echo"), "{dump}");
        assert!(dump.contains("=== control plane ==="), "{dump}");
        cluster.shutdown();
    }

    #[test]
    fn dump_on_empty_cluster_is_sane() {
        let cluster = Cluster::start(ClusterConfig::local(1, 1)).unwrap();
        let driver = cluster.driver();
        let dump = cluster_state(driver.services());
        assert!(dump.contains("N0"), "{dump}");
        cluster.shutdown();
    }
}
