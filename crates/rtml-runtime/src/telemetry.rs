//! The per-node telemetry sampler: the sensing half of the
//! observability plane.
//!
//! Every node carries a [`MetricsRegistry`] into which its plane
//! components (transfer, fetch, replication, scheduler/steal, fabric,
//! kv) register their live counters at build time. The sampler thread
//! reads the whole registry on a period and group-commits the snapshot
//! to the kv-backed [`TelemetryTable`] as **one record on one key** —
//! one control-plane lock per node per interval, independent of how
//! many metrics are registered. The per-node rings are bounded, so a
//! long-running cluster holds a sliding window of recent samples.
//!
//! This is the substrate ROADMAP item 4's adaptive controller will
//! close loops over: a column-aligned time-series per node, not just
//! end-of-run totals.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};

use rtml_common::ids::NodeId;
use rtml_common::metrics::MetricsRegistry;
use rtml_common::time::now_nanos;
use rtml_kv::{TelemetryRecord, TelemetryTable};

/// The `ClusterConfig::telemetry` knob: whether per-node samplers run,
/// how often they snapshot, and how much history each node's ring
/// keeps.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Whether per-node samplers run at all. On by default — the cost
    /// is one kv append per node per interval, which is noise against
    /// the submission hot path's budget (see ARCHITECTURE.md).
    pub enabled: bool,
    /// Sampling period.
    pub interval: Duration,
    /// Per-node ring capacity (records). At the default interval this
    /// holds the trailing ~10 seconds.
    pub retention: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            interval: Duration::from_millis(10),
            retention: TelemetryTable::DEFAULT_RETENTION,
        }
    }
}

/// Handle for one node's sampler thread; dropping (or
/// [`TelemetrySampler::shutdown`]) stops it.
pub struct TelemetrySampler {
    stop: Sender<()>,
    stopping: Arc<AtomicBool>,
    handle: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TelemetrySampler {
    /// Spawns the sampler for `node`. Takes one snapshot immediately
    /// (so even short-lived clusters have a non-empty series), then one
    /// per `interval`, then a final one on shutdown.
    pub fn spawn(
        node: NodeId,
        registry: Arc<MetricsRegistry>,
        table: TelemetryTable,
        interval: Duration,
    ) -> TelemetrySampler {
        let (stop, stop_rx) = unbounded::<()>();
        let stopping = Arc::new(AtomicBool::new(false));
        let thread_stopping = stopping.clone();
        let handle = std::thread::Builder::new()
            .name(format!("rtml-telemetry-{node}"))
            .spawn(move || {
                let sample = |registry: &MetricsRegistry, table: &TelemetryTable| {
                    table.append(
                        node,
                        &TelemetryRecord {
                            at_nanos: now_nanos(),
                            samples: registry.sample(),
                        },
                    );
                };
                sample(&registry, &table);
                loop {
                    match stop_rx.recv_timeout(interval) {
                        Err(RecvTimeoutError::Timeout) => {
                            if thread_stopping.load(Ordering::Acquire) {
                                break;
                            }
                            sample(&registry, &table);
                        }
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                // Final snapshot: the series always reflects end state.
                sample(&registry, &table);
            })
            .expect("spawn telemetry sampler");
        TelemetrySampler {
            stop,
            stopping,
            handle: parking_lot::Mutex::new(Some(handle)),
        }
    }

    /// Stops the sampler and joins its thread (idempotent).
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::Release);
        let _ = self.stop.send(());
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetrySampler {
    fn drop(&mut self) {
        self.stopping.store(true, Ordering::Release);
        let _ = self.stop.send(());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::metrics::Counter;
    use rtml_kv::KvStore;

    #[test]
    fn sampler_commits_bounded_series() {
        let kv = KvStore::new(2);
        let registry = Arc::new(MetricsRegistry::new());
        let c = Arc::new(Counter::new());
        c.add(3);
        registry.register_counter("x", c.clone());
        let table = TelemetryTable::with_retention(kv.clone(), 8);
        let sampler =
            TelemetrySampler::spawn(NodeId(5), registry, table.clone(), Duration::from_millis(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while table.read(NodeId(5)).len() < 3 {
            assert!(std::time::Instant::now() < deadline, "sampler stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        c.add(1);
        sampler.shutdown();
        let series = table.read(NodeId(5));
        assert!(series.len() >= 3 && series.len() <= 8, "{}", series.len());
        // Timestamps rise; the shape is stable; the final snapshot saw
        // the last increment.
        for pair in series.windows(2) {
            assert!(pair[0].at_nanos <= pair[1].at_nanos);
            assert_eq!(pair[0].samples.len(), pair[1].samples.len());
        }
        assert_eq!(series[0].samples[0].0, "x");
        assert_eq!(series.last().unwrap().samples[0].1, 4);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let kv = KvStore::new(2);
        let sampler = TelemetrySampler::spawn(
            NodeId(0),
            Arc::new(MetricsRegistry::new()),
            TelemetryTable::new(kv),
            Duration::from_millis(50),
        );
        sampler.shutdown();
        sampler.shutdown();
    }
}
