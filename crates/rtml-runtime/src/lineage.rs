//! Lineage-based fault tolerance (paper §3.2.1 / R6).
//!
//! "The database stores the computation lineage, which allows us to
//! reconstruct lost data by replaying the computation." The lineage *is*
//! the task table: every task spec is durable at submission time, task
//! IDs are deterministic functions of the submission structure, and
//! object IDs are deterministic functions of task IDs. So reconstruction
//! is: find the producer of the missing object, re-submit its spec, and
//! let the ordinary scheduling/dependency machinery do the rest —
//! including recursively reconstructing the producer's own missing
//! inputs.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use rtml_common::event::{Component, Event, EventKind};
use rtml_common::ids::{ObjectId, TaskId};
use rtml_common::metrics::Counter;
use rtml_common::task::{TaskSpec, TaskState};

use crate::envelope;
use crate::services::Services;

/// Deduplicating lineage-replay coordinator. One per cluster.
pub struct ReconstructionManager {
    services: Arc<Services>,
    /// Tasks between the resubmission decision and the Submitted state
    /// write (a very small window, but enough for duplicate triggers).
    inflight: Mutex<HashSet<TaskId>>,
    /// Total reconstructions performed (for experiments).
    pub reconstructions: Counter,
}

impl ReconstructionManager {
    /// Creates a manager over `services`.
    pub fn new(services: Arc<Services>) -> Arc<Self> {
        Arc::new(ReconstructionManager {
            services,
            inflight: Mutex::new(HashSet::new()),
            reconstructions: Counter::new(),
        })
    }

    /// Called when someone needs `object` but no live copy exists.
    ///
    /// Idempotent and cheap when the producer is already in flight;
    /// resubmits the producer when it terminated without leaving a copy
    /// (node failure, eviction); seals error envelopes when the object
    /// can never be produced (failed producer, broken lineage).
    pub fn handle_missing(&self, object: ObjectId) {
        let info = self.services.objects.get(object);
        if info.as_ref().is_some_and(|i| i.is_available()) {
            return;
        }
        // The producer normally rides inside the ID itself
        // ([`ObjectId::producer_task`]); an explicit table record (which
        // the table synthesizes from the ID anyway) covers IDs that lost
        // their provenance in transit. Note there may be *no* record at
        // all: the submission path writes none, so a never-sealed return
        // object is just an ID plus a durable task spec.
        let producer = object
            .producer_task()
            .or_else(|| info.as_ref().and_then(|i| i.producer));
        let Some(producer) = producer else {
            // No producing task (a `put` or an actor result). If it has
            // never been sealed it is simply not produced yet — keep
            // waiting. If it *was* sealed and now has no copies, the
            // value is gone for good: no lineage to replay.
            if info.is_some_and(|i| i.sealed) {
                self.seal_missing_as_error(
                    &[object],
                    "lineage broken: object has no producing task and its last copy was lost",
                );
            }
            return;
        };
        match self.services.tasks.get_state(producer) {
            None
            | Some(TaskState::Submitted)
            | Some(TaskState::Queued(_))
            | Some(TaskState::Spilled)
            | Some(TaskState::Running(_)) => {
                // In flight (or about to be): the seal will come.
            }
            Some(TaskState::Failed(message)) => {
                // The producer ran and failed; its error envelopes should
                // exist, but a node death may have taken them. Re-seal.
                let returns: Vec<ObjectId> = self
                    .services
                    .tasks
                    .get_spec(producer)
                    .map(|s| s.return_ids())
                    .unwrap_or_else(|| vec![object]);
                self.seal_missing_as_error(&returns, &message);
            }
            Some(TaskState::Finished) | Some(TaskState::Lost) => {
                self.resubmit(producer);
            }
        }
    }

    /// Forces a replay of `object`'s producer even though copies appear
    /// to exist — called after fetches to every listed holder failed
    /// (network partition, silently dead node). The evidence bar is
    /// high (a full fetch timeout elapsed), so the occasional redundant
    /// replay is an acceptable price for liveness.
    pub fn force_replay(&self, object: ObjectId) {
        let producer = object
            .producer_task()
            .or_else(|| self.services.objects.get(object).and_then(|i| i.producer));
        let Some(producer) = producer else {
            return; // A put or actor result: nothing to replay.
        };
        match self.services.tasks.get_state(producer) {
            Some(TaskState::Finished) | Some(TaskState::Lost) => self.resubmit(producer),
            _ => {}
        }
    }

    /// Resubmits `task` from its durable spec, bumping the attempt
    /// counter. No-op if another trigger beat us to it.
    pub fn resubmit(&self, task: TaskId) {
        {
            let mut inflight = self.inflight.lock();
            if !inflight.insert(task) {
                return;
            }
        }
        let result = self.resubmit_inner(task);
        self.inflight.lock().remove(&task);
        if let Some(spec) = result {
            // Routing failed entirely (cluster shutting down): nothing
            // more to do; callers will time out.
            drop(spec);
        }
    }

    fn resubmit_inner(&self, task: TaskId) -> Option<TaskSpec> {
        let Some(mut spec) = self.services.tasks.get_spec(task) else {
            return None;
        };
        // Re-check state under the inflight guard: another thread may
        // have already resubmitted.
        match self.services.tasks.get_state(task) {
            Some(TaskState::Finished) | Some(TaskState::Lost) | None => {}
            _ => return None,
        }
        spec.attempt += 1;
        self.services.tasks.put_spec(&spec);
        self.services.tasks.set_state(task, &TaskState::Submitted);
        self.reconstructions.inc();
        let home = self.services.any_alive().unwrap_or(spec.submitter_node);
        self.services.events.append(
            home,
            Event::now(
                Component::Supervisor,
                EventKind::TaskReconstructed {
                    task,
                    attempt: spec.attempt,
                },
            ),
        );
        if self
            .services
            .submit_to(spec.submitter_node, spec.clone())
            .is_err()
        {
            return Some(spec);
        }
        None
    }

    /// Seals error envelopes for objects that can never be produced, so
    /// consumers fail fast instead of hanging.
    fn seal_missing_as_error(&self, objects: &[ObjectId], message: &str) {
        let Some(node) = self.services.any_alive() else {
            return;
        };
        let Some(store) = self.services.store(node) else {
            return;
        };
        let bytes = envelope::seal_error(message);
        for object in objects {
            if self.services.objects.is_available(*object) {
                continue;
            }
            if store.put(*object, bytes.clone()).is_ok() {
                self.services
                    .objects
                    .add_location(*object, node, bytes.len() as u64);
            }
        }
    }
}
