//! Lineage-based fault tolerance (paper §3.2.1 / R6).
//!
//! "The database stores the computation lineage, which allows us to
//! reconstruct lost data by replaying the computation." The lineage *is*
//! the task table: every task spec is durable at submission time, task
//! IDs are deterministic functions of the submission structure, and
//! object IDs are deterministic functions of task IDs. So reconstruction
//! is: find the producer of the missing object, re-submit its spec, and
//! let the ordinary scheduling/dependency machinery do the rest —
//! including recursively reconstructing the producer's own missing
//! inputs.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use rtml_common::event::{Component, Event, EventKind};
use rtml_common::ids::{ObjectId, TaskId};
use rtml_common::metrics::Counter;
use rtml_common::task::TaskState;

use crate::envelope;
use crate::services::Services;

/// Deduplicating lineage-replay coordinator. One per cluster.
pub struct ReconstructionManager {
    services: Arc<Services>,
    /// Tasks between the resubmission decision and the Submitted state
    /// write (a very small window, but enough for duplicate triggers).
    inflight: Mutex<HashSet<TaskId>>,
    /// Replays resubmitted and not yet observed back in a terminal
    /// state — the window the reconstruction cap counts, so a churn
    /// burst cannot trigger a reconstruction storm.
    active: Mutex<HashSet<TaskId>>,
    /// Cap on concurrently active replays
    /// ([`crate::services::RuntimeTuning::reconstruction_cap`]).
    cap: usize,
    /// Producers observed blocking a consumer, for the stuck-task
    /// backstop: task -> (state when first seen, when first seen).
    watch: Mutex<HashMap<TaskId, (TaskState, Instant)>>,
    /// A watched producer wedged in the *same* pre-running state this
    /// long (its queue message swallowed by a partition, its spill
    /// placement dropped on the wire) is declared lost and replayed.
    stuck_after: Duration,
    /// Total reconstructions performed (for experiments).
    pub reconstructions: Counter,
    /// Replays deferred by the cap; the callers' poll loops re-trigger
    /// them once active replays drain.
    pub deferred: Counter,
}

impl ReconstructionManager {
    /// Creates a manager over `services`.
    pub fn new(services: Arc<Services>) -> Arc<Self> {
        let cap = services.tuning.reconstruction_cap.max(1);
        let stuck_after = services.tuning.fetch_timeout.saturating_mul(4);
        Arc::new(ReconstructionManager {
            services,
            inflight: Mutex::new(HashSet::new()),
            active: Mutex::new(HashSet::new()),
            cap,
            watch: Mutex::new(HashMap::new()),
            stuck_after,
            reconstructions: Counter::new(),
            deferred: Counter::new(),
        })
    }

    /// Called when someone needs `object` but no live copy exists.
    ///
    /// Idempotent and cheap when the producer is already in flight;
    /// resubmits the producer when it terminated without leaving a copy
    /// (node failure, eviction); seals error envelopes when the object
    /// can never be produced (failed producer, broken lineage).
    pub fn handle_missing(&self, object: ObjectId) {
        let info = self.services.objects.get(object);
        if info.as_ref().is_some_and(|i| i.is_available()) {
            return;
        }
        // The producer normally rides inside the ID itself
        // ([`ObjectId::producer_task`]); an explicit table record (which
        // the table synthesizes from the ID anyway) covers IDs that lost
        // their provenance in transit. Note there may be *no* record at
        // all: the submission path writes none, so a never-sealed return
        // object is just an ID plus a durable task spec.
        let producer = object
            .producer_task()
            .or_else(|| info.as_ref().and_then(|i| i.producer));
        let Some(producer) = producer else {
            // No producing task (a `put` or an actor result). If it has
            // never been sealed it is simply not produced yet — keep
            // waiting. If it *was* sealed and now has no copies, the
            // value is gone for good: no lineage to replay.
            if info.is_some_and(|i| i.sealed) {
                self.seal_missing_as_error(
                    &[object],
                    "lineage broken: object has no producing task and its last copy was lost",
                );
            }
            return;
        };
        match self.services.tasks.get_state(producer) {
            Some(state @ (TaskState::Submitted | TaskState::Queued(_) | TaskState::Spilled)) => {
                // In flight (or about to be): the seal will come —
                // unless the message moving it forward was swallowed by
                // a partition or an injected drop, which is what the
                // stuck-task backstop below watches for.
                self.note_inflight(producer, state);
            }
            None | Some(TaskState::Running(_)) => {
                // About to be submitted, or actually executing: the
                // seal will come. Running tasks are not backstopped —
                // dispatch is node-local (no wire to drop it on) and a
                // node death repairs their state explicitly.
            }
            Some(TaskState::Failed(message)) => {
                // The producer ran and failed; its error envelopes should
                // exist, but a node death may have taken them. Re-seal.
                let returns: Vec<ObjectId> = self
                    .services
                    .tasks
                    .get_spec(producer)
                    .map(|s| s.return_ids())
                    .unwrap_or_else(|| vec![object]);
                self.seal_missing_as_error(&returns, &message);
            }
            Some(TaskState::Finished) | Some(TaskState::Lost) => {
                self.resubmit(producer);
            }
        }
    }

    /// Forces a replay of `object`'s producer even though copies appear
    /// to exist — called after fetches to every listed holder failed
    /// (network partition, silently dead node). The evidence bar is
    /// high (a full fetch timeout elapsed), so the occasional redundant
    /// replay is an acceptable price for liveness.
    pub fn force_replay(&self, object: ObjectId) {
        let producer = object
            .producer_task()
            .or_else(|| self.services.objects.get(object).and_then(|i| i.producer));
        let Some(producer) = producer else {
            return; // A put or actor result: nothing to replay.
        };
        match self.services.tasks.get_state(producer) {
            Some(TaskState::Finished) | Some(TaskState::Lost) => self.resubmit(producer),
            _ => {}
        }
    }

    /// A producer observed in the same pre-running state for longer
    /// than `stuck_after` had its forward-progress message lost (a
    /// steal grant swallowed by a partition, a spill placement dropped
    /// by the fault plan). Declare it lost and replay; a redundant
    /// replay racing the original is safe — task and object IDs are
    /// deterministic, so both executions seal identical values.
    fn note_inflight(&self, task: TaskId, state: TaskState) {
        let wedged = {
            let mut watch = self.watch.lock();
            if watch.len() > 256 {
                let services = &self.services;
                watch.retain(|t, _| {
                    matches!(
                        services.tasks.get_state(*t),
                        Some(TaskState::Submitted | TaskState::Queued(_) | TaskState::Spilled)
                    )
                });
            }
            match watch.get_mut(&task) {
                Some((seen, since)) if *seen == state => since.elapsed() >= self.stuck_after,
                _ => {
                    watch.insert(task, (state.clone(), Instant::now()));
                    false
                }
            }
        };
        if !wedged {
            return;
        }
        self.watch.lock().remove(&task);
        // Narrow the race: only declare Lost if the state is still the
        // one we watched wedge.
        if self.services.tasks.get_state(task) == Some(state) {
            self.services.tasks.set_state(task, &TaskState::Lost);
            self.resubmit(task);
        }
    }

    /// Resubmits `task` from its durable spec, bumping the attempt
    /// counter. No-op if another trigger beat us to it, deferred if the
    /// reconstruction cap is reached (callers' poll loops re-trigger).
    pub fn resubmit(&self, task: TaskId) {
        {
            let mut active = self.active.lock();
            if active.len() >= self.cap {
                // Prune replays that have since reached a terminal
                // state before declaring the cap hit.
                let services = &self.services;
                active.retain(|t| {
                    matches!(
                        services.tasks.get_state(*t),
                        Some(
                            TaskState::Submitted
                                | TaskState::Queued(_)
                                | TaskState::Spilled
                                | TaskState::Running(_)
                        )
                    )
                });
                if active.len() >= self.cap {
                    self.deferred.inc();
                    return;
                }
            }
        }
        {
            let mut inflight = self.inflight.lock();
            if !inflight.insert(task) {
                return;
            }
        }
        if self.resubmit_inner(task) {
            self.active.lock().insert(task);
        }
        self.inflight.lock().remove(&task);
    }

    /// Number of replays currently counted against the cap (without
    /// pruning; exact enough for tests and reporting).
    pub fn active_replays(&self) -> usize {
        self.active.lock().len()
    }

    fn resubmit_inner(&self, task: TaskId) -> bool {
        let Some(mut spec) = self.services.tasks.get_spec(task) else {
            return false;
        };
        // Re-check state under the inflight guard: another thread may
        // have already resubmitted.
        match self.services.tasks.get_state(task) {
            Some(TaskState::Finished) | Some(TaskState::Lost) | None => {}
            _ => return false,
        }
        spec.attempt += 1;
        self.services.tasks.put_spec(&spec);
        self.services.tasks.set_state(task, &TaskState::Submitted);
        self.reconstructions.inc();
        let home = self.services.any_alive().unwrap_or(spec.submitter_node);
        self.services.events.append(
            home,
            Event::now(
                Component::Supervisor,
                EventKind::TaskReconstructed {
                    task,
                    attempt: spec.attempt,
                },
            ),
        );
        // Routing failure (cluster shutting down) leaves callers to
        // time out; the resubmission itself still happened.
        let _ = self.services.submit_to(spec.submitter_node, spec);
        true
    }

    /// Seals error envelopes for objects that can never be produced, so
    /// consumers fail fast instead of hanging.
    fn seal_missing_as_error(&self, objects: &[ObjectId], message: &str) {
        let Some(node) = self.services.any_alive() else {
            return;
        };
        let Some(store) = self.services.store(node) else {
            return;
        };
        let bytes = envelope::seal_error(message);
        for object in objects {
            if self.services.objects.is_available(*object) {
                continue;
            }
            if store.put(*object, bytes.clone()).is_ok() {
                self.services
                    .objects
                    .add_location(*object, node, bytes.len() as u64);
            }
        }
    }
}
