//! Per-node assembly: object store + transfer service + local scheduler +
//! worker pool (one column of the paper's Figure 3).

use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};

use rtml_common::event::{Component, Event, EventKind};
use rtml_common::ids::ObjectId;
use rtml_common::ids::{NodeId, WorkerId};
use rtml_common::resources::Resources;
use rtml_sched::{
    GlobalRoutes, LocalMsg, LocalScheduler, LocalSchedulerConfig, LocalSchedulerHandle,
    SchedServices, SpillMode, WorkerCommand, WorkerHandle,
};
use rtml_store::{
    FetchAgent, ObjectStore, ReplicaView, ReplicationAgent, ReplicationHooks, ReplicationPolicy,
    StoreConfig, TransferService,
};

use crate::lineage::ReconstructionManager;
use crate::services::Services;
use crate::worker::WorkerRuntime;

/// Static description of one node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Number of worker threads.
    pub workers: u32,
    /// CPU capacity advertised to the scheduler (defaults to `workers`).
    pub cpus: f64,
    /// GPU capacity.
    pub gpus: f64,
    /// Named custom resources.
    pub custom: Vec<(String, f64)>,
    /// Object store capacity in bytes.
    pub store_capacity: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            workers: 4,
            cpus: 4.0,
            gpus: 0.0,
            custom: Vec::new(),
            store_capacity: 256 * 1024 * 1024,
        }
    }
}

impl NodeConfig {
    /// A CPU-only node with `workers` workers (capacity = worker count).
    pub fn cpu_only(workers: u32) -> Self {
        NodeConfig {
            workers,
            cpus: workers as f64,
            ..NodeConfig::default()
        }
    }

    /// Adds GPUs builder-style.
    pub fn with_gpus(mut self, gpus: f64) -> Self {
        self.gpus = gpus;
        self
    }

    /// Adds a custom resource builder-style.
    pub fn with_custom(mut self, name: &str, amount: f64) -> Self {
        self.custom.push((name.to_string(), amount));
        self
    }

    /// Sets store capacity builder-style.
    pub fn with_store_capacity(mut self, bytes: u64) -> Self {
        self.store_capacity = bytes;
        self
    }

    /// The node's resource vector.
    pub fn total_resources(&self) -> Resources {
        let mut r = Resources::new(self.cpus, self.gpus);
        for (name, amount) in &self.custom {
            r = r.with_custom(name, *amount);
        }
        r
    }
}

/// Scheduler tuning shared by all nodes (subset of cluster config).
#[derive(Clone, Debug)]
pub struct NodeTuning {
    /// Spill rule for local schedulers.
    pub spill: SpillMode,
    /// Fetch timeout for dependency resolution.
    pub fetch_timeout: std::time::Duration,
    /// Load-report publication interval.
    pub load_interval: std::time::Duration,
    /// Maximum payload bytes per transfer frame (object chunking).
    pub transfer_chunk_bytes: u64,
    /// Dispatch-time prefetch of queued tasks' missing dependencies.
    pub prefetch: bool,
    /// Hot-object replication plane policy (see
    /// [`rtml_store::replicate`]).
    pub replication: ReplicationPolicy,
    /// Pull-based work-stealing policy (see [`rtml_sched::steal`]).
    pub stealing: rtml_sched::StealConfig,
    /// Shared retry discipline for replication pulls (see
    /// [`rtml_common::retry`]).
    pub retry: rtml_common::retry::RetryPolicy,
    /// Pipelined batch ingest in local schedulers: accept batches
    /// synchronously, index them while the submitter marshals its next
    /// batch (see [`rtml_sched::LocalSchedulerConfig`]).
    pub pipelined_ingest: bool,
    /// Staging-ring depth for pipelined ingest (accepted-but-unindexed
    /// batches before an accept forces a flush).
    pub staging_depth: usize,
    /// Per-node telemetry sampling (see [`crate::telemetry`]).
    pub telemetry: crate::telemetry::TelemetryConfig,
}

/// A live node: all per-node components plus their control handles.
pub struct NodeRuntime {
    /// Node identity.
    pub node: NodeId,
    /// The node's object store.
    pub store: Arc<ObjectStore>,
    config: NodeConfig,
    transfer: TransferService,
    agent: Arc<FetchAgent>,
    replication: Option<ReplicationAgent>,
    sched: LocalSchedulerHandle,
    /// Shared with the pool-manager thread, which appends on-demand
    /// workers (nested-task deadlock avoidance).
    workers: Arc<parking_lot::Mutex<Vec<(WorkerRuntime, Sender<WorkerCommand>)>>>,
    /// Every plane's live counters, registered once at build time.
    registry: Arc<rtml_common::metrics::MetricsRegistry>,
    /// The telemetry sampler, when the plane is on.
    sampler: Option<crate::telemetry::TelemetrySampler>,
}

impl NodeRuntime {
    /// Builds and starts all components for `node`, registering it with
    /// the shared services.
    pub fn build(
        node: NodeId,
        config: NodeConfig,
        services: &Arc<Services>,
        recon: &Arc<ReconstructionManager>,
        global: GlobalRoutes,
        tuning: &NodeTuning,
    ) -> NodeRuntime {
        let store = Arc::new(ObjectStore::new(StoreConfig {
            node,
            capacity_bytes: config.store_capacity,
            chunk_bytes: tuning.transfer_chunk_bytes,
        }));
        // The never-evict-the-last-sealed-copy guard: before the store
        // preferentially drops a replica-marked entry it asks the object
        // table whether another sealed holder exists. Captures only the
        // table handle (never `Services`) — the store lives inside the
        // services' node maps, so a `Services` capture would be a cycle.
        let probe_objects = services.objects.clone();
        store.set_replica_probe(Arc::new(move |object| {
            probe_objects
                .get(object)
                .is_some_and(|info| info.sealed && info.locations.iter().any(|n| *n != node))
        }));
        let transfer =
            TransferService::spawn(services.fabric.clone(), store.clone(), &services.directory);
        services.attach_transfer_stats(node, transfer.stats().clone());
        let agent = Arc::new(FetchAgent::spawn(
            services.fabric.clone(),
            store.clone(),
            services.directory.clone(),
        ));

        // The replication plane: a per-node agent that watches the
        // demand this node's transfer service observes and pulls hot
        // sealed objects onto additional holders through the targets'
        // fetch agents (chunked FetchMany + group-committed locations).
        let replication = if tuning.replication.enabled {
            let lookup_objects = services.objects.clone();
            let alive_services = services.clone();
            let pull_services = services.clone();
            let replica_store = store.clone();
            let release_store = store.clone();
            let release_objects = services.objects.clone();
            let fetch_timeout = tuning.fetch_timeout;
            let pull_retry = tuning.retry.clone();
            let hooks = ReplicationHooks {
                lookup: Arc::new(move |object| {
                    lookup_objects.get(object).map(|info| ReplicaView {
                        sealed: info.sealed,
                        locations: info.locations,
                    })
                }),
                // Replica placement steers around suspects: a node that
                // just stopped heartbeating (or keeps failing pulls) is
                // a poor home for a new copy. `filter_healthy` never
                // empties the set, so placement still proceeds when
                // everything looks sick.
                alive_nodes: Arc::new(move || {
                    alive_services
                        .health
                        .filter_healthy(alive_services.alive_nodes())
                }),
                pull: Arc::new(move |object: ObjectId, target, from| {
                    let Some(agent) = pull_services.fetch_agent(target) else {
                        return false;
                    };
                    // Seed from stable identity so two same-seed chaos
                    // runs sleep the same backoff schedule.
                    let seed = (u64::from(from.0) << 32) | u64::from(target.0);
                    let pulled = pull_retry.run(seed, |_attempt| {
                        let (_, result) = rtml_sched::fetch_group_commit(
                            &pull_services.objects,
                            &agent,
                            &[object],
                            from,
                            target,
                            fetch_timeout,
                        )
                        .pop()
                        .expect("one object in, one result out");
                        result.map(|(_, outcome)| outcome)
                    });
                    match pulled {
                        Ok(outcome) => {
                            // Mark only copies this pull sealed: a copy
                            // that already existed (raced with a real
                            // consumer) stays first-class.
                            if outcome.inserted {
                                if let Some(store) = pull_services.store(target) {
                                    store.mark_replica(object);
                                }
                            }
                            pull_services.health.record_success(from);
                            true
                        }
                        Err(_) => {
                            // Every attempt against this holder failed:
                            // evidence toward suspicion.
                            pull_services.health.record_failure(from);
                            false
                        }
                    }
                }),
                list_replicas: Arc::new(move || replica_store.list_replicas()),
                // Reclamation: drop cold replica copies, but only while
                // the copy is still replica-marked, unpinned (checked
                // atomically with the removal by `release_replica`),
                // AND another sealed holder exists — a demoted last
                // copy is never eaten. The cross-node check is not
                // atomic, so the rendezvous *anchor* holder of an
                // object never reclaims: two simultaneously-cold
                // replica holders cannot both drop the last copies. A
                // pressure eviction on the other holder can still
                // overlap this window — that is the same
                // capacity-wins-eventually race plain LRU already has,
                // and lineage replay is the designed backstop.
                // Evictions commit as one remove_location_many.
                release: Arc::new(move |objects: &[ObjectId]| {
                    let mut dropped: Vec<ObjectId> = Vec::new();
                    for &object in objects {
                        let safe = release_objects.get(object).is_some_and(|info| {
                            info.sealed
                                && info.locations.iter().any(|n| *n != node)
                                && rtml_common::ids::rendezvous_rank(
                                    object,
                                    rtml_common::ids::REPLICA_PLACEMENT_SALT,
                                    info.locations.iter().copied(),
                                )
                                .first()
                                .is_some_and(|anchor| *anchor != node)
                        });
                        if safe && release_store.release_replica(object) {
                            dropped.push(object);
                        }
                    }
                    if !dropped.is_empty() {
                        release_objects.remove_location_many(&dropped, node);
                    }
                    dropped.len()
                }),
                observe_sweep: {
                    let events = services.events.clone();
                    Some(Arc::new(move |report: rtml_store::SweepReport| {
                        events.append(
                            node,
                            rtml_common::event::Event::now(
                                rtml_common::event::Component::ReplicationAgent,
                                rtml_common::event::EventKind::ReplicationSweep {
                                    node,
                                    hot: report.hot,
                                    placed: report.placed,
                                    released: report.released,
                                    micros: report.micros,
                                },
                            ),
                        );
                    }))
                },
            };
            Some(ReplicationAgent::spawn(
                node,
                tuning.replication.clone(),
                transfer.stats().clone(),
                hooks,
            ))
        } else {
            None
        };

        // Worker channels first: the scheduler needs the handles.
        let mut worker_channels = Vec::new();
        let mut handles = Vec::new();
        for index in 0..config.workers {
            let (tx, rx) = unbounded();
            let id = WorkerId::new(node, index);
            handles.push(WorkerHandle { id, tx: tx.clone() });
            worker_channels.push((id, tx, rx));
        }

        let recon_hook = {
            let recon = recon.clone();
            Arc::new(move |object| recon.handle_missing(object))
        };
        let (pool_tx, pool_rx) = unbounded::<()>();
        let request_worker = Arc::new(move || {
            let _ = pool_tx.send(());
        });
        // Prefetch-time demand hint: route the fan-in a coalesced
        // request hides to the *holder's* demand counters, where its
        // replication agent will see it. No-op when the plane is off,
        // so wire traffic and counters match PR 3 exactly.
        let replicate_hint: Arc<
            dyn Fn(rtml_common::ids::NodeId, &[(ObjectId, u64)]) + Send + Sync,
        > = if tuning.replication.enabled {
            let hint_services = services.clone();
            Arc::new(move |holder, entries: &[(ObjectId, u64)]| {
                if let Some(stats) = hint_services.transfer_stats(holder) {
                    for (object, weight) in entries {
                        stats.record_demand(*object, *weight);
                    }
                }
            })
        } else {
            Arc::new(|_, _| {})
        };
        let sched_services = SchedServices {
            kv: services.kv.clone(),
            objects: services.objects.clone(),
            tasks: services.tasks.clone(),
            events: services.events.clone(),
            fabric: services.fabric.clone(),
            directory: services.directory.clone(),
            store: store.clone(),
            agent: agent.clone(),
            global,
            reconstruct: recon_hook,
            request_worker,
            replicate_hint,
        };
        let sched = LocalScheduler::spawn(
            LocalSchedulerConfig {
                node,
                total_resources: config.total_resources(),
                spill: tuning.spill.clone(),
                fetch_timeout: tuning.fetch_timeout,
                load_interval: tuning.load_interval,
                prefetch: tuning.prefetch,
                stealing: tuning.stealing.clone(),
                pipelined_ingest: tuning.pipelined_ingest,
                staging_depth: tuning.staging_depth,
            },
            sched_services,
            handles,
        );

        let workers: Arc<parking_lot::Mutex<Vec<(WorkerRuntime, Sender<WorkerCommand>)>>> =
            Arc::new(parking_lot::Mutex::new(
                worker_channels
                    .into_iter()
                    .map(|(id, tx, rx)| {
                        (
                            WorkerRuntime::spawn(
                                id,
                                services.clone(),
                                recon.clone(),
                                sched.sender(),
                                rx,
                            ),
                            tx,
                        )
                    })
                    .collect(),
            ));

        // Pool manager: grows the worker pool on scheduler request, up
        // to a cap. Exits when the scheduler (and its request hook) die.
        {
            let workers = workers.clone();
            let services = services.clone();
            let recon = recon.clone();
            let sched_tx = sched.sender();
            let max_workers = (config.workers as usize * 4).max(16);
            let mut next_index = config.workers;
            std::thread::Builder::new()
                .name(format!("rtml-pool-{node}"))
                .spawn(move || {
                    while pool_rx.recv().is_ok() {
                        if workers.lock().len() >= max_workers {
                            continue;
                        }
                        let (tx, rx) = unbounded();
                        let id = WorkerId::new(node, next_index);
                        next_index += 1;
                        let runtime = WorkerRuntime::spawn(
                            id,
                            services.clone(),
                            recon.clone(),
                            sched_tx.clone(),
                            rx,
                        );
                        workers.lock().push((runtime, tx.clone()));
                        let _ = sched_tx.send(rtml_sched::LocalMsg::AddWorker(
                            rtml_sched::WorkerHandle { id, tx },
                        ));
                    }
                })
                .expect("spawn pool manager");
        }

        services.attach_node(
            node,
            store.clone(),
            agent.clone(),
            sched.sender(),
            config.total_resources(),
        );

        // The sensing plane: register every component's live counters
        // once, then (if enabled) sample them all into the kv-backed
        // telemetry ring on a period — one group-committed record per
        // node per interval.
        let registry = Arc::new(rtml_common::metrics::MetricsRegistry::new());
        Self::register_metrics(
            &registry,
            services,
            &transfer,
            &agent,
            replication.as_ref(),
            &sched,
            &store,
        );
        let sampler = if tuning.telemetry.enabled {
            Some(crate::telemetry::TelemetrySampler::spawn(
                node,
                registry.clone(),
                rtml_kv::TelemetryTable::with_retention(
                    services.kv.clone(),
                    tuning.telemetry.retention,
                ),
                tuning.telemetry.interval,
            ))
        } else {
            None
        };

        NodeRuntime {
            node,
            store,
            config,
            transfer,
            agent,
            replication,
            sched,
            workers,
            registry,
            sampler,
        }
    }

    /// Registers every plane's counters under stable dotted names.
    /// Names are per-node streams except `fabric.*` and `kv.*`, which
    /// read cluster-wide shared state (documented as aggregates).
    fn register_metrics(
        registry: &Arc<rtml_common::metrics::MetricsRegistry>,
        services: &Arc<Services>,
        transfer: &TransferService,
        agent: &Arc<FetchAgent>,
        replication: Option<&ReplicationAgent>,
        sched: &LocalSchedulerHandle,
        store: &Arc<ObjectStore>,
    ) {
        // Transfer service (server side of the data plane).
        let stats = transfer.stats().clone();
        registry.register_value("transfer.requests", move || stats.requests.get());
        let stats = transfer.stats().clone();
        registry.register_value("transfer.objects_served", move || {
            stats.objects_served.get()
        });
        let stats = transfer.stats().clone();
        registry.register_value("transfer.misses", move || stats.misses.get());
        let stats = transfer.stats().clone();
        registry.register_value("transfer.chunks_sent", move || stats.chunks_sent.get());

        // Fetch agent (client side of the data plane).
        let a = agent.clone();
        registry.register_value("fetch.transfers", move || a.stats().transfers.get());
        let a = agent.clone();
        registry.register_value("fetch.requests_sent", move || a.stats().requests_sent.get());
        let a = agent.clone();
        registry.register_value("fetch.duplicates_suppressed", move || {
            a.stats().duplicates_suppressed.get()
        });
        let a = agent.clone();
        registry.register_value("fetch.objects_fetched", move || {
            a.stats().objects_fetched.get()
        });
        let a = agent.clone();
        registry.register_value("fetch.timeouts", move || a.stats().timeouts.get());

        // Replication plane, when on.
        if let Some(replication) = replication {
            let stats = replication.stats().clone();
            registry.register_value("replication.sweeps", move || stats.sweeps.get());
            let stats = replication.stats().clone();
            registry.register_value("replication.hot_objects", move || stats.hot_objects.get());
            let stats = replication.stats().clone();
            registry.register_value("replication.replicas_created", move || {
                stats.replicas_created.get()
            });
            let stats = replication.stats().clone();
            registry.register_value("replication.replicas_released", move || {
                stats.replicas_released.get()
            });
        }

        // Scheduler: prefetch and steal planes.
        let stats = sched.stats().clone();
        registry.register_value("sched.prefetch_skipped_capacity", move || {
            stats.prefetch_skipped_capacity.get()
        });
        let stats = sched.stats().clone();
        registry.register_value("sched.prefetch_deferred_priority", move || {
            stats.prefetch_deferred_priority.get()
        });
        let stats = sched.stats().clone();
        registry.register_value("steal.attempts", move || stats.steal.attempts.get());
        let stats = sched.stats().clone();
        registry.register_value("steal.grants", move || stats.steal.grants.get());
        let stats = sched.stats().clone();
        registry.register_value("steal.empty_grants", move || stats.steal.empty_grants.get());
        let stats = sched.stats().clone();
        registry.register_value("steal.tasks_stolen", move || stats.steal.tasks_stolen.get());
        let stats = sched.stats().clone();
        registry.register_value("steal.tasks_granted", move || {
            stats.steal.tasks_granted.get()
        });
        let stats = sched.stats().clone();
        registry.register_histogram("steal.steal_to_run", move || {
            stats.steal.steal_to_run.snapshot()
        });

        // Local store occupancy (gauge).
        let s = store.clone();
        registry.register_value("store.used_bytes", move || s.used_bytes());
        let s = store.clone();
        registry.register_value("store.objects", move || s.len() as u64);

        // Cluster-wide shared state: the fabric and the control-plane
        // store. Same totals from every node's sampler.
        services.fabric.register_metrics(registry);
        let kv = services.kv.clone();
        registry.register_value("kv.ops", move || kv.stats().total_ops());
        let kv = services.kv.clone();
        registry.register_value("kv.locks", move || kv.stats().total_locks());
        let events = services.events.clone();
        registry.register_value("events.dropped", move || events.dropped_count());
    }

    /// The node's static configuration (used for restarts).
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// The node's transfer-service (server-side) counters.
    pub fn transfer_stats(&self) -> &Arc<rtml_store::TransferStats> {
        self.transfer.stats()
    }

    /// The node's fetch-agent (client-side) counters.
    pub fn fetch_stats(&self) -> &rtml_store::FetchStats {
        self.agent.stats()
    }

    /// The node's replication-agent counters, if the plane is on.
    pub fn replication_stats(&self) -> Option<&Arc<rtml_store::ReplicationStats>> {
        self.replication.as_ref().map(|agent| agent.stats())
    }

    /// The node's local-scheduler counters.
    pub fn sched_stats(&self) -> &Arc<rtml_sched::LocalSchedulerStats> {
        self.sched.stats()
    }

    /// The node's metrics registry (every plane's counters, registered
    /// at build time).
    pub fn registry(&self) -> &Arc<rtml_common::metrics::MetricsRegistry> {
        &self.registry
    }

    /// Kills one worker: crash semantics (in-flight task effects
    /// discarded, scheduler notified). Returns whether the worker
    /// existed.
    pub fn kill_worker(&mut self, worker: WorkerId) -> bool {
        let mut workers = self.workers.lock();
        let Some((runtime, tx)) = workers.iter_mut().find(|(w, _)| w.id == worker) else {
            return false;
        };
        runtime.kill();
        runtime.detach();
        // Unblock the thread if it is idle in recv().
        let _ = tx.send(WorkerCommand::Stop);
        let _ = self.sched.sender().send(LocalMsg::RemoveWorker(worker));
        true
    }

    /// Simulates a whole-node crash: workers die (discarding in-flight
    /// effects), the store's contents vanish, and all registrations are
    /// withdrawn. The caller (cluster) handles task-table repair and
    /// notifying the global scheduler.
    pub fn kill(self, services: &Arc<Services>) {
        // Throw the worker kill switches BEFORE detaching the node's
        // services: a worker that observes its own store missing must
        // already see the kill flag, so it discards its in-flight task
        // (crash semantics) instead of publishing a Failed state the
        // task-table repair would mistake for an application error.
        for (runtime, tx) in self.workers.lock().iter_mut() {
            runtime.kill();
            runtime.detach();
            let _ = tx.send(WorkerCommand::Stop);
        }
        // Stop routing new work here; the replication agent dies with
        // the node (replica copies it created live on in other stores
        // and remain in the object table).
        services.detach_node(self.node);
        if let Some(replication) = &self.replication {
            replication.shutdown();
        }
        // The sampler dies with the node; its committed ring survives
        // in the control plane (telemetry outlives the node, like the
        // event log).
        if let Some(sampler) = &self.sampler {
            sampler.shutdown();
        }
        let mut this = self;
        this.sched.shutdown();
        // Retract the kv-mirrored load report: a dead node must stop
        // attracting steal requests (stale victims are handled, but a
        // ghost with a deep frozen backlog would waste thief attempts).
        services.kv.delete(&rtml_sched::load_key(this.node));
        // Drop the store contents and erase their locations from the
        // table as one group commit.
        let dropped = this.store.clear();
        services.objects.remove_location_many(&dropped, this.node);
        services.directory.remove(this.node);
        this.agent.shutdown();
        this.transfer.shutdown();
        services.events.append(
            this.node,
            Event::now(
                Component::Supervisor,
                EventKind::NodeLost { node: this.node },
            ),
        );
    }

    /// Graceful shutdown: drains schedulers and joins workers.
    pub fn shutdown(mut self, services: &Arc<Services>) {
        services.detach_node(self.node);
        if let Some(replication) = &self.replication {
            replication.shutdown();
        }
        // Stop the sampler last-ish so its final snapshot sees a
        // near-final counter state; the committed ring stays readable
        // through `Cluster::timeseries` after shutdown.
        if let Some(sampler) = &self.sampler {
            sampler.shutdown();
        }
        // The scheduler's shutdown sends Stop to its registered workers.
        self.sched.shutdown();
        services.kv.delete(&rtml_sched::load_key(self.node));
        for (runtime, tx) in self.workers.lock().iter_mut() {
            // Belt and braces for workers the scheduler no longer knows.
            let _ = tx.send(WorkerCommand::Stop);
            runtime.join();
        }
        services.directory.remove(self.node);
        self.agent.shutdown();
        self.transfer.shutdown();
    }
}
