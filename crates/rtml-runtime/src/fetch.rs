//! Blocking object access: the machinery behind `get` and `wait`.
//!
//! [`ensure_local`] implements the paper's `get` semantics: return the
//! value as soon as a copy is in the caller's local store, transparently
//! pulling remote copies over the fabric, and invoking lineage
//! reconstruction when every copy has been lost (R6). [`wait_ready`]
//! implements `wait` (§3.1 item 5): completion-based readiness with a
//! count and a timeout, the primitive that lets applications trade
//! stragglers for latency (R1).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use rtml_common::codec::decode_from_slice;
use rtml_common::error::{Error, Result};
use rtml_common::ids::{NodeId, ObjectId};
use rtml_store::fetch_object;

use crate::lineage::ReconstructionManager;
use crate::services::Services;

/// How long to block on notification channels before re-polling. The
/// re-poll covers windows where a notification raced the subscription.
const POLL_SLICE: Duration = Duration::from_millis(10);

/// Blocks until `object` is present in `node`'s store, and returns its
/// sealed bytes.
///
/// Resolution order:
/// 1. local store hit;
/// 2. remote copy exists → pull it through the transfer service (and
///    record the new location);
/// 3. no copy exists → ask the reconstruction manager to replay lineage,
///    then keep waiting for the replayed task to seal the object.
pub fn ensure_local(
    services: &Services,
    recon: &ReconstructionManager,
    node: NodeId,
    object: ObjectId,
    deadline: Instant,
) -> Result<Bytes> {
    let store = services.store(node).ok_or(Error::NodeDown(node))?;
    if let Some(bytes) = store.get(object) {
        return Ok(bytes);
    }

    let local_rx = store.subscribe_local(object);
    let (mut pending_info, stream) = services.objects.subscribe(object);

    loop {
        if let Some(bytes) = store.get(object) {
            return Ok(bytes);
        }
        let info = pending_info.take().or_else(|| services.objects.get(object));
        if let Some(info) = info {
            if info.is_available() {
                let holders: Vec<_> = info
                    .locations
                    .iter()
                    .copied()
                    .filter(|n| *n != node)
                    .collect();
                if !holders.is_empty() {
                    let mut fetched = None;
                    for holder in &holders {
                        match fetch_object(
                            &services.fabric,
                            &services.directory,
                            &store,
                            object,
                            *holder,
                            services.tuning.fetch_timeout,
                        ) {
                            Ok(result) => {
                                fetched = Some(result);
                                break;
                            }
                            Err(_) => continue,
                        }
                    }
                    match fetched {
                        Some((bytes, outcome)) => {
                            services
                                .objects
                                .add_location(object, node, bytes.len() as u64);
                            for evicted in outcome.evicted {
                                services.objects.remove_location(evicted, node);
                            }
                            return Ok(bytes);
                        }
                        None => {
                            // Every listed holder is unreachable
                            // (partition or silent death): replay the
                            // producer rather than spinning on fetches.
                            recon.force_replay(object);
                        }
                    }
                } else if info.locations == vec![node] {
                    // The table claims we hold it but the store disagrees
                    // (eviction race): fix the record and reconstruct.
                    services.objects.remove_location(object, node);
                    recon.handle_missing(object);
                }
            } else {
                recon.handle_missing(object);
            }
        }

        let now = Instant::now();
        if now >= deadline {
            return Err(Error::Timeout);
        }
        let slice = POLL_SLICE.min(deadline - now);
        crossbeam::channel::select! {
            recv(local_rx) -> msg => {
                if msg.is_err() {
                    return Err(Error::NodeDown(node));
                }
            }
            recv(stream.receiver()) -> msg => {
                match msg {
                    Ok(bytes) => pending_info = decode_from_slice(&bytes).ok(),
                    Err(_) => return Err(Error::ShuttingDown),
                }
            }
            default(slice) => {}
        }
    }
}

/// Blocks until at least `num_ready` of `ids` are complete (their objects
/// sealed anywhere, including error seals) or `timeout` elapses. Returns
/// `(ready, pending)` preserving input order.
///
/// Matches the paper's `wait`: "returns the subset of futures whose tasks
/// have completed when the timeout occurs or the requested number have
/// completed."
pub fn wait_ready(
    services: &Services,
    recon: &ReconstructionManager,
    node: NodeId,
    ids: &[ObjectId],
    num_ready: usize,
    timeout: Duration,
) -> (Vec<ObjectId>, Vec<ObjectId>) {
    let deadline = Instant::now() + timeout;
    let num_ready = num_ready.min(ids.len());
    let store = services.store(node);

    // One table subscription per distinct pending object.
    let streams: Vec<_> = ids
        .iter()
        .map(|id| services.objects.subscribe(*id).1)
        .collect();

    // Readiness is *completion*, not residency: an object that sealed
    // once and was later evicted still counts (its task completed; the
    // value is reconstructible on demand). Matches §3.1 item 5: "the
    // subset of futures whose tasks have completed".
    let is_ready = |id: ObjectId| -> bool {
        if let Some(store) = &store {
            if store.contains(id) {
                return true;
            }
        }
        services.objects.get(id).is_some_and(|info| info.sealed)
    };

    // Nudge reconstruction once for anything that looks lost; the manager
    // no-ops for in-flight producers.
    for id in ids {
        if !is_ready(*id) {
            recon.handle_missing(*id);
        }
    }

    loop {
        let ready_count = ids.iter().filter(|id| is_ready(**id)).count();
        let now = Instant::now();
        if ready_count >= num_ready || now >= deadline {
            let (ready, pending): (Vec<ObjectId>, Vec<ObjectId>) =
                ids.iter().partition(|id| is_ready(**id));
            return (ready, pending);
        }

        // Block on any table change among the pending ids, or the poll
        // slice, whichever first.
        let slice = POLL_SLICE.min(deadline - now);
        let mut select = crossbeam::channel::Select::new();
        for stream in &streams {
            select.recv(stream.receiver());
        }
        match select.select_timeout(slice) {
            Ok(op) => {
                let idx = op.index();
                // Drain the operation to keep the channel consistent.
                let _ = op.recv(streams[idx].receiver());
            }
            Err(_) => {}
        }
    }
}

/// Variant of [`ensure_local`] returning the producing task for error
/// attribution.
pub fn ensure_local_with_producer(
    services: &Arc<Services>,
    recon: &ReconstructionManager,
    node: NodeId,
    object: ObjectId,
    deadline: Instant,
) -> Result<(Bytes, rtml_common::ids::TaskId)> {
    let bytes = ensure_local(services, recon, node, object, deadline)?;
    let producer = services
        .objects
        .get(object)
        .and_then(|info| info.producer)
        .unwrap_or(rtml_common::ids::TaskId::NIL);
    Ok((bytes, producer))
}
