//! Blocking object access: the machinery behind `get`, `get_many`, and
//! `wait`.
//!
//! [`ensure_local`] implements the paper's `get` semantics: return the
//! value as soon as a copy is in the caller's local store, transparently
//! pulling remote copies over the fabric, and invoking lineage
//! reconstruction when every copy has been lost (R6). [`ensure_local_many`]
//! is its batched form: missing objects are grouped by holder and each
//! group travels as **one** coalesced `FetchMany` request (answered by
//! one chunked reply stream), falling back to the per-object path — and
//! thus to reconstruction — for anything the fast path cannot deliver.
//! [`wait_ready`] implements `wait` (§3.1 item 5): completion-based
//! readiness with a count and a timeout, the primitive that lets
//! applications trade stragglers for latency (R1); its readiness sweep
//! reads the object table in one batched `get_many` per pass.
//!
//! All remote pulls go through the node's persistent
//! [`rtml_store::FetchAgent`], so concurrent `get`s of the same object
//! from any thread on the node are single-flighted into one transfer.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use rtml_common::codec::decode_from_slice;
use rtml_common::error::{Error, Result};
use rtml_common::ids::{NodeId, ObjectId};

use crate::lineage::ReconstructionManager;
use crate::services::Services;

/// How long to block on notification channels before re-polling. The
/// re-poll covers windows where a notification raced the subscription.
const POLL_SLICE: Duration = Duration::from_millis(10);

/// Blocks until `object` is present in `node`'s store, and returns its
/// sealed bytes.
///
/// Resolution order:
/// 1. local store hit;
/// 2. remote copy exists → pull it through the node's fetch agent (and
///    record the new location);
/// 3. no copy exists → ask the reconstruction manager to replay lineage,
///    then keep waiting for the replayed task to seal the object.
pub fn ensure_local(
    services: &Services,
    recon: &ReconstructionManager,
    node: NodeId,
    object: ObjectId,
    deadline: Instant,
) -> Result<Bytes> {
    let store = services.store(node).ok_or(Error::NodeDown(node))?;
    if let Some(bytes) = store.get(object) {
        return Ok(bytes);
    }
    let agent = services.fetch_agent(node).ok_or(Error::NodeDown(node))?;

    let local_rx = store.subscribe_local(object);
    let (mut pending_info, stream) = services.objects.subscribe(object);

    loop {
        if let Some(bytes) = store.get(object) {
            return Ok(bytes);
        }
        let info = pending_info.take().or_else(|| services.objects.get(object));
        if let Some(info) = info {
            if info.is_available() {
                // Rendezvous-ranked holders: the head is this reader's
                // deterministic pick (different readers of a replicated
                // object spread across holders), and the tail is the
                // retry order when holders are dead or partitioned.
                // Suspect holders sink to the back of the order, and
                // the retry policy bounds how many are swept per pass.
                let holders = services
                    .health
                    .prefer_healthy(info.holders_ranked(object, node));
                if !holders.is_empty() {
                    let mut fetched = None;
                    let sweep = services.tuning.retry.max_attempts.max(1) as usize;
                    for holder in holders.iter().take(sweep) {
                        let (_, result) = rtml_sched::fetch_group_commit(
                            &services.objects,
                            &agent,
                            &[object],
                            *holder,
                            node,
                            services.tuning.fetch_timeout,
                        )
                        .pop()
                        .expect("one object in, one result out");
                        match result {
                            Ok((bytes, _)) => {
                                services.health.record_success(*holder);
                                fetched = Some(bytes);
                                break;
                            }
                            Err(_) => {
                                services.health.record_failure(*holder);
                                continue;
                            }
                        }
                    }
                    match fetched {
                        Some(bytes) => return Ok(bytes),
                        None => {
                            // Every listed holder is unreachable
                            // (partition or silent death): replay the
                            // producer rather than spinning on fetches.
                            recon.force_replay(object);
                        }
                    }
                } else if info.locations == vec![node] {
                    // The table claims we hold it but the store disagrees
                    // (eviction race): fix the record and reconstruct.
                    services.objects.remove_location(object, node);
                    recon.handle_missing(object);
                }
            } else {
                recon.handle_missing(object);
            }
        } else {
            // No record at all: since the submission path stopped
            // writing declare records, this is the normal in-flight
            // look — but it is *also* what a producer that died before
            // sealing looks like. Nudge reconstruction; it derives the
            // producer from the ID and no-ops while the task is in
            // flight.
            recon.handle_missing(object);
        }

        let now = Instant::now();
        if now >= deadline {
            return Err(Error::Timeout);
        }
        let slice = POLL_SLICE.min(deadline - now);
        crossbeam::channel::select! {
            recv(local_rx) -> msg => {
                if msg.is_err() {
                    return Err(Error::NodeDown(node));
                }
            }
            recv(stream.receiver()) -> msg => {
                match msg {
                    Ok(bytes) => pending_info = decode_from_slice(&bytes).ok(),
                    Err(_) => return Err(Error::ShuttingDown),
                }
            }
            default(slice) => {}
        }
    }
}

/// Blocks until every object in `ids` is present in `node`'s store;
/// returns their sealed bytes in input order (duplicates allowed).
///
/// The batched form of [`ensure_local`]: local hits resolve first, then
/// the distinct missing objects are grouped by holder (rendezvous-ranked
/// per `(object, reader)` — deterministic on one node, load-spread
/// across reader nodes of a replicated object) and each group is
/// pulled as **one** `FetchMany` — one request frame and one chunked
/// reply stream per holder instead of one round trip per object, with
/// location updates group-committed. Objects the fast path cannot
/// deliver (unlocated, holder died mid-transfer, store pressure) fall
/// back to [`ensure_local`] individually, which handles retries against
/// other holders and lineage reconstruction exactly as a plain `get`.
pub fn ensure_local_many(
    services: &Services,
    recon: &ReconstructionManager,
    node: NodeId,
    ids: &[ObjectId],
    deadline: Instant,
) -> Result<Vec<Bytes>> {
    let store = services.store(node).ok_or(Error::NodeDown(node))?;
    let agent = services.fetch_agent(node).ok_or(Error::NodeDown(node))?;
    let mut out: Vec<Option<Bytes>> = ids.iter().map(|id| store.get(*id)).collect();

    // Distinct missing objects, in first-appearance order.
    let mut missing: Vec<ObjectId> = Vec::new();
    let mut missing_seen: HashSet<ObjectId> = HashSet::new();
    for (i, id) in ids.iter().enumerate() {
        if out[i].is_none() && missing_seen.insert(*id) {
            missing.push(*id);
        }
    }

    if !missing.is_empty() {
        // One batched table sweep locates every missing object. Each
        // round groups the still-missing objects by their next
        // rendezvous-ranked holder (health-steered, suspect holders
        // last) and pulls every group as one FetchMany — so a send
        // failure or timeout advances straight to the next-ranked
        // holder instead of dropping the object onto the per-object
        // watcher path. Rounds are bounded by the retry policy.
        let mut fetched: BTreeMap<ObjectId, Bytes> = BTreeMap::new();
        let mut tried: BTreeMap<ObjectId, HashSet<NodeId>> = BTreeMap::new();
        let rounds = services.tuning.retry.max_attempts.max(1) as usize;
        for _round in 0..rounds {
            let still: Vec<ObjectId> = missing
                .iter()
                .copied()
                .filter(|id| !fetched.contains_key(id))
                .collect();
            if still.is_empty() {
                break;
            }
            let infos = services.objects.get_many(&still);
            let mut groups: BTreeMap<NodeId, Vec<ObjectId>> = BTreeMap::new();
            for (id, info) in still.iter().zip(infos) {
                let Some(info) = info else { continue };
                let ranked = services
                    .health
                    .prefer_healthy(info.holders_ranked(*id, node));
                let attempted = tried.entry(*id).or_default();
                if let Some(holder) = ranked.iter().find(|h| !attempted.contains(*h)) {
                    attempted.insert(*holder);
                    groups.entry(*holder).or_default().push(*id);
                }
            }
            if groups.is_empty() {
                break;
            }
            for (holder, group) in groups {
                let remaining = deadline.saturating_duration_since(Instant::now());
                let timeout = services.tuning.fetch_timeout.min(remaining);
                if timeout.is_zero() {
                    break;
                }
                let group_len = group.len();
                let mut got = 0usize;
                for (id, result) in rtml_sched::fetch_group_commit(
                    &services.objects,
                    &agent,
                    &group,
                    holder,
                    node,
                    timeout,
                ) {
                    if let Ok((bytes, _)) = result {
                        fetched.insert(id, bytes);
                        got += 1;
                    }
                }
                if got == 0 && group_len > 0 {
                    services.health.record_failure(holder);
                } else if got == group_len {
                    services.health.record_success(holder);
                }
            }
        }
        for (i, id) in ids.iter().enumerate() {
            if out[i].is_none() {
                if let Some(bytes) = fetched.get(id) {
                    out[i] = Some(bytes.clone());
                }
            }
        }
    }

    // Stragglers take the patient per-object path (other holders,
    // reconstruction, waiting on the producer).
    for (i, id) in ids.iter().enumerate() {
        if out[i].is_none() {
            out[i] = Some(ensure_local(services, recon, node, *id, deadline)?);
        }
    }
    Ok(out.into_iter().map(|b| b.expect("filled above")).collect())
}

/// Blocks until at least `num_ready` of `ids` are complete (their objects
/// sealed anywhere, including error seals) or `timeout` elapses. Returns
/// `(ready, pending)` preserving input order.
///
/// Matches the paper's `wait`: "returns the subset of futures whose tasks
/// have completed when the timeout occurs or the requested number have
/// completed." Each readiness pass over the batch is one group-committed
/// object-table read sweep, not one point read per object.
pub fn wait_ready(
    services: &Services,
    recon: &ReconstructionManager,
    node: NodeId,
    ids: &[ObjectId],
    num_ready: usize,
    timeout: Duration,
) -> (Vec<ObjectId>, Vec<ObjectId>) {
    let deadline = Instant::now() + timeout;
    let num_ready = num_ready.min(ids.len());
    let store = services.store(node);

    // One table subscription per distinct pending object.
    let streams: Vec<_> = ids
        .iter()
        .map(|id| services.objects.subscribe(*id).1)
        .collect();

    // Readiness is *completion*, not residency: an object that sealed
    // once and was later evicted still counts (its task completed; the
    // value is reconstructible on demand). Matches §3.1 item 5: "the
    // subset of futures whose tasks have completed".
    let sweep = |ids: &[ObjectId]| -> Vec<bool> {
        let infos = services.objects.get_many(ids);
        ids.iter()
            .zip(infos)
            .map(|(id, info)| {
                if let Some(store) = &store {
                    if store.contains(*id) {
                        return true;
                    }
                }
                info.is_some_and(|info| info.sealed)
            })
            .collect()
    };

    // Nudge reconstruction once for anything that looks lost; the manager
    // no-ops for in-flight producers.
    for (id, ready) in ids.iter().zip(sweep(ids)) {
        if !ready {
            recon.handle_missing(*id);
        }
    }

    loop {
        let readiness = sweep(ids);
        let ready_count = readiness.iter().filter(|r| **r).count();
        let now = Instant::now();
        if ready_count >= num_ready || now >= deadline {
            let mut ready = Vec::with_capacity(ready_count);
            let mut pending = Vec::with_capacity(ids.len() - ready_count);
            for (id, is_ready) in ids.iter().zip(readiness) {
                if is_ready {
                    ready.push(*id);
                } else {
                    pending.push(*id);
                }
            }
            return (ready, pending);
        }

        // Block on any table change among the pending ids, or the poll
        // slice, whichever first.
        let slice = POLL_SLICE.min(deadline - now);
        let mut select = crossbeam::channel::Select::new();
        for stream in &streams {
            select.recv(stream.receiver());
        }
        match select.select_timeout(slice) {
            Ok(op) => {
                let idx = op.index();
                // Drain the operation to keep the channel consistent.
                let _ = op.recv(streams[idx].receiver());
            }
            Err(_) => {}
        }
    }
}

/// Variant of [`ensure_local`] returning the producing task for error
/// attribution.
pub fn ensure_local_with_producer(
    services: &Arc<Services>,
    recon: &ReconstructionManager,
    node: NodeId,
    object: ObjectId,
    deadline: Instant,
) -> Result<(Bytes, rtml_common::ids::TaskId)> {
    let bytes = ensure_local(services, recon, node, object, deadline)?;
    let producer = object
        .producer_task()
        .unwrap_or(rtml_common::ids::TaskId::NIL);
    Ok((bytes, producer))
}
