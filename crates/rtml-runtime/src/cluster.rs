//! Cluster assembly: the whole of the paper's Figure 3 in one value.
//!
//! [`Cluster::start`] builds the sharded control plane, the simulated
//! fabric, the global scheduler, and every node (store + transfer +
//! local scheduler + workers), then hands out [`Driver`] connections.
//! Failure injection ([`Cluster::kill_worker`], [`Cluster::kill_node`],
//! [`Cluster::restart_node`]) drives the fault-tolerance experiments.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use rtml_common::codec::Codec;
use rtml_common::error::{Error, Result};
use rtml_common::event::{Component, Event, EventKind};
use rtml_common::ids::{DriverId, NodeId, WorkerId};
use rtml_common::task::TaskState;
use rtml_kv::FunctionInfo;
use rtml_net::{FabricConfig, LatencyModel};
use rtml_sched::{
    GlobalScheduler, GlobalSchedulerConfig, GlobalSchedulerHandle, PlacementPolicy, SchedWire,
    SpillMode,
};

use crate::actors::ActorHandle;
use crate::caller::{Driver, TaskContext};
use crate::lineage::ReconstructionManager;
use crate::node::{NodeConfig, NodeRuntime, NodeTuning};
use crate::profiling::ProfileReport;
use crate::registry::{Func0, Func1, Func2, Func3, Func4};
use crate::services::{RuntimeTuning, Services};

/// Whole-cluster configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// One entry per node.
    pub nodes: Vec<NodeConfig>,
    /// Control-plane shard count (R2 scaling knob; experiment E7).
    pub kv_shards: usize,
    /// Cross-node message latency.
    pub latency: LatencyModel,
    /// Cross-node bandwidth (None = infinite).
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// Local-scheduler spill rule (experiment E8).
    pub spill: SpillMode,
    /// Global placement policy (experiment A2).
    pub placement: PlacementPolicy,
    /// Whether to record events (R7). Benchmarks may disable it.
    pub event_logging: bool,
    /// Retention cap per event-log stream (`None` = unbounded). With a
    /// cap, each stream is a ring buffer: long throughput runs stop
    /// growing control-plane memory, profiling keeps working over the
    /// retained window, and the number of dropped records is reported.
    pub event_log_retention: Option<usize>,
    /// Fetch timeout for dependency resolution.
    pub fetch_timeout: Duration,
    /// Default deadline for blocking `get`s.
    pub default_get_timeout: Duration,
    /// Maximum payload bytes per transfer frame: objects larger than
    /// this cross the fabric as ⌈size/chunk⌉ frames streamed through
    /// the bandwidth model (one propagation-delay sample per stream)
    /// instead of one monolithic message.
    pub transfer_chunk_bytes: u64,
    /// Dispatch-time prefetch: local schedulers proactively pull queued
    /// tasks' missing dependencies (one coalesced `FetchMany` per
    /// holder) so transfer overlaps queueing. Changes only *when* bytes
    /// move, never what runs — ids, placements, and results are
    /// bit-identical with it on or off.
    pub prefetch: bool,
    /// Hot-object replication plane: per-node agents watch per-object
    /// remote-read demand and pull objects past
    /// [`rtml_store::ReplicationPolicy::read_threshold`] onto up to
    /// `max_replicas` additional holders, so K readers of a hot object
    /// spread across holders instead of funnelling to the producer.
    /// Like prefetch, replication changes only *where copies live*,
    /// never values: checksums are identical with it on or off.
    pub replication: rtml_store::ReplicationPolicy,
    /// Pull-based work stealing: an idle local scheduler (empty ready
    /// queue, spare resources) pulls a batch of ready tasks from a
    /// peer whose kv-published backlog is deep, preferring tasks whose
    /// dependencies are already local to the thief. The inverse of
    /// spillover — push balancing decides once at ingest, stealing
    /// keeps correcting as queues skew. Changes only *where tasks
    /// run*, never values: checksums are identical with it on or off.
    pub stealing: rtml_sched::StealConfig,
    /// Load-report publication interval.
    pub load_interval: Duration,
    /// Seed for randomized placement policies.
    pub seed: u64,
    /// Which node hosts the global scheduler (a "head node"). Components
    /// on the same node reach it without fabric latency.
    pub global_host: u32,
    /// Number of independent global-scheduler shards. The placement
    /// keyspace is partitioned by task id (FNV-64), so each spilled task
    /// has exactly one owner; shards share no locks and keep their views
    /// of node capacity consistent through kv load digests. `1` (the
    /// default) reproduces the single global scheduler exactly.
    pub global_shards: usize,
    /// Driver-side submission striping: consecutive driver batches go
    /// round-robin to this many nodes' local schedulers, so a single
    /// local scheduler is not the ingest funnel. `1` (the default)
    /// keeps every batch on the driver's home node. Placement-neutral:
    /// ids are producer-embedded and the placement policies ignore the
    /// submitting node, so results and placements are identical with
    /// striping on or off.
    pub submit_striping: usize,
    /// Pipelined submission ingest in the local schedulers: batches are
    /// accepted synchronously and indexed while the driver marshals the
    /// next batch. Changes only *when* ingest work happens, never
    /// values or placements.
    pub pipelined_submission: bool,
    /// Staging-ring depth for pipelined ingest: how many accepted
    /// batches may wait unindexed before an accept forces a flush.
    pub submit_staging_depth: usize,
    /// Per-node telemetry sampling: every node's plane counters are
    /// registered on a [`rtml_common::metrics::MetricsRegistry`] and a
    /// sampler thread group-commits periodic snapshots to the kv-backed
    /// telemetry table as a bounded ring ([`Cluster::timeseries`]). On
    /// by default: the cost is one kv append per node per interval,
    /// noise against the submission hot path's lock budget.
    pub telemetry: crate::telemetry::TelemetryConfig,
    /// Chaos plane: a seeded, deterministic fault-injection plan on the
    /// fabric (per-link drops, duplication, delay spikes, gray links,
    /// scheduled partition windows). Empty by default — a fault-free
    /// cluster pays one branch per send and keeps a byte-identical
    /// jitter stream.
    pub faults: rtml_net::FaultPlan,
    /// The one retry/backoff discipline (bounded exponential backoff,
    /// deterministic jitter, optional deadline) adopted by the fetch
    /// path, driver stripe failover, replication pulls, and — via
    /// [`rtml_sched::StealConfig::retry`] — the steal re-arm.
    pub retry: rtml_common::RetryPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: vec![NodeConfig::default()],
            kv_shards: 8,
            latency: LatencyModel::Constant(Duration::from_micros(100)),
            bandwidth_bytes_per_sec: None,
            spill: SpillMode::default(),
            placement: PlacementPolicy::LocalityAware,
            event_logging: true,
            event_log_retention: None,
            fetch_timeout: Duration::from_secs(2),
            default_get_timeout: Duration::from_secs(30),
            transfer_chunk_bytes: rtml_store::DEFAULT_CHUNK_BYTES,
            prefetch: true,
            replication: rtml_store::ReplicationPolicy::default(),
            stealing: rtml_sched::StealConfig::default(),
            load_interval: Duration::from_millis(1),
            seed: 0x5eed,
            global_host: 0,
            global_shards: 1,
            submit_striping: 1,
            pipelined_submission: true,
            submit_staging_depth: 4,
            telemetry: crate::telemetry::TelemetryConfig::default(),
            faults: rtml_net::FaultPlan::default(),
            retry: rtml_common::RetryPolicy::default(),
        }
    }
}

impl ClusterConfig {
    /// A quick local cluster: `nodes` CPU-only nodes with
    /// `workers_per_node` workers each.
    pub fn local(nodes: usize, workers_per_node: u32) -> Self {
        ClusterConfig {
            nodes: (0..nodes)
                .map(|_| NodeConfig::cpu_only(workers_per_node))
                .collect(),
            ..ClusterConfig::default()
        }
    }

    /// Replaces the latency model builder-style.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Replaces the spill mode builder-style.
    pub fn with_spill(mut self, spill: SpillMode) -> Self {
        self.spill = spill;
        self
    }

    /// Replaces the shard count builder-style.
    pub fn with_kv_shards(mut self, shards: usize) -> Self {
        self.kv_shards = shards;
        self
    }

    /// Disables event logging builder-style (for overhead-sensitive
    /// benchmarks).
    pub fn without_event_log(mut self) -> Self {
        self.event_logging = false;
        self
    }

    /// Bounds each event-log stream to `cap` records builder-style.
    pub fn with_event_log_retention(mut self, cap: usize) -> Self {
        self.event_log_retention = Some(cap);
        self
    }

    /// Sets the transfer chunk size builder-style.
    pub fn with_transfer_chunk_bytes(mut self, bytes: u64) -> Self {
        self.transfer_chunk_bytes = bytes;
        self
    }

    /// Enables or disables dispatch-time prefetch builder-style.
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Replaces the replication policy builder-style.
    pub fn with_replication(mut self, replication: rtml_store::ReplicationPolicy) -> Self {
        self.replication = replication;
        self
    }

    /// Replaces the work-stealing policy builder-style.
    pub fn with_stealing(mut self, stealing: rtml_sched::StealConfig) -> Self {
        self.stealing = stealing;
        self
    }

    /// Sets the global-scheduler shard count builder-style.
    pub fn with_global_shards(mut self, shards: usize) -> Self {
        self.global_shards = shards;
        self
    }

    /// Sets the driver-side submission stripe width builder-style.
    pub fn with_submit_striping(mut self, nodes: usize) -> Self {
        self.submit_striping = nodes;
        self
    }

    /// Enables or disables pipelined submission ingest builder-style.
    pub fn with_pipelined_submission(mut self, pipelined: bool) -> Self {
        self.pipelined_submission = pipelined;
        self
    }

    /// Sets the ingest staging-ring depth builder-style.
    pub fn with_submit_staging_depth(mut self, depth: usize) -> Self {
        self.submit_staging_depth = depth;
        self
    }

    /// Replaces the telemetry config builder-style.
    pub fn with_telemetry(mut self, telemetry: crate::telemetry::TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Disables per-node telemetry sampling builder-style (for
    /// overhead A/B measurements).
    pub fn without_telemetry(mut self) -> Self {
        self.telemetry.enabled = false;
        self
    }

    /// Installs a fault-injection plan builder-style.
    pub fn with_faults(mut self, faults: rtml_net::FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the retry/backoff policy builder-style.
    pub fn with_retry(mut self, retry: rtml_common::RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// A running rtml cluster.
pub struct Cluster {
    services: Arc<Services>,
    recon: Arc<ReconstructionManager>,
    global: Mutex<Option<GlobalSchedulerHandle>>,
    nodes: Mutex<HashMap<NodeId, NodeRuntime>>,
    tuning: NodeTuning,
    driver_counter: AtomicU64,
    actor_counter: AtomicU64,
}

impl Cluster {
    /// Builds and starts every component described by `config`.
    pub fn start(config: ClusterConfig) -> Result<Cluster> {
        if config.nodes.is_empty() {
            return Err(Error::InvalidArgument(
                "cluster needs at least one node".into(),
            ));
        }
        let services = Services::create(
            config.kv_shards,
            FabricConfig {
                latency: config.latency.clone(),
                bandwidth_bytes_per_sec: config.bandwidth_bytes_per_sec,
                jitter_seed: config.seed,
                faults: config.faults.clone(),
            },
            config.event_logging,
            RuntimeTuning {
                fetch_timeout: config.fetch_timeout,
                default_get_timeout: config.default_get_timeout,
                event_log_retention: config.event_log_retention,
                submit_striping: config.submit_striping,
                retry: config.retry.clone(),
                // A node is heartbeat-suspect when its load report is
                // far staler than the publication cadence (idle nodes
                // republish every 16 intervals; see the local
                // scheduler's heartbeat branch).
                suspect_after: config
                    .load_interval
                    .saturating_mul(64)
                    .max(Duration::from_millis(100)),
                reconstruction_cap: RuntimeTuning::default().reconstruction_cap,
            },
        );
        let recon = ReconstructionManager::new(services.clone());

        let global = GlobalScheduler::spawn(
            GlobalSchedulerConfig {
                host_node: NodeId(config.global_host.min(config.nodes.len() as u32 - 1)),
                policy: config.placement,
                seed: config.seed,
                shards: config.global_shards.max(1),
            },
            services.fabric.clone(),
            services.objects.clone(),
            services.events.clone(),
            rtml_kv::LoadDigestTable::new(services.kv.clone()),
        );

        let tuning = NodeTuning {
            spill: config.spill.clone(),
            fetch_timeout: config.fetch_timeout,
            load_interval: config.load_interval,
            transfer_chunk_bytes: config.transfer_chunk_bytes,
            prefetch: config.prefetch,
            replication: config.replication.clone(),
            stealing: config.stealing.clone(),
            pipelined_ingest: config.pipelined_submission,
            staging_depth: config.submit_staging_depth,
            telemetry: config.telemetry.clone(),
            retry: config.retry.clone(),
        };
        let mut nodes = HashMap::new();
        for (i, node_config) in config.nodes.iter().enumerate() {
            let node = NodeId(i as u32);
            let runtime = NodeRuntime::build(
                node,
                node_config.clone(),
                &services,
                &recon,
                global.routes(),
                &tuning,
            );
            nodes.insert(node, runtime);
        }

        // Formation barrier: do not hand out drivers until every global
        // scheduler shard has heard every node's NodeUp (announcements
        // are broadcast to all shards and pay the fabric's latency).
        // Without this, an immediate submission burst would see a
        // one-node cluster.
        let expected = config.nodes.len();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while global.nodes_known_min() < expected {
            if std::time::Instant::now() > deadline {
                return Err(Error::Timeout);
            }
            std::thread::sleep(Duration::from_micros(50));
        }

        Ok(Cluster {
            services,
            recon,
            global: Mutex::new(Some(global)),
            nodes: Mutex::new(nodes),
            tuning,
            driver_counter: AtomicU64::new(0),
            actor_counter: AtomicU64::new(0),
        })
    }

    /// The shared services bundle (tables, registry, fabric).
    pub fn services(&self) -> &Arc<Services> {
        &self.services
    }

    /// The lineage-replay coordinator (exposes reconstruction counters).
    pub fn reconstructions(&self) -> u64 {
        self.recon.reconstructions.get()
    }

    /// Replays deferred by the reconstruction cap (retried by callers'
    /// poll loops once active replays drain).
    pub fn reconstructions_deferred(&self) -> u64 {
        self.recon.deferred.get()
    }

    /// Global-scheduler counters, summed across shards: `(spills
    /// received, placements issued, tasks parked)`.
    pub fn global_stats(&self) -> (u64, u64, u64) {
        match self.global.lock().as_ref() {
            Some(global) => global.totals(),
            None => (0, 0, 0),
        }
    }

    /// Per-shard global-scheduler counters, in shard order: one
    /// `(spills, placements, parked)` triple per shard. Experiments use
    /// this to check the keyspace partition actually spreads work.
    pub fn global_shard_stats(&self) -> Vec<(u64, u64, u64)> {
        match self.global.lock().as_ref() {
            Some(global) => (0..global.num_shards())
                .map(|i| {
                    let stats = global.shard_stats(i);
                    (
                        stats.spills.get(),
                        stats.placements.get(),
                        stats.parked.get(),
                    )
                })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Connects a new driver program (homed on the lowest alive node).
    pub fn driver(&self) -> Driver {
        let id = DriverId::from_index(self.driver_counter.fetch_add(1, Ordering::Relaxed));
        let home = self.services.any_alive().unwrap_or(NodeId(0));
        Driver::new(self.services.clone(), self.recon.clone(), home, id)
    }

    /// Nodes currently alive.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.services.alive_nodes()
    }

    /// Kills one worker (crash semantics). Its in-flight task, if any, is
    /// marked lost and reconstructed on demand.
    pub fn kill_worker(&self, worker: WorkerId) -> Result<()> {
        let mut nodes = self.nodes.lock();
        let node = nodes
            .get_mut(&worker.node)
            .ok_or(Error::NodeDown(worker.node))?;
        if node.kill_worker(worker) {
            self.services.events.append(
                worker.node,
                Event::now(Component::Supervisor, EventKind::WorkerLost { worker }),
            );
            Ok(())
        } else {
            Err(Error::InvalidArgument(format!("no such worker {worker}")))
        }
    }

    /// Kills a whole node: store contents vanish, queued and running
    /// tasks are marked lost (reconstructible), and the global scheduler
    /// is told to stop placing there.
    pub fn kill_node(&self, node: NodeId) -> Result<()> {
        let runtime = self
            .nodes
            .lock()
            .remove(&node)
            .ok_or(Error::NodeDown(node))?;
        runtime.kill(&self.services);

        // Repair the task table: anything bound to the dead node is lost.
        for (task, state) in self.services.tasks.scan_states() {
            let lost = match &state {
                TaskState::Queued(n) => *n == node,
                TaskState::Running(w) => w.node == node,
                TaskState::Submitted => self
                    .services
                    .tasks
                    .get_spec(task)
                    .is_some_and(|s| s.submitter_node == node),
                _ => false,
            };
            if lost {
                self.services.tasks.set_state(task, &TaskState::Lost);
            }
        }

        // Tell every global-scheduler shard via an ephemeral,
        // RAII-guarded endpoint (unregistered on every exit path): each
        // shard holds its own replica of the node table, so each must
        // hear the death.
        if let Some(global) = self.global.lock().as_ref() {
            let from_node = self.services.any_alive().unwrap_or(NodeId(0));
            let endpoint = self
                .services
                .fabric
                .register_guarded(from_node, "node-down");
            let frame = rtml_common::codec::encode_to_bytes(&SchedWire::NodeDown { node });
            for target in global.routes().all() {
                let _ = self
                    .services
                    .fabric
                    .send(endpoint.address(), *target, frame.clone());
            }
        }
        Ok(())
    }

    /// Restarts a previously-killed node with its original configuration
    /// — the paper's "recover by restarting stateless components". The
    /// store starts empty; lost objects reappear via lineage replay when
    /// next needed.
    pub fn restart_node(&self, node: NodeId, config: NodeConfig) -> Result<()> {
        let mut nodes = self.nodes.lock();
        if nodes.contains_key(&node) {
            return Err(Error::InvalidArgument(format!("{node} is alive")));
        }
        let global_routes = self
            .global
            .lock()
            .as_ref()
            .map(|g| g.routes())
            .ok_or(Error::ShuttingDown)?;
        // A rejoining node starts with a clean health slate: suspicion
        // earned by the dead incarnation does not outlive it.
        self.services.health.forget(node);
        let runtime = NodeRuntime::build(
            node,
            config,
            &self.services,
            &self.recon,
            global_routes,
            &self.tuning,
        );
        nodes.insert(node, runtime);
        self.services.events.append(
            node,
            Event::now(Component::Supervisor, EventKind::NodeRestarted { node }),
        );
        Ok(())
    }

    /// The stored configuration of an alive node (useful for restarts).
    pub fn node_config(&self, node: NodeId) -> Option<NodeConfig> {
        self.nodes.lock().get(&node).map(|n| n.config().clone())
    }

    /// Builds a profiling report from the event log (R7), merged with
    /// the live data-plane counters (transfer services and fetch agents
    /// across all alive nodes).
    pub fn profile(&self) -> ProfileReport {
        let mut report = ProfileReport::from_events(&self.services.events.read_all());
        report.dropped_records = self.services.events.dropped_count();
        report.partial = report.dropped_records > 0;
        let fabric = &self.services.fabric.stats;
        report.faults.injected_drops = fabric.injected_drops.get();
        report.faults.injected_dups = fabric.injected_dups.get();
        report.faults.injected_delays = fabric.injected_delays.get();
        report.faults.injected_gray = fabric.injected_gray.get();
        report.faults.reconstructions_deferred = self.recon.deferred.get();
        let nodes = self.nodes.lock();
        for runtime in nodes.values() {
            let t = runtime.transfer_stats();
            report.transfer.requests_served += t.requests.get();
            report.transfer.objects_served += t.objects_served.get();
            report.transfer.misses += t.misses.get();
            report.transfer.decode_errors += t.decode_errors.get();
            report.transfer.send_failures += t.send_failures.get();
            report.transfer.chunks_sent += t.chunks_sent.get();
            let f = runtime.fetch_stats();
            report.transfer.fetches += f.transfers.get();
            report.transfer.duplicate_fetches_suppressed += f.duplicates_suppressed.get();
            report.transfer.chunks_received += f.chunks_received.get();
            report.transfer.fetch_timeouts += f.timeouts.get();
            if let Some(r) = runtime.replication_stats() {
                report.replication.sweeps += r.sweeps.get();
                report.replication.hot_objects += r.hot_objects.get();
                report.replication.replicas_created += r.replicas_created.get();
                report.replication.replicas_released += r.replicas_released.get();
                report.replication.failures += r.failures.get();
            }
            let s = runtime.sched_stats();
            report.prefetch_skipped_capacity += s.prefetch_skipped_capacity.get();
            report.prefetch_deferred_priority += s.prefetch_deferred_priority.get();
            report.steal.absorb(&s.steal);
            report
                .steal_to_run
                .merge_snapshot(&s.steal.steal_to_run.snapshot());
        }
        report
    }

    /// Critical-path attribution for the task that produced `sink`
    /// (usually `some_ref.id().producer_task()`): walks the binding
    /// dependency chain through the event log, splitting the end-to-end
    /// span into staging / placement / queue / transfer / execution.
    /// Dependencies come from the durable task specs, so the walk works
    /// for completed, failed, and reconstructed chains alike. `None`
    /// when the log has no trace of the task (never ran, or its events
    /// fell to retention).
    pub fn critical_path(
        &self,
        sink: rtml_common::ids::TaskId,
    ) -> Option<crate::critical_path::CriticalPath> {
        let tasks = self.services.tasks.clone();
        crate::critical_path::critical_path(
            &self.services.events.read_all(),
            move |task| {
                tasks
                    .get_spec(task)
                    .map(|spec| spec.dependencies().collect())
                    .unwrap_or_default()
            },
            sink,
        )
    }

    /// Reads the telemetry time-series: every node's ring of sampled
    /// metric snapshots, sorted by node. Rings are bounded (see
    /// [`crate::telemetry::TelemetryConfig::retention`]) and survive
    /// node death — a killed node's history stays readable, like its
    /// events. Empty when the telemetry plane is disabled.
    pub fn timeseries(&self) -> Vec<(NodeId, Vec<rtml_kv::TelemetryRecord>)> {
        rtml_kv::TelemetryTable::with_retention(
            self.services.kv.clone(),
            self.tuning.telemetry.retention,
        )
        .read_all()
    }

    /// One node's metrics registry (the live counters its sampler
    /// reads). `None` if the node is not alive.
    pub fn node_registry(
        &self,
        node: NodeId,
    ) -> Option<Arc<rtml_common::metrics::MetricsRegistry>> {
        self.nodes
            .lock()
            .get(&node)
            .map(|runtime| runtime.registry().clone())
    }

    /// One node's live local-scheduler counters (prefetch admission and
    /// steal-plane numbers). `None` if the node is not alive.
    pub fn node_sched_stats(&self, node: NodeId) -> Option<Arc<rtml_sched::LocalSchedulerStats>> {
        self.nodes
            .lock()
            .get(&node)
            .map(|runtime| runtime.sched_stats().clone())
    }

    /// One node's live transfer-service counters (per-holder serve and
    /// demand numbers — what the replication experiments measure spread
    /// with). `None` if the node is not alive.
    pub fn node_transfer_stats(&self, node: NodeId) -> Option<Arc<rtml_store::TransferStats>> {
        self.nodes
            .lock()
            .get(&node)
            .map(|runtime| runtime.transfer_stats().clone())
    }

    /// Spawns a stateful actor on `node` (an extension beyond the paper's
    /// task-only model; see [`crate::actors`]).
    pub fn spawn_actor<S: Send + 'static>(
        &self,
        name: &str,
        node: NodeId,
        init: impl FnOnce() -> S + Send + 'static,
    ) -> Result<ActorHandle<S>> {
        if self.services.store(node).is_none() {
            return Err(Error::NodeDown(node));
        }
        let counter = self.actor_counter.fetch_add(1, Ordering::Relaxed);
        ActorHandle::spawn(name, counter, node, self.services.clone(), init)
    }

    /// Gracefully stops every component and joins their threads.
    pub fn shutdown(self) {
        let nodes: Vec<NodeRuntime> = {
            let mut guard = self.nodes.lock();
            guard.drain().map(|(_, n)| n).collect()
        };
        for node in nodes {
            node.shutdown(&self.services);
        }
        if let Some(mut global) = self.global.lock().take() {
            global.shutdown();
        }
    }
}

macro_rules! cluster_register {
    ($name:ident, $name_ctx:ident, $reg:ident, $reg_ctx:ident, $token:ident, [$($ty:ident),*]) => {
        impl Cluster {
            /// Registers a typed remote function cluster-wide.
            pub fn $name<$($ty: Codec + 'static,)* R: Codec + 'static>(
                &self,
                name: &str,
                f: impl Fn($($ty),*) -> Result<R> + Send + Sync + 'static,
            ) -> $token<$($ty,)* R> {
                let token = self.services.registry.$reg(name, f);
                self.record_function(name, token.id());
                token
            }

            /// Registers a typed remote function that receives the
            /// [`TaskContext`] (for nested submissions).
            pub fn $name_ctx<$($ty: Codec + 'static,)* R: Codec + 'static>(
                &self,
                name: &str,
                f: impl Fn(&TaskContext $(, $ty)*) -> Result<R> + Send + Sync + 'static,
            ) -> $token<$($ty,)* R> {
                let token = self.services.registry.$reg_ctx(name, f);
                self.record_function(name, token.id());
                token
            }
        }
    };
}

cluster_register!(
    register_fn0,
    register_fn0_ctx,
    register0,
    register0_ctx,
    Func0,
    []
);
cluster_register!(
    register_fn1,
    register_fn1_ctx,
    register1,
    register1_ctx,
    Func1,
    [A]
);
cluster_register!(
    register_fn2,
    register_fn2_ctx,
    register2,
    register2_ctx,
    Func2,
    [A, B]
);
cluster_register!(
    register_fn3,
    register_fn3_ctx,
    register3,
    register3_ctx,
    Func3,
    [A, B, C]
);
cluster_register!(
    register_fn4,
    register_fn4_ctx,
    register4,
    register4_ctx,
    Func4,
    [A, B, C, D]
);

impl Cluster {
    fn record_function(&self, name: &str, id: rtml_common::ids::FunctionId) {
        let arity = self.services.registry.arity_of(id).unwrap_or(0);
        self.services.functions.register(&FunctionInfo {
            id,
            name: name.to_string(),
            arity,
        });
    }
}
