//! Typed futures over object-store entries.
//!
//! An [`ObjectRef<T>`] is the paper's *future* (§3.1, citing Baker &
//! Hewitt): a handle to the eventual, immutable result of a task (or a
//! `put`). It is `Copy`, freely shareable across threads, and usable as a
//! task argument — which is how dataflow edges are expressed (R5).

use std::marker::PhantomData;

use rtml_common::codec::{encode_to_bytes, Codec};
use rtml_common::ids::ObjectId;
use rtml_common::task::ArgSpec;

/// A typed future for an object of type `T`.
///
/// The type parameter is a compile-time convenience only; the wire
/// representation is the raw [`ObjectId`]. `erase`/`typed` convert
/// between the typed and untyped views.
pub struct ObjectRef<T> {
    id: ObjectId,
    _marker: PhantomData<fn() -> T>,
}

impl<T> ObjectRef<T> {
    /// Wraps an object ID as a typed future.
    pub fn typed(id: ObjectId) -> Self {
        ObjectRef {
            id,
            _marker: PhantomData,
        }
    }

    /// The underlying object ID.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Drops the type parameter.
    pub fn erase(&self) -> ObjectId {
        self.id
    }
}

impl<T> Clone for ObjectRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for ObjectRef<T> {}

impl<T> std::fmt::Debug for ObjectRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObjectRef({})", self.id)
    }
}

impl<T> PartialEq for ObjectRef<T> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl<T> Eq for ObjectRef<T> {}

impl<T> std::hash::Hash for ObjectRef<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

/// A value that can be passed as a task argument slot of type `T`.
///
/// Two forms exist: immediate values (encoded inline into the task spec)
/// and futures (dataflow dependencies). This trait is what lets
/// `submit2(&f, 3, other_future)` mix both naturally (paper §3.1 item 2:
/// "task arguments can be either regular values or futures").
pub trait IntoArg<T> {
    /// Converts into the task-spec argument form.
    fn into_arg(self) -> ArgSpec;
}

impl<T: Codec> IntoArg<T> for T {
    fn into_arg(self) -> ArgSpec {
        ArgSpec::Value(encode_to_bytes(&self))
    }
}

impl<T: Codec + Clone> IntoArg<T> for &T {
    fn into_arg(self) -> ArgSpec {
        ArgSpec::Value(encode_to_bytes(self))
    }
}

impl<T> IntoArg<T> for ObjectRef<T> {
    fn into_arg(self) -> ArgSpec {
        ArgSpec::ObjectRef(self.id())
    }
}

impl<T> IntoArg<T> for &ObjectRef<T> {
    fn into_arg(self) -> ArgSpec {
        ArgSpec::ObjectRef(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::ids::{DriverId, TaskId};

    fn some_object() -> ObjectId {
        TaskId::driver_root(DriverId::from_index(0))
            .child(0)
            .return_object(0)
    }

    #[test]
    fn refs_are_copy_and_comparable() {
        let a: ObjectRef<u64> = ObjectRef::typed(some_object());
        let b = a;
        assert_eq!(a, b);
        assert_eq!(a.id(), b.erase());
    }

    #[test]
    fn value_arg_encodes_inline() {
        let arg = IntoArg::<u64>::into_arg(5u64);
        match arg {
            ArgSpec::Value(bytes) => {
                let v: u64 = rtml_common::codec::decode_from_slice(&bytes).unwrap();
                assert_eq!(v, 5);
            }
            _ => panic!("expected inline value"),
        }
    }

    #[test]
    fn ref_arg_becomes_dependency() {
        let fut: ObjectRef<u64> = ObjectRef::typed(some_object());
        let arg = fut.into_arg();
        assert_eq!(arg.dependency(), Some(some_object()));
    }

    #[test]
    fn borrowed_forms_work() {
        let v = String::from("s");
        let arg = IntoArg::<String>::into_arg(&v);
        assert!(matches!(arg, ArgSpec::Value(_)));
        let fut: ObjectRef<String> = ObjectRef::typed(some_object());
        let arg = (&fut).into_arg();
        assert!(matches!(arg, ArgSpec::ObjectRef(_)));
    }

    #[test]
    fn refs_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        // Holds even when T itself is not Send/Sync, because the ref only
        // names the value.
        assert_send_sync::<ObjectRef<std::rc::Rc<u8>>>();
    }
}
