//! Value envelopes: how task results and errors travel through the object
//! store.
//!
//! Every object payload in the system is an [`Envelope`]: either a
//! successfully computed value or an application error. Sealing errors as
//! first-class objects is what lets failures propagate through dataflow
//! edges without any side channel: a consumer task opens its argument,
//! sees the error, and fails the same way, cascading to the driver's
//! `get` (the behaviour Ray later standardized).

use bytes::Bytes;

use rtml_common::codec::{decode_from_slice, encode_to_bytes, Codec, Reader, Writer};
use rtml_common::error::{Error, Result};
use rtml_common::ids::TaskId;

/// An object-store payload: a value or a propagated error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Envelope {
    /// Encoded application value.
    Value(Bytes),
    /// An error raised by the producing task (or one of its ancestors).
    Error(String),
}

impl Codec for Envelope {
    fn encode(&self, w: &mut Writer) {
        match self {
            Envelope::Value(bytes) => {
                w.put_u8(0);
                bytes.encode(w);
            }
            Envelope::Error(message) => {
                w.put_u8(1);
                message.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            0 => Envelope::Value(Bytes::decode(r)?),
            1 => Envelope::Error(String::decode(r)?),
            other => return Err(Error::Codec(format!("invalid Envelope tag {other}"))),
        })
    }
}

impl Envelope {
    /// Wraps an encodable value.
    pub fn of_value<T: Codec>(value: &T) -> Envelope {
        Envelope::Value(encode_to_bytes(value))
    }

    /// Serializes this envelope to store bytes.
    pub fn seal(&self) -> Bytes {
        encode_to_bytes(self)
    }

    /// Parses an envelope from store bytes.
    pub fn open(bytes: &[u8]) -> Result<Envelope> {
        decode_from_slice(bytes)
    }

    /// Extracts the raw value bytes or surfaces the propagated error.
    pub fn into_value_bytes(self, producer: TaskId) -> Result<Bytes> {
        match self {
            Envelope::Value(bytes) => Ok(bytes),
            Envelope::Error(message) => Err(Error::TaskFailed {
                task: producer,
                message,
            }),
        }
    }
}

/// Convenience: seal a value directly to store bytes.
pub fn seal_value<T: Codec>(value: &T) -> Bytes {
    Envelope::of_value(value).seal()
}

/// Convenience: seal an error directly to store bytes.
pub fn seal_error(message: &str) -> Bytes {
    Envelope::Error(message.to_string()).seal()
}

/// Opens store bytes and decodes the value inside.
pub fn open_value<T: Codec>(bytes: &[u8], producer: TaskId) -> Result<T> {
    let raw = Envelope::open(bytes)?.into_value_bytes(producer)?;
    decode_from_slice(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let sealed = seal_value(&(7u64, String::from("x")));
        let back: (u64, String) = open_value(&sealed, TaskId::NIL).unwrap();
        assert_eq!(back, (7, "x".to_string()));
    }

    #[test]
    fn error_surfaces_as_task_failed() {
        let sealed = seal_error("boom");
        let r: Result<u64> = open_value(&sealed, TaskId::NIL);
        match r {
            Err(Error::TaskFailed { message, .. }) => assert_eq!(message, "boom"),
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    #[test]
    fn envelope_codec_round_trips() {
        for env in [
            Envelope::Value(Bytes::from_static(b"v")),
            Envelope::Error("e".into()),
        ] {
            let bytes = env.seal();
            assert_eq!(Envelope::open(&bytes).unwrap(), env);
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Envelope::open(&[9, 9, 9]).is_err());
    }

    #[test]
    fn type_mismatch_is_codec_error() {
        let sealed = seal_value(&String::from("text"));
        let r: Result<Vec<f64>> = open_value(&sealed, TaskId::NIL);
        assert!(r.is_err());
    }
}
