//! Peer health tracking: heartbeat-derived suspicion.
//!
//! Every local scheduler already publishes a [`LoadReport`] into the
//! kv mirror (and, since the chaos plane, republishes it periodically
//! even when idle — the heartbeat). The [`HealthTracker`] reads those
//! timestamps and combines them with *failure-derived* evidence
//! (fetch/pull attempts against a peer that timed out or errored) into
//! a single question: *is this node suspect right now?*
//!
//! Suspicion **steers, never decides**: suspect nodes are moved to the
//! back of holder rankings and dropped from stripe/replication
//! candidate sets — unless that would empty the set, in which case the
//! original set is kept. Correctness never depends on suspicion being
//! right; lineage reconstruction remains the backstop. This matters
//! because the kv mirror is shared memory in this simulated cluster: a
//! fabric-partitioned node keeps heartbeating, so staleness alone
//! cannot see partitions — the failure-derived half can.
//!
//! Failure evidence decays: a burst of recorded failures marks a node
//! suspect for a quarantine window, after which it is trusted again
//! unless failures recur (a gray node keeps re-earning suspicion; a
//! healed one stops).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use rtml_common::ids::NodeId;
use rtml_kv::KvStore;
use rtml_sched::{load_key, LoadReport};

/// Failures within this window accumulate toward suspicion; the window
/// also serves as the quarantine period once the threshold is crossed.
const FAILURE_WINDOW: Duration = Duration::from_millis(500);
/// Consecutive recent failures that make a node suspect.
const FAILURE_THRESHOLD: u32 = 2;

#[derive(Clone, Copy, Default)]
struct PeerEvidence {
    /// Failures recorded inside the current window.
    failures: u32,
    /// Timestamp (nanos since process epoch) of the latest failure.
    last_failure_nanos: u64,
}

/// Shared peer-health view. Cheap to consult: verdicts are cached for
/// a short interval so hot paths (stripe routing, holder ranking) pay
/// a map lookup, not a kv read, per call.
pub struct HealthTracker {
    kv: Arc<KvStore>,
    /// A peer whose newest load report is older than this is suspect.
    suspect_after: Duration,
    evidence: Mutex<HashMap<NodeId, PeerEvidence>>,
    /// Verdict cache: node -> (suspect, verdict timestamp nanos).
    verdicts: Mutex<HashMap<NodeId, (bool, u64)>>,
    /// How long a cached verdict stays fresh.
    cache_for: Duration,
}

impl HealthTracker {
    pub fn new(kv: Arc<KvStore>, suspect_after: Duration) -> Arc<Self> {
        Arc::new(HealthTracker {
            kv,
            suspect_after,
            evidence: Mutex::new(HashMap::new()),
            verdicts: Mutex::new(HashMap::new()),
            cache_for: (suspect_after / 16).max(Duration::from_millis(2)),
        })
    }

    /// Records a failed exchange with `node` (fetch timeout, pull
    /// error, send failure). Enough of these inside the failure window
    /// make the node suspect even while its heartbeats keep flowing.
    pub fn record_failure(&self, node: NodeId) {
        let now = rtml_common::time::now_nanos();
        let mut evidence = self.evidence.lock();
        let entry = evidence.entry(node).or_default();
        if now.saturating_sub(entry.last_failure_nanos) > FAILURE_WINDOW.as_nanos() as u64 {
            entry.failures = 0;
        }
        entry.failures += 1;
        entry.last_failure_nanos = now;
        if entry.failures >= FAILURE_THRESHOLD {
            self.verdicts.lock().insert(node, (true, now));
        }
    }

    /// Records a successful exchange with `node`, clearing failure
    /// evidence (heartbeat staleness can still mark it suspect).
    pub fn record_success(&self, node: NodeId) {
        self.evidence.lock().remove(&node);
        self.verdicts.lock().remove(&node);
    }

    /// Whether `node` is currently suspect: either its failure count
    /// crossed the threshold recently, or its newest load report is
    /// stale. Verdicts are cached briefly to keep this callable from
    /// hot paths.
    pub fn is_suspect(&self, node: NodeId) -> bool {
        let now = rtml_common::time::now_nanos();
        if let Some((verdict, at)) = self.verdicts.lock().get(&node) {
            if now.saturating_sub(*at) < self.cache_for.as_nanos() as u64 {
                return *verdict;
            }
        }
        let verdict = self.assess(node, now);
        self.verdicts.lock().insert(node, (verdict, now));
        verdict
    }

    fn assess(&self, node: NodeId, now: u64) -> bool {
        {
            let evidence = self.evidence.lock();
            if let Some(e) = evidence.get(&node) {
                if e.failures >= FAILURE_THRESHOLD
                    && now.saturating_sub(e.last_failure_nanos) < FAILURE_WINDOW.as_nanos() as u64
                {
                    return true;
                }
            }
        }
        // Heartbeat half: a node that has published a load report but
        // not refreshed it within `suspect_after` has a wedged or dead
        // scheduler loop. A node with no report at all is either just
        // forming or already detached — not this tracker's call.
        match self.kv.get(&load_key(node)) {
            Some(bytes) => {
                match rtml_common::codec::decode_from_slice::<LoadReport>(bytes.as_ref()) {
                    Ok(report) => {
                        now.saturating_sub(report.at_nanos) > self.suspect_after.as_nanos() as u64
                    }
                    Err(_) => false,
                }
            }
            None => false,
        }
    }

    /// Reorders `nodes` so non-suspect nodes come first, preserving
    /// relative order within each class — for retry rankings, where
    /// suspect nodes should be last resorts rather than excluded.
    pub fn prefer_healthy(&self, nodes: Vec<NodeId>) -> Vec<NodeId> {
        if nodes.len() <= 1 {
            return nodes;
        }
        let (mut healthy, suspect): (Vec<NodeId>, Vec<NodeId>) =
            nodes.into_iter().partition(|n| !self.is_suspect(*n));
        healthy.extend(suspect);
        healthy
    }

    /// Drops suspect nodes from a candidate set — for placement
    /// decisions (stripe targets, replication) — unless that would
    /// empty the set, in which case the original set is returned so
    /// suspicion can degrade choices but never wedge progress.
    pub fn filter_healthy(&self, nodes: Vec<NodeId>) -> Vec<NodeId> {
        if nodes.len() <= 1 {
            return nodes;
        }
        let healthy: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|n| !self.is_suspect(*n))
            .collect();
        if healthy.is_empty() {
            nodes
        } else {
            healthy
        }
    }

    /// Forgets all evidence about `node` (restart lifecycle: a
    /// rejoining node starts with a clean slate).
    pub fn forget(&self, node: NodeId) {
        self.evidence.lock().remove(&node);
        self.verdicts.lock().remove(&node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> Arc<HealthTracker> {
        HealthTracker::new(KvStore::new(1), Duration::from_millis(100))
    }

    #[test]
    fn failures_cross_threshold_and_successes_clear() {
        let t = tracker();
        let n = NodeId(1);
        assert!(!t.is_suspect(n));
        t.record_failure(n);
        t.record_failure(n);
        assert!(t.is_suspect(n));
        t.record_success(n);
        assert!(!t.is_suspect(n));
    }

    #[test]
    fn stale_heartbeat_marks_suspect_and_fresh_clears() {
        // Short suspect window so the test ages a real report instead
        // of forging timestamps (now_nanos is process-epoch-relative).
        let t = HealthTracker::new(KvStore::new(1), Duration::from_millis(20));
        let n = NodeId(2);
        let report = LoadReport {
            node: n,
            sched_address: 0,
            ready: 0,
            waiting: 0,
            running: 0,
            idle_workers: 1,
            available: rtml_common::Resources::cpu(1.0),
            total: rtml_common::Resources::cpu(1.0),
            at_nanos: rtml_common::time::now_nanos(),
        };
        t.kv.set(load_key(n), rtml_common::codec::encode_to_bytes(&report));
        assert!(!t.is_suspect(n));
        std::thread::sleep(Duration::from_millis(40));
        assert!(t.is_suspect(n));
        // A fresh report clears it once the verdict cache expires.
        let fresh = LoadReport {
            at_nanos: rtml_common::time::now_nanos(),
            ..report
        };
        t.kv.set(load_key(n), rtml_common::codec::encode_to_bytes(&fresh));
        std::thread::sleep(Duration::from_millis(10));
        assert!(!t.is_suspect(n));
    }

    #[test]
    fn unknown_nodes_are_not_suspect() {
        let t = tracker();
        assert!(!t.is_suspect(NodeId(77)));
    }

    #[test]
    fn steering_keeps_sets_nonempty() {
        let t = tracker();
        let bad = NodeId(1);
        t.record_failure(bad);
        t.record_failure(bad);
        assert_eq!(
            t.prefer_healthy(vec![bad, NodeId(2), NodeId(3)]),
            vec![NodeId(2), NodeId(3), bad]
        );
        assert_eq!(t.filter_healthy(vec![bad, NodeId(2)]), vec![NodeId(2)]);
        // All-suspect set survives filtering.
        let also_bad = NodeId(4);
        t.record_failure(also_bad);
        t.record_failure(also_bad);
        assert_eq!(t.filter_healthy(vec![bad, also_bad]), vec![bad, also_bad]);
        t.forget(bad);
        assert!(!t.is_suspect(bad));
    }
}
