//! Actors: stateful workers (an extension beyond the paper).
//!
//! The HotOS paper's model is pure tasks over immutable objects; its §5
//! discusses actor systems (Orleans, Erlang) as related work that trades
//! away systems-level features. Ray itself later added actors, and they
//! are the natural extension here: an actor is a dedicated thread owning
//! mutable state; method calls are serialized in submission order; each
//! call's result is sealed into the object store as an ordinary object,
//! so `get`/`wait` and dataflow composition work unchanged.
//!
//! Trade-off (documented, paper-faithful): actor method results carry
//! **no lineage** — replaying one method would require replaying the
//! whole method log against reconstructed state. Losing the node that
//! holds an un-consumed actor result is therefore unrecoverable (the
//! consumer sees a broken-lineage error instead of hanging).

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};

use rtml_common::codec::{encode_to_bytes, Codec};
use rtml_common::error::{Error, Result};
use rtml_common::event::{Component, Event, EventKind};
use rtml_common::ids::{ActorId, DriverId, NodeId, ObjectId, TaskId, WorkerId};
use rtml_common::task::TaskState;

use crate::envelope::{self, Envelope};
use crate::object_ref::ObjectRef;
use crate::services::Services;

enum ActorMsg {
    Call {
        task: TaskId,
        object: ObjectId,
        f: Box<dyn FnOnce(&mut dyn std::any::Any) -> Result<Bytes> + Send>,
    },
    Stop,
}

/// A handle to a running actor with state type `S`.
///
/// Method calls are closures over `&mut S`; each returns a future that
/// resolves when the actor has processed the call. Calls execute strictly
/// in submission order.
pub struct ActorHandle<S> {
    id: ActorId,
    node: NodeId,
    name: String,
    seq: AtomicU64,
    tx: Sender<ActorMsg>,
    services: Arc<Services>,
    join: Option<std::thread::JoinHandle<()>>,
    _marker: PhantomData<fn(S)>,
}

impl<S: Send + 'static> ActorHandle<S> {
    pub(crate) fn spawn(
        name: &str,
        counter: u64,
        node: NodeId,
        services: Arc<Services>,
        init: impl FnOnce() -> S + Send + 'static,
    ) -> Result<ActorHandle<S>> {
        // Deterministic actor identity: a reserved driver namespace plus
        // the cluster-wide actor counter.
        let root = TaskId::driver_root(DriverId::from_index(u64::MAX - 1));
        let id = root.actor(counter);
        let (tx, rx) = unbounded::<ActorMsg>();
        let services2 = services.clone();
        let pseudo_worker = WorkerId::new(node, u32::MAX - counter as u32);
        let join = std::thread::Builder::new()
            .name(format!("rtml-actor-{name}"))
            .spawn(move || {
                let mut state = init();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ActorMsg::Stop => break,
                        ActorMsg::Call { task, object, f } => {
                            services2
                                .tasks
                                .set_state(task, &TaskState::Running(pseudo_worker));
                            services2.events.append(
                                node,
                                Event::now(
                                    Component::Worker,
                                    EventKind::TaskStarted {
                                        task,
                                        worker: pseudo_worker,
                                    },
                                ),
                            );
                            let started = std::time::Instant::now();
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    f(&mut state)
                                }))
                                .unwrap_or_else(|_| {
                                    Err(Error::TaskFailed {
                                        task,
                                        message: "actor method panicked".into(),
                                    })
                                });
                            let (bytes, final_state) = match result {
                                Ok(raw) => (Envelope::Value(raw).seal(), TaskState::Finished),
                                Err(e) => (
                                    envelope::seal_error(&e.to_string()),
                                    TaskState::Failed(e.to_string()),
                                ),
                            };
                            let len = bytes.len() as u64;
                            if let Some(store) = services2.store(node) {
                                if store.put(object, bytes).is_ok() {
                                    services2.objects.add_location(object, node, len);
                                }
                            }
                            services2.tasks.set_state(task, &final_state);
                            services2.events.append(
                                node,
                                Event::now(
                                    Component::Worker,
                                    EventKind::TaskFinished {
                                        task,
                                        worker: pseudo_worker,
                                        micros: started.elapsed().as_micros() as u64,
                                    },
                                ),
                            );
                        }
                    }
                }
            })
            .map_err(|_| Error::Disconnected("actor thread"))?;
        Ok(ActorHandle {
            id,
            node,
            name: name.to_string(),
            seq: AtomicU64::new(0),
            tx,
            services,
            join: Some(join),
            _marker: PhantomData,
        })
    }

    /// The actor's identity.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// The node hosting the actor's state.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The actor's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Invokes a method: a closure over the actor's state. Returns a
    /// future immediately; the call executes after all previously
    /// submitted calls (actor ordering).
    pub fn call<R: Codec + 'static>(
        &self,
        f: impl FnOnce(&mut S) -> Result<R> + Send + 'static,
    ) -> Result<ObjectRef<R>> {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let task = self.id.method_task(n);
        // Actor results carry no lineage edge: `actor_result` IDs report
        // no producer, so reconstruction never replays a stateful method
        // call (see module docs).
        let object = task.actor_result(0);
        self.services.tasks.set_state(task, &TaskState::Submitted);
        let wrapped = Box::new(move |any: &mut dyn std::any::Any| -> Result<Bytes> {
            let state = any
                .downcast_mut::<S>()
                .ok_or_else(|| Error::InvalidArgument("actor state type mismatch".into()))?;
            let value = f(state)?;
            Ok(encode_to_bytes(&value))
        });
        self.tx
            .send(ActorMsg::Call {
                task,
                object,
                f: wrapped,
            })
            .map_err(|_| Error::Disconnected("actor"))?;
        Ok(ObjectRef::typed(object))
    }

    /// Stops the actor after all queued calls drain, joining its thread.
    pub fn stop(mut self) {
        let _ = self.tx.send(ActorMsg::Stop);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl<S> Drop for ActorHandle<S> {
    fn drop(&mut self) {
        let _ = self.tx.send(ActorMsg::Stop);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}
