//! A2 — placement-policy ablation for the global scheduler.
//!
//! Workload: tasks whose argument is a large object resident on one
//! node. Locality-aware placement (the paper's design) sends tasks to
//! the data; the alternatives move the data to the tasks.
//!
//! Run: `cargo run -p rtml-bench --bin exp_placement --release`

use std::time::{Duration, Instant};

use rtml_bench::{fmt_duration, print_table};
use rtml_runtime::{Cluster, ClusterConfig, TaskOptions};
use rtml_sched::{PlacementPolicy, SpillMode};

fn main() {
    let mut rows = Vec::new();
    for (label, policy) in [
        ("locality-aware (paper)", PlacementPolicy::LocalityAware),
        ("least-loaded", PlacementPolicy::LeastLoaded),
        ("round-robin", PlacementPolicy::RoundRobin),
        ("power-of-two", PlacementPolicy::PowerOfTwo),
    ] {
        // Every task is forced through the global scheduler
        // (AlwaysSpill) so the placement policy decides everything.
        // 1 MB/ms bandwidth makes data movement visible.
        let mut config = ClusterConfig::local(4, 2).with_spill(SpillMode::AlwaysSpill);
        config.placement = policy;
        config.bandwidth_bytes_per_sec = Some(1_000_000_000); // 1 GB/s
        let cluster = Cluster::start(config).unwrap();
        let consume = cluster.register_fn1("consume", |data: Vec<u8>| {
            rtml_common::time::occupy(Duration::from_millis(1));
            Ok(data.len() as u64)
        });
        let driver = cluster.driver();

        // A 4 MB object born on the driver's node.
        let big = driver.put(&vec![7u8; 4 << 20]).unwrap();

        const TASKS: usize = 40;
        let start = Instant::now();
        let futs: Vec<_> = (0..TASKS)
            .map(|_| {
                driver
                    .submit1_opts(&consume, &big, TaskOptions::cpu(1.0))
                    .unwrap()
            })
            .collect();
        for fut in &futs {
            assert_eq!(driver.get(fut).unwrap(), 4 << 20);
        }
        let makespan = start.elapsed();
        let report = cluster.profile();
        rows.push(vec![
            label.to_string(),
            fmt_duration(makespan),
            report.transfers.to_string(),
        ]);
        cluster.shutdown();
    }
    print_table(
        "A2: placement policies — 40 tasks consuming one 4 MB object (1 GB/s links)",
        &["policy", "makespan", "cross-node transfers"],
        &rows,
    );
    println!(
        "\n(locality-aware keeps tasks where the object lives: zero or one\n transfer. the alternatives scatter tasks and pay a 4 MB transfer\n per remote placement — §3.2.2's 'object locality' in action.)"
    );
}
