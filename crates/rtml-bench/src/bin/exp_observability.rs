//! E14 — the observability plane: causal traces, critical-path
//! attribution, and the kv-backed telemetry time-series.
//!
//! The paper's Figure 3 hangs profiling and error-diagnosis tools off
//! the centralized control state; this experiment exercises the whole
//! loop end to end and self-asserts its acceptance criteria:
//!
//! - **Causal trace**: a DAG workload across 3 nodes produces a
//!   Chrome-trace that is valid JSON, carries flow arrows
//!   (`ph:"s"/"t"/"f"`) stitching submit → queue → place → start across
//!   nodes, and holds at least one duration span for every plane
//!   (control, staging, placement, transfer, replication — plus steal,
//!   from a skewed-burst run where pull-based stealing fires).
//! - **Critical path**: the analyzer walks the sink task's binding
//!   dependency chain and splits the end-to-end span into
//!   staging/placement/queue/transfer/execution; the buckets must sum
//!   to the measured makespan within 1% (they are exact by
//!   construction — the tolerance only guards the assertion itself).
//! - **Telemetry**: every node's sampler commits a bounded ring of
//!   column-stable snapshots to the kv store, covering every metric
//!   its registry exposes.
//! - **Overhead**: batch-4096 submission throughput with default-on
//!   telemetry must stay within 10% of the same run with telemetry
//!   off (measured back-to-back, min-of-N).
//!
//! Run: `cargo run -p rtml-bench --bin exp_observability --release`
//!
//! Results land in `BENCH_observability.json`; the trace itself in
//! `BENCH_observability_trace.json` (load it in Perfetto).
//! `RTML_OBS_TASKS` scales the DAG fan-out, `RTML_OBS_SUBMIT_TASKS`
//! the overhead run's task budget, `RTML_OBS_REPS` its repetitions.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rtml_bench::print_table;
use rtml_common::ids::{DriverId, NodeId, TaskId};
use rtml_common::resources::Resources;
use rtml_common::task::{ArgSpec, TaskState};
use rtml_runtime::{Cluster, ClusterConfig, Driver, NodeConfig, TaskRequest, TelemetryConfig};
use rtml_sched::{SpillMode, StealConfig};
use rtml_store::ReplicationPolicy;

const DEFAULT_FANOUT: usize = 64;
const CHAIN_LEN: usize = 8;
const DEFAULT_SUBMIT_TASKS: usize = 8_192;
const SUBMIT_BATCH: usize = 4_096;
/// Telemetry-on submission throughput must stay within this factor of
/// telemetry-off.
const MIN_OVERHEAD_RATIO: f64 = 0.9;
/// Critical-path buckets must sum to the makespan within this.
const ATTRIBUTION_TOLERANCE: f64 = 0.01;

struct DagRun {
    plane_spans: BTreeMap<&'static str, usize>,
    trace: String,
    flow_starts: usize,
    flow_binds: usize,
    makespan_us: u64,
    attributed_us: u64,
    staging_us: u64,
    placement_us: u64,
    queue_us: u64,
    transfer_us: u64,
    execution_us: u64,
    chain_len: usize,
    telemetry_nodes: usize,
    telemetry_records: usize,
    telemetry_retention: usize,
    telemetry_columns: usize,
    dropped_records: u64,
}

/// The trace workload: a 3-node cluster under `AlwaysSpill` (every
/// task crosses the global scheduler, so placement spans and
/// cross-node transfers are guaranteed) running a fan-out layer plus a
/// linear dependency chain whose sink anchors the critical path.
fn run_dag(fanout: usize) -> DagRun {
    let telemetry = TelemetryConfig {
        interval: Duration::from_millis(5),
        ..TelemetryConfig::default()
    };
    let retention = telemetry.retention;
    let cluster = Cluster::start(
        ClusterConfig::local(3, 2)
            .with_spill(SpillMode::AlwaysSpill)
            .with_replication(ReplicationPolicy {
                sweep_interval: Duration::from_millis(5),
                ..ReplicationPolicy::default()
            })
            .with_telemetry(telemetry),
    )
    .unwrap();
    let work = cluster.register_fn1("obs_work", |block: Vec<u8>| {
        std::thread::sleep(Duration::from_millis(1));
        Ok(block
            .iter()
            .map(|&b| b.wrapping_add(1))
            .collect::<Vec<u8>>())
    });
    let driver = cluster.driver();

    // Shared input block: fan-out consumers on other nodes pull it
    // across the fabric (transfer spans) and make it hot (replication
    // demand).
    let block: Vec<u8> = (0..16 * 1024).map(|i| (i % 251) as u8).collect();
    let seed = driver.put(&block).unwrap();

    let fan: Vec<_> = (0..fanout)
        .map(|_| driver.submit1(&work, &seed).unwrap())
        .collect();
    // The chain: each link consumes its predecessor's output, and
    // AlwaysSpill round-robins links across nodes, so the dependency
    // crosses the fabric at most every hop.
    let mut tip = driver.submit1(&work, &seed).unwrap();
    for _ in 1..CHAIN_LEN {
        tip = driver.submit1(&work, &tip).unwrap();
    }
    driver.get_many(&fan).unwrap();
    let sink_value = driver.get(&tip).unwrap();
    assert!(!sink_value.is_empty());
    // Let the replication agents sweep at least once more and the
    // samplers take another snapshot before reading the plane back.
    std::thread::sleep(Duration::from_millis(30));

    let report = cluster.profile();
    let mut plane_spans: BTreeMap<&'static str, usize> = BTreeMap::new();
    for span in &report.spans {
        *plane_spans.entry(span.plane).or_insert(0) += 1;
    }
    let trace = report.chrome_trace();
    validate_json(&trace).expect("chrome trace must be valid JSON");
    let flow_starts = trace.matches("\"ph\":\"s\"").count();
    let flow_binds = trace.matches("\"ph\":\"f\"").count();

    let sink_task = tip.id().producer_task().expect("task-produced object");
    let path = cluster
        .critical_path(sink_task)
        .expect("sink task is in the event log");
    assert_eq!(path.sink, sink_task);

    // Telemetry: every node has a non-empty, bounded, column-stable
    // series covering every metric its registry exposes.
    let series = cluster.timeseries();
    assert_eq!(series.len(), 3, "every node commits a telemetry series");
    let mut telemetry_records = 0;
    for (node, records) in &series {
        assert!(!records.is_empty(), "node {node} series is empty");
        assert!(
            records.len() <= retention,
            "node {node} ring exceeded retention: {}",
            records.len()
        );
        telemetry_records += records.len();
        for pair in records.windows(2) {
            assert!(pair[0].at_nanos <= pair[1].at_nanos);
        }
    }
    let registry = cluster.node_registry(NodeId(0)).expect("node 0 alive");
    let expected = registry.sample_names();
    let node0 = &series.iter().find(|(n, _)| *n == NodeId(0)).unwrap().1;
    for record in node0.iter() {
        let columns: Vec<&str> = record.samples.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            columns, expected,
            "telemetry columns must match the registry on every record"
        );
    }
    let telemetry_columns = expected.len();

    cluster.shutdown();
    DagRun {
        plane_spans,
        trace,
        flow_starts,
        flow_binds,
        makespan_us: path.makespan_nanos() / 1_000,
        attributed_us: path.attributed_nanos() / 1_000,
        staging_us: path.staging_nanos / 1_000,
        placement_us: path.placement_nanos / 1_000,
        queue_us: path.queue_nanos / 1_000,
        transfer_us: path.transfer_nanos / 1_000,
        execution_us: path.execution_nanos / 1_000,
        chain_len: path.chain.len(),
        telemetry_nodes: series.len(),
        telemetry_records,
        telemetry_retention: retention,
        telemetry_columns,
        dropped_records: report.dropped_records,
    }
}

/// The steal workload: a gated burst lands on node 0 under
/// `NeverSpill`, so the only way tasks move is the pull-based steal
/// plane — whose request→grant round trips emit steal spans.
fn run_steal_spans(tasks: usize) -> usize {
    let cluster = Cluster::start(
        ClusterConfig {
            nodes: (0..3).map(|_| NodeConfig::cpu_only(2)).collect(),
            spill: SpillMode::NeverSpill,
            ..ClusterConfig::default()
        }
        .with_stealing(StealConfig {
            enabled: true,
            min_backlog: 2,
            max_tasks: 8,
            interval: Duration::from_millis(1),
            timeout: Duration::from_millis(100),
            hint_objects: 64,
            ..StealConfig::default()
        }),
    )
    .unwrap();
    let gate = cluster.register_fn0("obs_gate", || {
        std::thread::sleep(Duration::from_millis(10));
        Ok(1u8)
    });
    let work = cluster.register_fn2("obs_burst", |i: u64, _gate: u8| {
        std::thread::sleep(Duration::from_millis(3));
        Ok(i)
    });
    let driver = cluster.driver();
    let open = driver.submit0(&gate).unwrap();
    let futs: Vec<_> = (0..tasks as u64)
        .map(|i| driver.submit2(&work, i, &open).unwrap())
        .collect();
    driver.get_many(&futs).unwrap();
    let report = cluster.profile();
    let steal_spans = report.spans.iter().filter(|s| s.plane == "steal").count();
    cluster.shutdown();
    steal_spans
}

/// One batch-4096 submission-throughput run (tasks/s), pipelined, on
/// the CI floor's configuration — the only difference between calls is
/// the telemetry switch.
fn measure_submit(telemetry_on: bool, total_tasks: usize) -> f64 {
    let mut config = ClusterConfig {
        spill: SpillMode::NeverSpill,
        ..ClusterConfig::local(1, 2)
    }
    .with_event_log_retention(4096);
    if !telemetry_on {
        config = config.without_telemetry();
    }
    let cluster = Cluster::start(config).unwrap();
    let gated = cluster.register_fn2("obs_gated_submit", |x: u64, _gate: u64| Ok(x));
    let driver = cluster.driver();
    let never = TaskId::driver_root(DriverId::from_index(u64::MAX))
        .child(0)
        .return_object(0);
    let payload = rtml_common::codec::encode_to_bytes(&0u64);
    let batches = total_tasks.div_ceil(SUBMIT_BATCH);
    let mut prebuilt: Vec<Vec<TaskRequest>> = (0..batches)
        .map(|_| {
            (0..SUBMIT_BATCH)
                .map(|_| TaskRequest {
                    function: gated.id(),
                    args: vec![ArgSpec::Value(payload.clone()), ArgSpec::ObjectRef(never)],
                    num_returns: 1,
                    resources: Resources::cpu(1.0),
                })
                .collect()
        })
        .collect();
    let start = Instant::now();
    let mut last_returns = Vec::new();
    for requests in prebuilt.drain(..) {
        let mut results = driver.submit_raw_batch(requests).unwrap();
        last_returns = results.pop().unwrap();
    }
    wait_queued(&driver, &last_returns);
    let elapsed = start.elapsed();
    cluster.shutdown();
    (batches * SUBMIT_BATCH) as f64 / elapsed.as_secs_f64()
}

/// Event-driven ingest barrier (see `exp_submit_throughput`).
fn wait_queued(driver: &Driver, returns: &[rtml_common::ids::ObjectId]) {
    let task = returns[0]
        .producer_task()
        .expect("return objects embed their producer");
    let (current, stream) = driver.services().tasks.subscribe_state(task);
    if matches!(current, Some(TaskState::Queued(_))) {
        return;
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match stream.recv_timeout(Duration::from_secs(1)) {
            Some(TaskState::Queued(_)) => return,
            _ => assert!(Instant::now() < deadline, "ingest never completed"),
        }
    }
}

fn main() {
    let fanout: usize = std::env::var("RTML_OBS_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_FANOUT);
    let submit_tasks: usize = std::env::var("RTML_OBS_SUBMIT_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SUBMIT_TASKS);
    let reps: usize = std::env::var("RTML_OBS_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);

    let dag = run_dag(fanout);
    let steal_spans = run_steal_spans(48);

    // Overhead A/B, interleaved min-of-N.
    let mut on_rate: f64 = 0.0;
    let mut off_rate: f64 = 0.0;
    for _ in 0..reps {
        on_rate = on_rate.max(measure_submit(true, submit_tasks));
        off_rate = off_rate.max(measure_submit(false, submit_tasks));
    }
    let overhead_ratio = on_rate / off_rate;

    let span_rows: Vec<Vec<String>> = dag
        .plane_spans
        .iter()
        .map(|(plane, count)| vec![plane.to_string(), count.to_string()])
        .chain(std::iter::once(vec![
            "steal (burst run)".to_string(),
            steal_spans.to_string(),
        ]))
        .collect();
    print_table(
        &format!("E14: plane spans ({fanout}-wide fan-out + {CHAIN_LEN}-deep chain, 3 nodes)"),
        &["plane", "spans"],
        &span_rows,
    );
    print_table(
        "E14: critical path of the chain sink",
        &["bucket", "micros"],
        &[
            vec!["staging".into(), dag.staging_us.to_string()],
            vec!["placement".into(), dag.placement_us.to_string()],
            vec!["queue".into(), dag.queue_us.to_string()],
            vec!["transfer".into(), dag.transfer_us.to_string()],
            vec!["execution".into(), dag.execution_us.to_string()],
            vec!["= attributed".into(), dag.attributed_us.to_string()],
            vec!["makespan".into(), dag.makespan_us.to_string()],
        ],
    );
    println!(
        "\ntelemetry: {} nodes, {} records (ring cap {}), {} columns each; \
         trace: {} flow starts, {} binds; submit batch-{SUBMIT_BATCH}: \
         telemetry on {:.0}/s vs off {:.0}/s ({:.3}x)",
        dag.telemetry_nodes,
        dag.telemetry_records,
        dag.telemetry_retention,
        dag.telemetry_columns,
        dag.flow_starts,
        dag.flow_binds,
        on_rate,
        off_rate,
        overhead_ratio,
    );

    // Self-asserts (the acceptance criteria).
    for plane in ["control", "staging", "placement", "transfer", "replication"] {
        assert!(
            dag.plane_spans.get(plane).copied().unwrap_or(0) > 0,
            "trace must hold at least one {plane} span"
        );
    }
    assert!(steal_spans > 0, "burst run must produce steal spans");
    assert!(
        dag.flow_starts > 0 && dag.flow_binds > 0,
        "trace must carry flow events ({} starts, {} binds)",
        dag.flow_starts,
        dag.flow_binds,
    );
    let drift = dag.makespan_us.abs_diff(dag.attributed_us) as f64;
    assert!(
        drift <= ATTRIBUTION_TOLERANCE * dag.makespan_us.max(1) as f64,
        "attribution must sum to the makespan within 1%: {} vs {} µs",
        dag.attributed_us,
        dag.makespan_us,
    );
    assert!(
        overhead_ratio >= MIN_OVERHEAD_RATIO,
        "default-on telemetry must keep batch-{SUBMIT_BATCH} submission within 10%: {:.3}x",
        overhead_ratio,
    );

    let json = format!(
        "{{\n  \"experiment\": \"observability\",\n  \"fanout\": {fanout},\n  \"chain_len\": {},\n  \"planes\": {{{}}},\n  \"steal_spans\": {steal_spans},\n  \"flow_starts\": {},\n  \"flow_binds\": {},\n  \"critical_path_us\": {{\"staging\": {}, \"placement\": {}, \"queue\": {}, \"transfer\": {}, \"execution\": {}, \"attributed\": {}, \"makespan\": {}}},\n  \"telemetry\": {{\"nodes\": {}, \"records\": {}, \"retention\": {}, \"columns\": {}}},\n  \"submit_batch\": {SUBMIT_BATCH},\n  \"submit_tasks_per_rate\": {},\n  \"telemetry_on_tasks_per_sec\": {:.0},\n  \"telemetry_off_tasks_per_sec\": {:.0},\n  \"overhead_ratio\": {:.4},\n  \"event_records_dropped\": {}\n}}\n",
        dag.chain_len,
        dag.plane_spans
            .iter()
            .map(|(plane, count)| format!("\"{plane}\": {count}"))
            .collect::<Vec<_>>()
            .join(", "),
        dag.flow_starts,
        dag.flow_binds,
        dag.staging_us,
        dag.placement_us,
        dag.queue_us,
        dag.transfer_us,
        dag.execution_us,
        dag.attributed_us,
        dag.makespan_us,
        dag.telemetry_nodes,
        dag.telemetry_records,
        dag.telemetry_retention,
        dag.telemetry_columns,
        submit_tasks,
        on_rate,
        off_rate,
        overhead_ratio,
        dag.dropped_records,
    );
    validate_json(&json).expect("results must be valid JSON");
    for (path, body) in [
        ("BENCH_observability.json", json.as_str()),
        ("BENCH_observability_trace.json", dag.trace.as_str()),
    ] {
        match std::fs::write(path, body) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Minimal JSON validator (no deps): accepts exactly one value, full
/// string-escape and number grammar. Enough to guarantee Perfetto can
/// load what we wrote.
fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, b"true"),
        Some(b'f') => parse_literal(b, pos, b"false"),
        Some(b'n') => parse_literal(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => parse_number(b, pos),
        other => Err(format!("unexpected {other:?} at byte {pos}")),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {pos}"));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}")),
            },
            0x00..=0x1f => return Err(format!("raw control char at byte {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let from = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}
