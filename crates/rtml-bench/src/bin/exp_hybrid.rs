//! E8 — §3.2.2 hybrid scheduling vs the alternatives.
//!
//! The paper's critique of centralized schedulers (CIEL, Dask): "low
//! latency must often be traded off with high throughput". This
//! experiment runs the same task storm under three spill modes:
//!
//! - `NeverSpill`  — pure node-local scheduling (no load sharing);
//! - `AlwaysSpill` — fully centralized (every task through the global);
//! - `Hybrid`      — the paper's design: local fast path + spillover.
//!
//! Run: `cargo run -p rtml-bench --bin exp_hybrid --release`

use std::time::{Duration, Instant};

use rtml_bench::{fmt_duration, print_table};
use rtml_common::metrics::fmt_nanos;
use rtml_runtime::{Cluster, ClusterConfig};
use rtml_sched::SpillMode;

fn modes() -> [(&'static str, SpillMode); 3] {
    [
        ("local-only (NeverSpill)", SpillMode::NeverSpill),
        ("centralized (AlwaysSpill)", SpillMode::AlwaysSpill),
        (
            "hybrid (threshold 8)",
            SpillMode::Hybrid { queue_threshold: 8 },
        ),
    ]
}

fn main() {
    // --- light load: per-task latency (R1) ---------------------------
    // A sparse stream of single tasks. The global scheduler lives on a
    // separate "head node" (node 3), as it would in a real deployment:
    // a centralized architecture pays cross-node hops on *every* task,
    // the hybrid fast path pays none.
    let mut rows = Vec::new();
    for (label, mode) in modes() {
        let mut config = ClusterConfig::local(4, 2).with_spill(mode);
        config.global_host = 3;
        let cluster = Cluster::start(config).unwrap();
        let quick = cluster.register_fn1("quick_task", |x: u64| Ok(x));
        let driver = cluster.driver();
        // Warm up.
        for i in 0..10u64 {
            let fut = driver.submit1(&quick, i).unwrap();
            let _ = driver.get(&fut);
        }
        let mut samples = Vec::new();
        for i in 0..200u64 {
            let start = Instant::now();
            let fut = driver.submit1(&quick, i).unwrap();
            let _ = driver.get(&fut).unwrap();
            samples.push(start.elapsed());
        }
        let stats = rtml_bench::DurationStats::from_samples(&samples);
        rows.push(vec![
            label.to_string(),
            fmt_duration(stats.mean),
            fmt_duration(stats.p50),
            fmt_duration(stats.p99),
        ]);
        cluster.shutdown();
    }
    print_table(
        "E8a: light load — sequential empty tasks, global scheduler on a head node",
        &["architecture", "mean e2e", "p50", "p99"],
        &rows,
    );

    // --- heavy load: makespan (R2) ------------------------------------
    let mut rows = Vec::new();
    for (label, mode) in modes() {
        let mut config = ClusterConfig::local(4, 2).with_spill(mode);
        config.global_host = 3;
        let cluster = Cluster::start(config).unwrap();
        let work = cluster.register_fn1("storm_task", |x: u64| {
            rtml_common::time::occupy(Duration::from_millis(2));
            Ok(x)
        });
        let driver = cluster.driver();
        // Warm-up.
        let warm = driver.submit1(&work, 0u64).unwrap();
        let _ = driver.get(&warm);

        const TASKS: usize = 200;
        let start = Instant::now();
        let futs: Vec<_> = (0..TASKS as u64)
            .map(|i| driver.submit1(&work, i).unwrap())
            .collect();
        let (ready, _) = driver.wait(&futs, futs.len(), Duration::from_secs(120));
        let makespan = start.elapsed();
        assert_eq!(ready.len(), TASKS);

        let report = cluster.profile();
        let latency = report.scheduling_latency().snapshot();
        let (spills, placements, _) = cluster.global_stats();
        rows.push(vec![
            label.to_string(),
            fmt_duration(makespan),
            fmt_nanos(latency.p50()),
            fmt_nanos(latency.p99()),
            spills.to_string(),
            placements.to_string(),
        ]);
        cluster.shutdown();
    }
    print_table(
        "E8b: heavy load — 200 x 2 ms task storm on 4 nodes x 2 workers",
        &[
            "architecture",
            "makespan",
            "sched p50",
            "sched p99",
            "spills",
            "placements",
        ],
        &rows,
    );
    println!(
        "\n(the paper's §3.2.2 trade-off: local-only has the best light-load\n latency but collapses under storm (three nodes idle); centralized\n balances storms but taxes every task with head-node round trips;\n hybrid delivers both — local fast path, spillover under pressure.)"
    );
}
