//! E9 — R6 transparent fault tolerance: correctness and cost of lineage
//! replay under injected failures.
//!
//! Runs the §4.2 RL workload three times: failure-free, with a worker
//! killed mid-run, and with a whole node killed mid-run. All three must
//! produce the bit-identical final policy; the table reports the time
//! and replay overhead.
//!
//! Run: `cargo run -p rtml-bench --bin exp_fault --release`

use std::time::Duration;

use rtml_bench::{fmt_duration, print_table};
use rtml_common::ids::{NodeId, WorkerId};
use rtml_runtime::{Cluster, ClusterConfig, NodeConfig};
use rtml_workloads::rl::{self, RlConfig, RlFuncs};

fn config() -> RlConfig {
    RlConfig {
        rollouts: 16,
        frames_per_task: 20,
        frame_cost: Duration::from_millis(2), // 40 ms sim tasks
        iterations: 4,
        policy_kernel_cost: Duration::from_millis(2),
        ..RlConfig::default()
    }
}

fn cluster() -> Cluster {
    Cluster::start(ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(4), NodeConfig::cpu_only(4)],
        // Spill eagerly so both nodes hold work and results — the node
        // kill then destroys objects the driver still needs.
        spill: rtml_sched::SpillMode::Hybrid { queue_threshold: 1 },
        ..ClusterConfig::default()
    })
    .unwrap()
}

enum Failure {
    None,
    Worker,
    Node,
}

fn run_with(failure: Failure) -> (rtml_workloads::rl::RlResult, u64, usize) {
    let cluster = cluster();
    let funcs = RlFuncs::register(&cluster);
    let driver = cluster.driver();
    let cfg = config();

    let result = std::thread::scope(|scope| {
        let run = scope.spawn(|| rl::run_rtml(&cfg, &driver, &funcs, false).unwrap());
        match failure {
            Failure::None => {}
            Failure::Worker => {
                // Mid sim-stage: every worker is busy with a 40 ms task.
                std::thread::sleep(Duration::from_millis(60));
                let _ = cluster.kill_worker(WorkerId::new(NodeId(0), 1));
            }
            Failure::Node => {
                std::thread::sleep(Duration::from_millis(60));
                let _ = cluster.kill_node(NodeId(1));
            }
        }
        run.join().expect("run thread")
    });
    let reconstructions = cluster.reconstructions();
    let report = cluster.profile();
    let lost = report.workers_lost + report.nodes_lost;
    if std::env::var("RTML_DEBUG").is_ok() {
        let (spills, placements, parked) = cluster.global_stats();
        eprintln!(
            "debug: spills={spills} placements={placements} parked={parked} replays={reconstructions} lost={lost}"
        );
    }
    cluster.shutdown();
    (result, reconstructions, lost)
}

fn main() {
    let (clean, _, _) = run_with(Failure::None);
    let (worker_kill, worker_replays, _) = run_with(Failure::Worker);
    let (node_kill, node_replays, _) = run_with(Failure::Node);

    assert_eq!(
        clean.checksum, worker_kill.checksum,
        "worker-kill run diverged"
    );
    assert_eq!(clean.checksum, node_kill.checksum, "node-kill run diverged");

    let overhead = |wall: Duration| {
        format!(
            "{:+.0}%",
            (wall.as_secs_f64() / clean.wall.as_secs_f64() - 1.0) * 100.0
        )
    };
    let rows = vec![
        vec![
            "no failures".into(),
            fmt_duration(clean.wall),
            "-".into(),
            "0".into(),
            format!("{:016x}", clean.checksum),
        ],
        vec![
            "worker killed mid-run".into(),
            fmt_duration(worker_kill.wall),
            overhead(worker_kill.wall),
            worker_replays.to_string(),
            format!("{:016x}", worker_kill.checksum),
        ],
        vec![
            "node killed mid-run".into(),
            fmt_duration(node_kill.wall),
            overhead(node_kill.wall),
            node_replays.to_string(),
            format!("{:016x}", node_kill.checksum),
        ],
    ];
    print_table(
        "E9: fault tolerance — RL workload (4 iters x 16 rollouts of 40 ms), failures at t=60 ms",
        &[
            "scenario",
            "wall",
            "overhead",
            "lineage replays",
            "final policy checksum",
        ],
        &rows,
    );
    println!(
        "\n(all three checksums identical: deterministic lineage replay makes\n failures invisible to the application — the paper's R6. Replay\n count shows the recovery work actually performed.)"
    );
}
