//! E11: cluster-scale macro-benchmark for the sharded global scheduler.
//!
//! Drives a 32–64 node cluster (default 32, `RTML_SCALE_NODES`
//! overrides, capped at 64) through a **mixed** workload — a wide
//! fan-out, dependency chains, and a cross-node tree reduction — with
//! an aggressive spill threshold so placement genuinely flows through
//! the K global-scheduler shards (`RTML_SCALE_SHARDS`, default 4).
//!
//! The run is **self-asserting**: every produced value is checked
//! exactly (fan-out squares, chain increments, the reduction total),
//! every scheduler shard must have placed work, and the executed-task
//! events must span a healthy fraction of the cluster. A wrong value,
//! an idle shard, or a wedged node fails the process — CI runs this as
//! a correctness gate, not just a stopwatch.
//!
//! Two separate quantities are reported (and self-asserted), because
//! they answer different questions:
//!
//! - **placement throughput**: tasks/sec from first submit until every
//!   task holds an explicit scheduler state (`Queued`/`Spilled`/...) —
//!   the rate at which the submission, spill, and sharded-placement
//!   machinery moves tasks. This is the scheduler trend line.
//! - **end-to-end makespan**: wall clock until every result value has
//!   been fetched and verified. Dominated by task *execution* and
//!   blocking `get`s on 1-worker nodes — useful as a regression canary,
//!   useless as a scheduler throughput number (the old conflated
//!   figure, ~628 tasks/s over 1279 tasks, was exactly this trap).
//!
//! Results land in `BENCH_scale.json` so CI can track scale throughput
//! mechanically. `RTML_SCALE_FANOUT` (default 512) scales the task
//! budget for smoke runs.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use rtml_common::event::EventKind;
use rtml_runtime::{Cluster, ClusterConfig, NodeConfig};
use rtml_sched::SpillMode;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let nodes = env_usize("RTML_SCALE_NODES", 32).clamp(2, 64);
    let shards = env_usize("RTML_SCALE_SHARDS", 4).max(1);
    let fanout = env_usize("RTML_SCALE_FANOUT", 512).max(8) as i64;
    let chains = 32usize;
    let chain_depth = 8usize;

    let cluster = Cluster::start(
        ClusterConfig {
            nodes: (0..nodes).map(|_| NodeConfig::cpu_only(1)).collect(),
            spill: SpillMode::Hybrid { queue_threshold: 2 },
            ..ClusterConfig::default()
        }
        .with_global_shards(shards),
    )
    .unwrap();
    let square = cluster.register_fn1("scale_square", |x: i64| Ok(x * x));
    let inc = cluster.register_fn1("scale_inc", |x: i64| Ok(x + 1));
    let add = cluster.register_fn2("scale_add", |a: i64, b: i64| Ok(a + b));
    let driver = cluster.driver();

    let start = Instant::now();

    // Wave 1 — wide fan-out: `fanout` independent squares, batched.
    let squares = driver.submit_many(&square, 0..fanout).unwrap();

    // Wave 2 — dependency chains: `chains` chains of `chain_depth`
    // increments each, rooted at distinct starts.
    let chain_heads: Vec<_> = (0..chains as i64)
        .map(|c| {
            let mut fut = driver.submit1(&inc, c * 100).unwrap();
            for _ in 1..chain_depth {
                fut = driver.submit1(&inc, &fut).unwrap();
            }
            fut
        })
        .collect();

    // Wave 3 — tree reduction over the fan-out results: pairwise adds
    // until one total remains, forcing cross-node dependency fetches.
    let mut layer = squares.clone();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut iter = layer.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(driver.submit2(&add, &a, &b).unwrap()),
                None => next.push(a),
            }
        }
        layer = next;
    }

    let tasks_total = fanout as usize + chains * chain_depth + (fanout as usize - 1);

    // ---- placement barrier -----------------------------------------
    // Every task was submitted above (dependency-gated tasks included:
    // submission never blocks on execution), so placement is complete
    // when no task is still in the implicit `Submitted` state — each
    // one holds an explicit `Queued`/`Spilled`/`Running`/... record
    // from some scheduler. The census is a full control-plane scan, so
    // poll it coarsely.
    let placement_deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let census = driver.services().tasks.state_census();
        if census.submitted == 0 && census.total() >= tasks_total {
            break;
        }
        assert!(
            Instant::now() < placement_deadline,
            "placement never completed: {census:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let placement_elapsed = start.elapsed();

    // ---- self-assertions -------------------------------------------
    for (i, fut) in squares.iter().enumerate() {
        let i = i as i64;
        assert_eq!(driver.get(fut).unwrap(), i * i, "square {i}");
    }
    for (c, fut) in chain_heads.iter().enumerate() {
        let expect = c as i64 * 100 + chain_depth as i64;
        assert_eq!(driver.get(fut).unwrap(), expect, "chain {c}");
    }
    let total = driver.get(&layer[0]).unwrap();
    let expect: i64 = (0..fanout).map(|i| i * i).sum();
    assert_eq!(total, expect, "tree reduction total");
    let elapsed = start.elapsed();

    let placement_rate = tasks_total as f64 / placement_elapsed.as_secs_f64();
    let rate = tasks_total as f64 / elapsed.as_secs_f64();
    assert!(
        placement_elapsed <= elapsed,
        "placement cannot finish after the makespan"
    );
    assert!(
        placement_rate >= rate,
        "placement throughput ({placement_rate:.0}/s) must not undercut the \
         execution-dominated end-to-end rate ({rate:.0}/s)"
    );

    let (spills, placements, _parked) = cluster.global_stats();
    assert!(spills > 0, "spill-heavy run never reached the shards");
    let shard_placements: Vec<u64> = cluster
        .global_shard_stats()
        .iter()
        .map(|(_, p, _)| *p)
        .collect();
    assert_eq!(shard_placements.len(), shards);
    for (shard, &placed) in shard_placements.iter().enumerate() {
        assert!(placed > 0, "shard {shard} placed nothing");
    }
    assert_eq!(shard_placements.iter().sum::<u64>(), placements);

    // Executed tasks must span a healthy fraction of the cluster.
    let active: BTreeSet<u32> = driver
        .services()
        .events
        .read_all()
        .into_iter()
        .filter_map(|e| match e.kind {
            EventKind::TaskFinished { worker, .. } => Some(worker.node.0),
            _ => None,
        })
        .collect();
    assert!(
        active.len() >= nodes / 4,
        "only {} of {nodes} nodes executed work",
        active.len()
    );

    println!("== E11: sharded-scheduler scale (mixed workload) ==");
    println!("nodes              {nodes}");
    println!("global shards      {shards}");
    println!("tasks              {tasks_total}");
    println!(
        "placement          {:.2} ms ({placement_rate:.0} tasks/sec)",
        placement_elapsed.as_secs_f64() * 1e3
    );
    println!(
        "e2e makespan       {:.2} ms ({rate:.0} tasks/sec, execution-dominated)",
        elapsed.as_secs_f64() * 1e3
    );
    println!("spills             {spills}");
    println!("placements/shard   {shard_placements:?}");
    println!("active nodes       {}", active.len());
    println!("\nall values verified; every shard placed; cluster spread OK");

    let json = format!(
        "{{\n  \"nodes\": {nodes},\n  \"global_shards\": {shards},\n  \
         \"tasks_total\": {tasks_total},\n  \
         \"placement_ms\": {:.2},\n  \
         \"placement_tasks_per_sec\": {placement_rate:.2},\n  \
         \"makespan_ms\": {:.2},\n  \
         \"e2e_tasks_per_sec\": {rate:.2},\n  \"spills\": {spills},\n  \
         \"placements_per_shard\": {shard_placements:?},\n  \
         \"active_nodes\": {}\n}}\n",
        placement_elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3,
        active.len(),
    );
    let path = "BENCH_scale.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
    cluster.shutdown();
}
