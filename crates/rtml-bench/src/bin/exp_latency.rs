//! E1 — §4.1 latency microbenchmarks.
//!
//! Paper's numbers: task creation ~35 µs; result retrieval ~110 µs;
//! end-to-end empty task ~290 µs locally scheduled, ~1 ms remote.
//!
//! Run: `cargo run -p rtml-bench --bin exp_latency --release`

use std::time::{Duration, Instant};

use rtml_bench::{fmt_duration, print_table, DurationStats};
use rtml_common::resources::Resources;
use rtml_runtime::{Cluster, ClusterConfig, NodeConfig, TaskOptions};

const WARMUP: usize = 50;
const SAMPLES: usize = 500;

fn main() {
    let mut rows = Vec::new();

    // --- task creation: submit returns a future immediately ----------
    {
        let cluster = Cluster::start(ClusterConfig::local(1, 2).without_event_log()).unwrap();
        let nop = cluster.register_fn0("nop", || Ok(0u64));
        let driver = cluster.driver();
        let mut samples = Vec::with_capacity(SAMPLES);
        for i in 0..WARMUP + SAMPLES {
            let start = Instant::now();
            let fut = driver.submit0(&nop).unwrap();
            let elapsed = start.elapsed();
            if i >= WARMUP {
                samples.push(elapsed);
            }
            let _ = driver.get(&fut); // Drain so queues stay short.
        }
        rows.push(stat_row("task creation (submit)", "35 µs", &samples));
        cluster.shutdown();
    }

    // --- result retrieval: get of an already-computed local object ---
    {
        let cluster = Cluster::start(ClusterConfig::local(1, 2).without_event_log()).unwrap();
        let nop = cluster.register_fn0("nop2", || Ok(0u64));
        let driver = cluster.driver();
        let mut samples = Vec::with_capacity(SAMPLES);
        for i in 0..WARMUP + SAMPLES {
            let fut = driver.submit0(&nop).unwrap();
            let _ = driver.get(&fut).unwrap(); // Ensure sealed + local.
            let start = Instant::now();
            let _ = driver.get(&fut).unwrap();
            let elapsed = start.elapsed();
            if i >= WARMUP {
                samples.push(elapsed);
            }
        }
        rows.push(stat_row("result retrieval (get)", "110 µs", &samples));
        cluster.shutdown();
    }

    // --- end-to-end, locally scheduled --------------------------------
    {
        let cluster = Cluster::start(ClusterConfig::local(1, 2).without_event_log()).unwrap();
        let nop = cluster.register_fn0("nop3", || Ok(0u64));
        let driver = cluster.driver();
        let mut samples = Vec::with_capacity(SAMPLES);
        for i in 0..WARMUP + SAMPLES {
            let start = Instant::now();
            let fut = driver.submit0(&nop).unwrap();
            let _ = driver.get(&fut).unwrap();
            let elapsed = start.elapsed();
            if i >= WARMUP {
                samples.push(elapsed);
            }
        }
        rows.push(stat_row("end-to-end, local", "290 µs", &samples));
        cluster.shutdown();
    }

    // --- end-to-end, remotely scheduled -------------------------------
    // The task demands a resource only node 1 has, so it must travel:
    // spill -> global placement -> remote execution -> result fetch,
    // each hop paying the fabric's 100 µs.
    {
        let config = ClusterConfig {
            nodes: vec![
                NodeConfig::cpu_only(2),
                NodeConfig::cpu_only(2).with_custom("pin", 1.0),
            ],
            ..ClusterConfig::default()
        }
        .without_event_log();
        let cluster = Cluster::start(config).unwrap();
        let nop = cluster.register_fn0("nop4", || Ok(0u64));
        let driver = cluster.driver();
        let opts = TaskOptions::resources(Resources::cpu(1.0).with_custom("pin", 1.0));
        let mut samples = Vec::with_capacity(SAMPLES);
        for i in 0..WARMUP + SAMPLES {
            let start = Instant::now();
            let fut = driver.submit0_opts(&nop, opts.clone()).unwrap();
            let _ = driver.get(&fut).unwrap();
            let elapsed = start.elapsed();
            if i >= WARMUP {
                samples.push(elapsed);
            }
        }
        rows.push(stat_row("end-to-end, remote", "1 ms", &samples));
        cluster.shutdown();
    }

    print_table(
        "E1: latency microbenchmarks (paper §4.1)",
        &["metric", "paper", "mean", "p50", "p99", "max"],
        &rows,
    );
    println!(
        "\n(cross-node fabric latency: 100 µs per hop; remote path = placement hop\n + result-fetch round trip, matching the paper's local/remote gap)"
    );
}

fn stat_row(metric: &str, paper: &str, samples: &[Duration]) -> Vec<String> {
    let stats = DurationStats::from_samples(samples);
    vec![
        metric.to_string(),
        paper.to_string(),
        fmt_duration(stats.mean),
        fmt_duration(stats.p50),
        fmt_duration(stats.p99),
        fmt_duration(stats.max),
    ]
}
