//! E3 — Figure 2a: heterogeneous streaming sensor fusion.
//!
//! Measures per-window end-to-end latency and total makespan for the
//! batch (BSP, one window at a time) and dataflow (rtml, overlapped
//! windows) processing models.
//!
//! Run: `cargo run -p rtml-bench --bin exp_sensors --release`

use std::time::Duration;

use rtml_baselines::SerialEngine;
use rtml_bench::{fmt_duration, print_table, DurationStats};
use rtml_runtime::{Cluster, ClusterConfig};
use rtml_workloads::sensors::{self, SensorConfig, SensorFuncs};

fn main() {
    let mut rows = Vec::new();
    for sensors_n in [3usize, 6, 9] {
        let config = SensorConfig {
            sensors: sensors_n,
            base_cost: Duration::from_millis(1),
            fuse_cost: Duration::from_micros(300),
            windows: 12,
            ..SensorConfig::default()
        };

        let bsp = sensors::run_bsp(&config, &SerialEngine);

        let cluster = Cluster::start(ClusterConfig::local(2, 6)).unwrap();
        let funcs = SensorFuncs::register(&cluster, config.fuse_cost);
        let driver = cluster.driver();
        let rtml = sensors::run_rtml(&config, &driver, &funcs).unwrap();
        cluster.shutdown();

        assert_eq!(bsp.checksum, rtml.checksum, "fusion diverged");

        let bsp_stats = DurationStats::from_samples(&bsp.window_latencies);
        let rtml_stats = DurationStats::from_samples(&rtml.window_latencies);
        rows.push(vec![
            format!("{sensors_n} sensors, batch"),
            fmt_duration(bsp_stats.mean),
            fmt_duration(bsp_stats.p99),
            fmt_duration(bsp.wall),
        ]);
        rows.push(vec![
            format!("{sensors_n} sensors, rtml stream"),
            fmt_duration(rtml_stats.mean),
            fmt_duration(rtml_stats.p99),
            fmt_duration(rtml.wall),
        ]);
    }
    print_table(
        "E3: sensor fusion (Fig. 2a) — 12 windows, heterogeneous sensor costs (1..n ms)",
        &[
            "configuration",
            "mean window latency",
            "p99 window latency",
            "makespan",
        ],
        &rows,
    );
    println!(
        "\n(batch = barrier per window, windows strictly sequential;\n rtml  = all windows' task graphs in flight, fusion chains as dataflow.\n rtml wins makespan via overlap; per-window latency includes queueing\n behind earlier windows when all windows arrive at once.)"
    );
}
