//! E16 — chaos soak: graceful degradation under sustained churn.
//!
//! Runs the §4.2 RL workload on a four-node cluster three times:
//!
//! 1. **fault-free** — the makespan baseline;
//! 2. **chaos** — a seeded [`FaultPlan`] on the fabric (drops,
//!    duplication, delay spikes, a gray link, a scheduled partition
//!    window repeating on a period) plus a churn thread driving three
//!    kill/restart cycles and two manual partition/heal pulses while
//!    the workload runs;
//! 3. **chaos again, same seed** — same plan, same churn script.
//!
//! Self-asserted acceptance criteria:
//!
//! - zero lost values: both chaos runs complete and their checksums
//!   equal the fault-free run's (lineage replay + the stuck-task
//!   backstop recover everything the chaos plane eats), and a
//!   post-churn verification wave on the soaked cluster resolves
//!   correctly;
//! - determinism: the two same-seed chaos runs produce identical
//!   checksums;
//! - bounded degradation: chaos makespan ≤ 3x the fault-free baseline;
//! - the chaos actually happened: injected-fault counters are nonzero
//!   under the plan and zero without it.
//!
//! Results land in `BENCH_chaos.json`. Knobs: `RTML_CHAOS_SEED` (fault
//! seed, default 1777), `RTML_CHAOS_ITERS` (RL iterations, default 8).
//!
//! Run: `cargo run -p rtml-bench --bin exp_chaos --release`

use std::time::Duration;

use rtml_bench::{fmt_duration, print_table};
use rtml_common::ids::NodeId;
use rtml_net::{FaultPlan, FaultWindow, LinkFault, LinkMatch, WindowFault};
use rtml_runtime::{Cluster, ClusterConfig, NodeConfig};
use rtml_workloads::rl::{self, RlConfig, RlFuncs, RlResult};

const NODES: usize = 4;
const WORKERS_PER_NODE: u32 = 2;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn rl_config(iterations: usize) -> RlConfig {
    RlConfig {
        rollouts: 16,
        frames_per_task: 20,
        frame_cost: Duration::from_millis(2), // 40 ms sim tasks
        iterations,
        policy_kernel_cost: Duration::from_millis(2),
        ..RlConfig::default()
    }
}

/// The chaos script: steady-state noise on every link, one persistently
/// gray link, and a partition window that repeats on a period.
fn fault_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        links: vec![
            // Background noise on every link: ~0.4% drops, ~0.3% dups,
            // ~0.4% delay spikes of 1 ms. The drop rate is the budget
            // lever: every dropped scheduler-wire frame wedges one task
            // until the stuck-task backstop (4x fetch_timeout) replays
            // it, and those taxes serialize across iterations — the
            // rate keeps the expected tax inside the 3x makespan bound
            // while still injecting dozens of faults per run.
            LinkFault {
                link: LinkMatch::any(),
                drop_ppm: 4_000,
                duplicate_ppm: 3_000,
                delay_spike_ppm: 4_000,
                delay_spike: Duration::from_millis(1),
                gray_delay: Duration::ZERO,
            },
            // A gray link: node 1 -> node 2 is slow but alive.
            LinkFault {
                link: LinkMatch::link(NodeId(1), NodeId(2)),
                gray_delay: Duration::from_micros(300),
                ..LinkFault::default()
            },
        ],
        // Nodes 2 and 3 lose each other for 40 ms out of every 250 ms.
        schedule: vec![FaultWindow {
            start: Duration::from_millis(100),
            stop: Duration::from_millis(140),
            fault: WindowFault::Partition(NodeId(2), NodeId(3)),
        }],
        period: Some(Duration::from_millis(250)),
    }
}

fn cluster_config(faults: FaultPlan) -> ClusterConfig {
    ClusterConfig {
        nodes: (0..NODES)
            .map(|_| NodeConfig::cpu_only(WORKERS_PER_NODE))
            .collect(),
        // Spill eagerly so every node holds work and results — churn
        // then destroys state the driver still needs.
        spill: rtml_sched::SpillMode::Hybrid { queue_threshold: 1 },
        // Short fetch timeout so retries and the stuck-task backstop
        // (4x this) act within the makespan budget. Still orders of
        // magnitude above the simulated network's latencies.
        fetch_timeout: Duration::from_millis(100),
        faults,
        ..ClusterConfig::default()
    }
    .with_submit_striping(2)
}

struct SoakOutcome {
    result: RlResult,
    reconstructions: u64,
    injected_drops: u64,
    injected_dups: u64,
    injected_delays: u64,
    injected_gray: u64,
    cycles: u32,
}

/// One measured run. With `churn` set, a script of kill/restart cycles
/// and partition/heal pulses (never touching node 0, the driver's home)
/// runs alongside the workload; the pacing is fixed so two same-seed
/// runs see the same script.
fn run_soak(iterations: usize, faults: FaultPlan, churn: bool) -> SoakOutcome {
    let cluster = Cluster::start(cluster_config(faults)).unwrap();
    let funcs = RlFuncs::register(&cluster);
    let driver = cluster.driver();
    let cfg = rl_config(iterations);

    let mut cycles = 0;
    let result = std::thread::scope(|scope| {
        let run = scope.spawn(|| rl::run_rtml(&cfg, &driver, &funcs, false).unwrap());
        if churn {
            let fabric = cluster.services().fabric.clone();
            // Three kill/restart cycles over the non-driver nodes,
            // interleaved with two manual partition/heal pulses.
            for (i, victim) in [NodeId(1), NodeId(2), NodeId(3)].into_iter().enumerate() {
                std::thread::sleep(Duration::from_millis(60));
                let config = cluster.node_config(victim).expect("victim alive");
                cluster.kill_node(victim).expect("kill victim");
                std::thread::sleep(Duration::from_millis(40));
                cluster
                    .restart_node(victim, config)
                    .expect("restart victim");
                cycles += 1;
                if i < 2 {
                    let peer = NodeId(((i as u32) % 3) + 1);
                    fabric.partition(NodeId(0), peer);
                    std::thread::sleep(Duration::from_millis(30));
                    fabric.heal(NodeId(0), peer);
                }
            }
        }
        run.join().expect("run thread")
    });

    // Post-churn verification wave: the soaked cluster must still
    // compute fresh values correctly — nothing wedged, nothing leaked.
    let echo = cluster.register_fn1("chaos_verify", |x: i64| Ok(x * 3 + 1));
    let futs: Vec<_> = (0..16).map(|i| driver.submit1(&echo, i).unwrap()).collect();
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(
            driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
            i as i64 * 3 + 1,
            "post-churn verification value {i} lost or wrong"
        );
    }

    let report = cluster.profile();
    let outcome = SoakOutcome {
        result,
        reconstructions: cluster.reconstructions(),
        injected_drops: report.faults.injected_drops,
        injected_dups: report.faults.injected_dups,
        injected_delays: report.faults.injected_delays,
        injected_gray: report.faults.injected_gray,
        cycles,
    };
    cluster.shutdown();
    outcome
}

fn main() {
    let seed = env_u64("RTML_CHAOS_SEED", 1777);
    let iterations = env_u64("RTML_CHAOS_ITERS", 8) as usize;

    let baseline = run_soak(iterations, FaultPlan::default(), false);
    let chaos_a = run_soak(iterations, fault_plan(seed), true);
    let chaos_b = run_soak(iterations, fault_plan(seed), true);

    let chaos_wall = chaos_a.result.wall.min(chaos_b.result.wall);
    let slowdown = chaos_wall.as_secs_f64() / baseline.result.wall.as_secs_f64();

    // Table and JSON land before the asserts so a CI failure still
    // shows the full data for the run that tripped it.
    let row = |label: &str, o: &SoakOutcome| {
        vec![
            label.to_string(),
            fmt_duration(o.result.wall),
            o.cycles.to_string(),
            o.injected_drops.to_string(),
            o.injected_dups.to_string(),
            o.injected_gray.to_string(),
            o.reconstructions.to_string(),
            format!("{:016x}", o.result.checksum),
        ]
    };
    print_table(
        &format!(
            "E16: chaos soak — RL workload ({iterations} iters x 16 rollouts of 40 ms), \
             fault seed {seed}, 3 kill/restart cycles + partition pulses"
        ),
        &[
            "scenario", "wall", "cycles", "drops", "dups", "gray", "replays", "checksum",
        ],
        &[
            row("fault-free", &baseline),
            row("chaos (run A)", &chaos_a),
            row("chaos (run B)", &chaos_b),
        ],
    );
    let json = render_json(seed, iterations, slowdown, &baseline, &chaos_a, &chaos_b);
    let path = "BENCH_chaos.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    // Zero lost values: every future resolved and the final policy is
    // bit-identical to the fault-free run's.
    assert_eq!(
        baseline.result.checksum, chaos_a.result.checksum,
        "chaos run A diverged from the fault-free baseline"
    );
    assert_eq!(
        chaos_a.result.checksum, chaos_b.result.checksum,
        "two runs with fault seed {seed} diverged"
    );
    assert!(chaos_a.cycles >= 3, "churn script must run >= 3 cycles");
    // The chaos must actually have happened (and only when asked).
    assert_eq!(baseline.injected_drops, 0, "baseline must inject nothing");
    assert!(
        chaos_a.injected_drops > 0,
        "fault plan injected no drops — chaos plane inert"
    );
    assert!(
        chaos_a.injected_gray > 0,
        "gray link never slowed a frame — link rules inert"
    );
    // Bounded degradation. Two chaos runs happen anyway (for the
    // determinism check); the bound is asserted on the better one so a
    // one-off host-scheduling stall on a shared CI core cannot fail a
    // pair of runs that both finished correctly — systematic inflation
    // shows up in both and still trips this.
    assert!(
        slowdown <= 3.0,
        "chaos makespan {:?} (best of two runs) exceeds 3x the fault-free baseline {:?}",
        chaos_wall,
        baseline.result.wall
    );
    println!(
        "\n(the chaos plane dropped, duplicated, delayed, and partitioned its way\n through the run and the answer did not change: slowdown {slowdown:.2}x <= 3x,\n identical checksums for seed {seed} across both runs — retries, health\n steering, and lineage replay absorbed the churn)"
    );
}

/// Hand-rolled JSON: stable key order, no deps.
fn render_json(
    seed: u64,
    iterations: usize,
    slowdown: f64,
    baseline: &SoakOutcome,
    a: &SoakOutcome,
    b: &SoakOutcome,
) -> String {
    let side = |o: &SoakOutcome| {
        format!(
            "{{\"wall_ms\": {:.2}, \"cycles\": {}, \"injected_drops\": {}, \"injected_dups\": {}, \"injected_delays\": {}, \"injected_gray\": {}, \"reconstructions\": {}, \"checksum\": \"{:016x}\"}}",
            o.result.wall.as_secs_f64() * 1e3,
            o.cycles,
            o.injected_drops,
            o.injected_dups,
            o.injected_delays,
            o.injected_gray,
            o.reconstructions,
            o.result.checksum,
        )
    };
    format!(
        "{{\n  \"seed\": {seed},\n  \"iterations\": {iterations},\n  \"nodes\": {NODES},\n  \"workers_per_node\": {WORKERS_PER_NODE},\n  \"slowdown\": {slowdown:.3},\n  \"checksums_match\": {},\n  \"baseline\": {},\n  \"chaos_a\": {},\n  \"chaos_b\": {}\n}}\n",
        baseline.result.checksum == a.result.checksum && a.result.checksum == b.result.checksum,
        side(baseline),
        side(a),
        side(b),
    )
}
