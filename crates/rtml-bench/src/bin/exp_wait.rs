//! E6 — the paper's `wait` pipelining remark (§4.2): "using the wait
//! primitive, we can adapt the example to process the simulation tasks
//! in the order that they finish so as to better pipeline the simulation
//! execution with the action computations on the GPU."
//!
//! Sweeps the straggler severity: one of 8 rollouts runs k× slower.
//! Batched waits for all sims before any GPU scoring; pipelined scores
//! each sim the moment it completes.
//!
//! Run: `cargo run -p rtml-bench --bin exp_wait --release`

use std::time::Duration;

use rtml_bench::{fmt_duration, fmt_ratio, print_table};
use rtml_runtime::{Cluster, ClusterConfig, NodeConfig};
use rtml_workloads::rl::{self, RlConfig, RlFuncs};

fn main() {
    // One GPU in the whole cluster: scoring tasks serialize on it, so
    // overlapping them with the simulation tail is exactly the paper's
    // pipelining opportunity.
    let cluster = Cluster::start(ClusterConfig {
        nodes: vec![
            NodeConfig::cpu_only(8).with_gpus(1.0),
            NodeConfig::cpu_only(8),
        ],
        ..ClusterConfig::default()
    })
    .unwrap();
    let funcs = RlFuncs::register(&cluster);
    let driver = cluster.driver();

    let mut rows = Vec::new();
    for straggler in [1.0f64, 2.0, 5.0, 10.0] {
        let config = RlConfig {
            rollouts: 16,
            frames_per_task: 5,
            frame_cost: Duration::from_millis(1),
            policy_kernel_cost: Duration::from_millis(4),
            gpu_speedup: 1.0, // the kernel cost stays visible on the GPU
            straggler_every: 16,
            straggler_factor: straggler,
            ..RlConfig::default()
        };
        let (batched_value, batched_wall) =
            rl::run_rtml_batched(&config, &driver, &funcs, true).unwrap();
        let (pipelined_value, pipelined_wall) =
            rl::run_rtml_pipelined(&config, &driver, &funcs, true).unwrap();
        assert_eq!(batched_value.to_bits(), pipelined_value.to_bits());
        rows.push(vec![
            format!("{straggler}x straggler"),
            fmt_duration(batched_wall),
            fmt_duration(pipelined_wall),
            fmt_ratio(batched_wall.as_secs_f64() / pipelined_wall.as_secs_f64()),
        ]);
    }
    cluster.shutdown();

    print_table(
        "E6: wait-driven pipelining — 16 sims (~5 ms) + 4 ms GPU scoring each (1 GPU), 1 straggler",
        &[
            "straggler severity",
            "batched (get all)",
            "pipelined (wait)",
            "improvement",
        ],
        &rows,
    );
    println!(
        "\n(batched: all scoring waits for the straggler. pipelined: 15 fast\n sims are fully scored before the straggler finishes, so its tail\n hides the GPU work — results stay bit-identical.)"
    );
}
