//! E13 — the steal plane: skewed-burst makespan (R2/R3).
//!
//! The paper's R2/R3 (millisecond scheduling of millions of dynamically
//! created tasks) hold in aggregate only if no core idles while a
//! peer's ready queue is deep. This experiment builds the worst case
//! push-based balancing cannot fix: a burst of tasks all submitted to
//! node 0 under `SpillMode::NeverSpill`, so spillover — decided once,
//! at ingest — never moves anything. With stealing **off**, the burst
//! drains serially on node 0's two workers while six other cores idle.
//! With stealing **on**, the idle nodes' local schedulers see node 0's
//! kv-published backlog, pull ready tasks in batches over the fabric,
//! and the burst spreads to every core.
//!
//! Locality: each task consumes one of six 32 KiB blocks that live
//! *only* on the thief nodes, so the victim's grant scoring (resident-
//! dependency bytes on the thief, one batched `get_many` sweep per
//! request) should hand tasks to the node that already holds their
//! input — measured as the locality-hit ratio.
//!
//! Self-asserted structural wins (the acceptance criteria):
//! - tasks stolen > 0, and every steal moved as a batch;
//! - makespan improves ≥ `MIN_SPEEDUP`x vs stealing off;
//! - per-node busy time tightens (no node hogs the burst);
//! - checksums identical on/off — stealing moves *where tasks run*,
//!   never values.
//!
//! Run: `cargo run -p rtml-bench --bin exp_steal --release`
//!
//! Results land in `BENCH_steal.json`. `RTML_STEAL_TASKS` overrides the
//! burst size (CI smoke uses a small value).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rtml_bench::print_table;
use rtml_common::ids::NodeId;
use rtml_net::LatencyModel;
use rtml_runtime::{Cluster, ClusterConfig, NodeConfig};
use rtml_sched::{SpillMode, StealConfig};

/// Cluster size: one victim (node 0, the burst target) + three thieves.
const NODES: usize = 4;
const WORKERS_PER_NODE: u32 = 2;
/// Simulated per-task work (threads sleep, so this parallelizes across
/// workers regardless of host core count).
const TASK_COST: Duration = Duration::from_millis(4);
/// Dependency blocks, seeded round-robin onto the thief nodes only.
const BLOCKS: usize = 6;
const BLOCK_BYTES: usize = 32 * 1024;
const DEFAULT_TASKS: usize = 64;
/// Makespan must improve at least this much with stealing on.
const MIN_SPEEDUP: f64 = 1.5;
/// With stealing on, no node may carry more than this share of the
/// total busy time (off devolves to 1.0: everything runs on node 0).
const MAX_BUSY_SHARE: f64 = 0.6;

fn fnv(bytes: &[u8], mut state: u64) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

struct RunResult {
    stealing: bool,
    makespan: Duration,
    checksum: u64,
    attempts: u64,
    grants: u64,
    empty_grants: u64,
    timeouts: u64,
    stolen: u64,
    locality_hits: u64,
    locality_rate: f64,
    steal_to_run_p50_us: u64,
    busy_micros: BTreeMap<u32, u64>,
}

impl RunResult {
    fn max_busy_share(&self) -> f64 {
        let total: u64 = self.busy_micros.values().sum();
        let max = self.busy_micros.values().copied().max().unwrap_or(0);
        if total == 0 {
            return 0.0;
        }
        max as f64 / total as f64
    }
}

fn run(stealing_on: bool, tasks: usize) -> RunResult {
    let stealing = if stealing_on {
        StealConfig {
            enabled: true,
            min_backlog: 2,
            max_tasks: 8,
            interval: Duration::from_millis(1),
            timeout: Duration::from_millis(100),
            hint_objects: 64,
            ..StealConfig::default()
        }
    } else {
        StealConfig::disabled()
    };
    let cluster = Cluster::start(
        ClusterConfig {
            nodes: (0..NODES)
                .map(|_| NodeConfig::cpu_only(WORKERS_PER_NODE))
                .collect(),
            // The skew trap: the burst lands on node 0 and push-based
            // balancing is forbidden from touching it.
            spill: SpillMode::NeverSpill,
            ..ClusterConfig::default()
        }
        .with_latency(LatencyModel::Constant(Duration::from_micros(200)))
        .with_stealing(stealing),
    )
    .unwrap();
    let services = cluster.services().clone();
    // The burst is gated behind a prerequisite task so all of it turns
    // *ready* at one instant — the deep queue a real skewed burst
    // presents — instead of trickling in at driver-submission speed.
    let gate = cluster.register_fn0("steal_gate", || {
        std::thread::sleep(Duration::from_millis(10));
        Ok(1u8)
    });
    let work = cluster.register_fn3("steal_work", move |i: u64, block: Vec<u8>, _gate: u8| {
        std::thread::sleep(TASK_COST);
        let out: Vec<u8> = block.iter().take(32).map(|&b| b ^ (i as u8)).collect();
        Ok(out)
    });
    let driver = cluster.driver();

    // Seed the dependency blocks, then migrate each so it lives ONLY on
    // a thief node (1 + d % 3): the burst's inputs are all remote to
    // the victim, and each thief already holds a third of them.
    let blocks: Vec<_> = (0..BLOCKS)
        .map(|d| {
            let payload: Vec<u8> = (0..BLOCK_BYTES)
                .map(|i| ((i + d * 31) % 251) as u8)
                .collect();
            let fut = driver.put(&payload).unwrap();
            let target = NodeId(1 + (d as u32) % (NODES as u32 - 1));
            let raw = services.store(NodeId(0)).unwrap().get(fut.id()).unwrap();
            services
                .store(target)
                .unwrap()
                .put(fut.id(), raw.clone())
                .unwrap();
            services
                .objects
                .add_location(fut.id(), target, raw.len() as u64);
            services.store(NodeId(0)).unwrap().delete(fut.id());
            services.objects.remove_location(fut.id(), NodeId(0));
            fut
        })
        .collect();

    let started = Instant::now();
    let open = driver.submit0(&gate).unwrap();
    let futs: Vec<_> = (0..tasks as u64)
        .map(|i| {
            driver
                .submit3(&work, i, &blocks[i as usize % BLOCKS], &open)
                .unwrap()
        })
        .collect();
    let results = driver.get_many(&futs).unwrap();
    let makespan = started.elapsed();

    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    for result in &results {
        checksum = fnv(result, checksum);
    }

    let report = cluster.profile();
    let mut busy_micros: BTreeMap<u32, u64> = BTreeMap::new();
    for task in &report.tasks {
        if let (Some(worker), Some(micros)) = (task.worker, task.exec_micros) {
            *busy_micros.entry(worker.node.0).or_insert(0) += micros;
        }
    }
    let steal_to_run_p50_us = report.steal_to_run.snapshot().p50() / 1_000;
    let steal = report.steal.clone();
    cluster.shutdown();
    RunResult {
        stealing: stealing_on,
        makespan,
        checksum,
        attempts: steal.attempts,
        grants: steal.grants,
        empty_grants: steal.empty_grants,
        timeouts: steal.timeouts,
        stolen: steal.tasks_stolen,
        locality_hits: steal.locality_hits,
        locality_rate: steal.locality_hit_rate(),
        steal_to_run_p50_us,
        busy_micros,
    }
}

fn main() {
    let tasks: usize = std::env::var("RTML_STEAL_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TASKS);

    let off = run(false, tasks);
    let on = run(true, tasks);

    let rows: Vec<Vec<String>> = [&off, &on]
        .iter()
        .map(|r| {
            vec![
                if r.stealing { "on" } else { "off" }.to_string(),
                format!("{:.1} ms", r.makespan.as_secs_f64() * 1e3),
                r.stolen.to_string(),
                format!("{}/{}", r.grants, r.attempts),
                format!("{:.2}", r.locality_rate),
                format!("{} µs", r.steal_to_run_p50_us),
                format!("{:.2}", r.max_busy_share()),
                r.busy_micros.len().to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E13: pull-based work stealing ({tasks} tasks to node 0/{NODES}, NeverSpill, {}ms/task)",
            TASK_COST.as_millis()
        ),
        &[
            "stealing",
            "makespan",
            "stolen",
            "grants/attempts",
            "locality",
            "steal->run p50",
            "max busy share",
            "busy nodes",
        ],
        &rows,
    );

    // Structural self-asserts (the acceptance criteria).
    assert_eq!(
        off.checksum, on.checksum,
        "stealing must not change computed values"
    );
    assert!(on.stolen > 0, "no tasks were stolen");
    assert!(
        on.stolen as f64 / on.grants.max(1) as f64 >= 2.0,
        "steals must travel as batches, not single tasks: {} tasks / {} grants",
        on.stolen,
        on.grants
    );
    assert_eq!(off.stolen, 0, "stealing off must not steal");
    let speedup = off.makespan.as_secs_f64() / on.makespan.as_secs_f64();
    assert!(
        speedup >= MIN_SPEEDUP,
        "makespan must improve >= {MIN_SPEEDUP}x with stealing on, got {speedup:.2}x \
         ({:?} -> {:?})",
        off.makespan,
        on.makespan
    );
    assert!(
        on.busy_micros.len() > off.busy_micros.len(),
        "stealing must put more nodes to work: {:?} vs {:?}",
        off.busy_micros,
        on.busy_micros
    );
    assert!(
        on.max_busy_share() <= MAX_BUSY_SHARE,
        "busy time must spread (max share {:.2} > {MAX_BUSY_SHARE}): {:?}",
        on.max_busy_share(),
        on.busy_micros
    );
    assert!(
        on.max_busy_share() < off.max_busy_share(),
        "busy-time spread must tighten vs stealing off"
    );
    assert!(
        on.locality_hits > 0,
        "no stolen task found its dependency local — locality scoring inert"
    );
    println!(
        "\n(the skewed burst drained {speedup:.2}x faster with stealing on: {} of {tasks}\n tasks were pulled off node 0 in {} grant batches, {:.0}% of them landing on\n a thief that already held their input block; per-node busy share fell\n {:.2} -> {:.2}; checksums identical, so stealing changed where tasks ran\n and nothing else)",
        on.stolen,
        on.grants,
        on.locality_rate * 100.0,
        off.max_busy_share(),
        on.max_busy_share(),
    );

    let json = render_json(tasks, &off, &on, speedup);
    let path = "BENCH_steal.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

/// Hand-rolled JSON: stable key order, no deps.
fn render_json(tasks: usize, off: &RunResult, on: &RunResult, speedup: f64) -> String {
    let side = |r: &RunResult| {
        let busy: Vec<String> = r
            .busy_micros
            .iter()
            .map(|(n, b)| format!("\"{n}\": {b}"))
            .collect();
        format!(
            "{{\"makespan_ms\": {:.2}, \"stolen\": {}, \"grants\": {}, \"attempts\": {}, \"empty_grants\": {}, \"timeouts\": {}, \"locality_hits\": {}, \"locality_rate\": {:.3}, \"steal_to_run_p50_micros\": {}, \"max_busy_share\": {:.3}, \"busy_micros\": {{{}}}}}",
            r.makespan.as_secs_f64() * 1e3,
            r.stolen,
            r.grants,
            r.attempts,
            r.empty_grants,
            r.timeouts,
            r.locality_hits,
            r.locality_rate,
            r.steal_to_run_p50_us,
            r.max_busy_share(),
            busy.join(", "),
        )
    };
    format!(
        "{{\n  \"tasks\": {tasks},\n  \"nodes\": {NODES},\n  \"workers_per_node\": {WORKERS_PER_NODE},\n  \"task_cost_ms\": {},\n  \"speedup\": {speedup:.2},\n  \"checksums_match\": {},\n  \"off\": {},\n  \"on\": {}\n}}\n",
        TASK_COST.as_millis(),
        off.checksum == on.checksum,
        side(off),
        side(on),
    )
}
