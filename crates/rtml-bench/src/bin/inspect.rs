//! `inspect` — a demo of the R7 tooling: runs a small mixed workload
//! (successes, failures, a killed worker), then prints the cluster-state
//! dump and a per-task profile assembled purely from the control plane,
//! and writes a Chrome-trace JSON.
//!
//! Run: `cargo run -p rtml-bench --bin inspect --release`

use std::time::Duration;

use rtml_common::error::Result;
use rtml_common::ids::{NodeId, WorkerId};
use rtml_runtime::{tools, Cluster, ClusterConfig};

fn main() -> Result<()> {
    let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
    let work = cluster.register_fn1("inspect_work", |ms: u64| {
        rtml_common::time::occupy(Duration::from_millis(ms));
        Ok(ms)
    });
    let fail = cluster.register_fn0("inspect_fail", || -> Result<u64> {
        Err(rtml_common::error::Error::InvalidArgument(
            "synthetic failure for diagnosis demo".into(),
        ))
    });
    let driver = cluster.driver();

    // Mixed workload.
    let futs: Vec<_> = (0..12u64)
        .map(|i| driver.submit1(&work, 5 + i % 3).unwrap())
        .collect();
    let bad = driver.submit0(&fail).unwrap();
    std::thread::sleep(Duration::from_millis(8));
    let _ = cluster.kill_worker(WorkerId::new(NodeId(1), 0));
    for fut in &futs {
        let _ = driver.get(fut)?;
    }
    let _ = driver.get(&bad); // surfaces the synthetic failure

    // --- R7 output ----------------------------------------------------
    println!("{}", tools::cluster_state(driver.services()));

    let report = cluster.profile();
    println!("=== profile ===\n{}", report.summary());

    let trace = report.chrome_trace();
    let path = std::env::temp_dir().join("rtml_trace.json");
    std::fs::write(&path, &trace).expect("write trace");
    println!(
        "\nChrome trace with {} task spans written to {} (load in chrome://tracing)",
        report.tasks.len(),
        path.display()
    );
    cluster.shutdown();
    Ok(())
}
