//! E7 — §3.2.1 control-plane sharding for throughput (R2).
//!
//! Two measurements:
//! 1. Raw KV throughput: concurrent writers against the sharded store.
//! 2. End-to-end task throughput: a no-op task storm through the whole
//!    stack at several shard counts.
//!
//! "To achieve the throughput requirement, we shard the database. Since
//! we require only exact matching operations and since the keys are
//! computed as hashes, sharding is straightforward."
//!
//! Run: `cargo run -p rtml-bench --bin exp_shards --release`

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use rtml_bench::print_table;
use rtml_kv::KvStore;
use rtml_runtime::{Cluster, ClusterConfig};

fn main() {
    // --- raw KV ops/s vs shard count ---------------------------------
    let mut rows = Vec::new();
    const WRITERS: usize = 4;
    const OPS_PER_WRITER: usize = 50_000;
    for shards in [1usize, 2, 4, 8, 16] {
        let kv = KvStore::new(shards);
        let start = Instant::now();
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let kv: Arc<KvStore> = kv.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..OPS_PER_WRITER {
                    let key = Bytes::from(format!("k{w}:{i}"));
                    kv.set(key.clone(), Bytes::from_static(b"v"));
                    let _ = kv.get(&key);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = start.elapsed();
        let total_ops = (WRITERS * OPS_PER_WRITER * 2) as f64;
        let imbalance = kv.stats().imbalance();
        rows.push(vec![
            shards.to_string(),
            format!("{:.2} M ops/s", total_ops / elapsed.as_secs_f64() / 1e6),
            format!("{imbalance:.2}"),
        ]);
    }
    print_table(
        "E7a: raw control-plane throughput — 4 writers x 100k mixed ops",
        &["shards", "throughput", "shard imbalance (max/mean)"],
        &rows,
    );

    // --- end-to-end task throughput vs shard count --------------------
    let mut rows = Vec::new();
    const TASKS: usize = 2_000;
    for shards in [1usize, 4, 16] {
        let cluster = Cluster::start(
            ClusterConfig::local(2, 4)
                .with_kv_shards(shards)
                .without_event_log(),
        )
        .unwrap();
        let nop = cluster.register_fn1("nop_storm", |x: u64| Ok(x));
        let driver = cluster.driver();
        // Warm up the pipeline.
        let warm = driver.submit1(&nop, 0u64).unwrap();
        let _ = driver.get(&warm);

        let start = Instant::now();
        let futs: Vec<_> = (0..TASKS as u64)
            .map(|i| driver.submit1(&nop, i).unwrap())
            .collect();
        let submit_elapsed = start.elapsed();
        let (ready, _) = driver.wait(&futs, futs.len(), Duration::from_secs(120));
        let total_elapsed = start.elapsed();
        assert_eq!(ready.len(), TASKS);
        rows.push(vec![
            shards.to_string(),
            format!(
                "{:.0}k tasks/s",
                TASKS as f64 / submit_elapsed.as_secs_f64() / 1e3
            ),
            format!(
                "{:.1}k tasks/s",
                TASKS as f64 / total_elapsed.as_secs_f64() / 1e3
            ),
        ]);
        cluster.shutdown();
    }
    print_table(
        "E7b: end-to-end no-op task storm (2 nodes x 4 workers)",
        &["shards", "submission rate", "completion rate"],
        &rows,
    );
    println!(
        "\n(R2 target is millions of tasks/s across a cluster; one driver\n thread on one core measures the per-core slice of that aggregate.\n Shard imbalance near 1.0 confirms hash sharding spreads load.)"
    );
}
