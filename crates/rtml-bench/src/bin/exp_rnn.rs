//! E5 — Figure 2c: heterogeneous RNN cells as a fine-grained dataflow
//! graph.
//!
//! Sweeps the layer-cost heterogeneity and compares: serial, BSP
//! wavefront (barrier per anti-diagonal), and rtml dataflow (futures as
//! edges). The more heterogeneous the layers, the more the wavefront
//! barriers cost versus free-running dataflow (R4 + R5).
//!
//! Run: `cargo run -p rtml-bench --bin exp_rnn --release`

use std::time::Duration;

use rtml_baselines::{BspConfig, BspEngine};
use rtml_bench::{fmt_duration, fmt_ratio, print_table};
use rtml_runtime::{Cluster, ClusterConfig};
use rtml_workloads::rnn::{self, RnnConfig, RnnFuncs};

fn main() {
    let cluster = Cluster::start(ClusterConfig::local(2, 6)).unwrap();
    let funcs = RnnFuncs::register(&cluster);
    let driver = cluster.driver();
    // A parallel-but-barriered BSP engine with negligible per-task cost:
    // isolates the *structural* cost of barriers from scheduler overhead.
    let bsp_engine = BspEngine::new(BspConfig {
        workers: 8,
        per_task_overhead: Duration::ZERO,
        per_stage_overhead: Duration::ZERO,
    });

    let mut rows = Vec::new();
    for spread in [0.0f64, 0.75, 2.0] {
        let config = RnnConfig {
            layers: 4,
            timesteps: 10,
            base_cell_cost: Duration::from_millis(2),
            cost_spread: spread,
            ..RnnConfig::default()
        };
        let serial = rnn::run_serial(&config);
        let bsp_t = rnn::run_bsp_timestep(&config, &bsp_engine);
        let bsp_wave = rnn::run_bsp(&config, &bsp_engine);
        let rtml = rnn::run_rtml(&config, &driver, &funcs).unwrap();
        assert_eq!(serial.checksum, bsp_t.checksum);
        assert_eq!(serial.checksum, bsp_wave.checksum);
        assert_eq!(serial.checksum, rtml.checksum);
        rows.push(vec![
            format!("spread {spread}"),
            fmt_duration(serial.wall),
            fmt_duration(bsp_t.wall),
            fmt_duration(bsp_wave.wall),
            fmt_duration(rtml.wall),
            fmt_ratio(bsp_t.wall.as_secs_f64() / rtml.wall.as_secs_f64()),
        ]);
    }
    cluster.shutdown();

    print_table(
        "E5: RNN grid (Fig. 2c) — 4 layers x 10 steps; layer l costs 2 ms x (1 + l x spread)",
        &[
            "heterogeneity",
            "serial",
            "BSP per-timestep",
            "wavefront (idealized)",
            "rtml dataflow",
            "dataflow vs BSP",
        ],
        &rows,
    );
    println!(
        "\n(BSP per-timestep is how a stage-oriented system expresses an RNN:\n layers chain inside each stage, so timesteps never pipeline.\n The anti-diagonal wavefront is an idealized comparator that already\n needs fine-grained dependencies — i.e. the paper's R5. rtml matches\n the wavefront without any stage planning; checksums bit-identical.)"
    );
}
