//! E11 — the batched, pipelined data plane (R4/R5).
//!
//! PR 2 made task *submission* pay per-batch costs; this experiment
//! measures the same amortization on the *object* plane:
//!
//! - **Chunking**: an object larger than the chunk size crosses the
//!   fabric as ⌈size/chunk⌉ frames streamed through the bandwidth model
//!   (one propagation-delay sample per stream), not one monolithic
//!   message. Reported as frames/object for chunk sizes × object sizes.
//! - **Coalescing**: fetching K objects resident on one holder issues
//!   **one** request frame and one reply stream, vs K of each for the
//!   unbatched protocol.
//! - **Single-flight**: N concurrent `get`s of the same object perform
//!   exactly 1 transfer; the other N−1 join it.
//! - **Prefetch**: with dispatch-time prefetch, a batch of tasks whose
//!   dependencies live on another node pulls them as one coalesced
//!   `FetchMany` per holder at queue time, so transfer overlaps
//!   queueing; with prefetch off, every dependency is resolved by its
//!   own reactive watcher (per-object request frames and threads).
//!   Reported via `cluster.profile()`: dispatch-to-run latency p50,
//!   request frames served, and prefetch hit rate.
//!
//! Run: `cargo run -p rtml-bench --bin exp_transfer --release`
//!
//! Results are also written to `BENCH_transfer.json` so CI can track
//! regressions mechanically. `RTML_TRANSFER_OBJECTS` overrides the
//! object count per matrix cell (default 64); CI smoke runs use a
//! small value.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use rtml_bench::print_table;
use rtml_common::ids::{DriverId, NodeId, ObjectId, TaskId};
use rtml_common::resources::Resources;
use rtml_common::task::ArgSpec;
use rtml_net::{Fabric, FabricConfig, LatencyModel};
use rtml_runtime::{Cluster, ClusterConfig, NodeConfig, TaskRequest};
use rtml_sched::SpillMode;
use rtml_store::{FetchAgent, ObjectStore, StoreConfig, TransferDirectory, TransferService};

const CHUNK_SIZES: [u64; 2] = [16 * 1024, 256 * 1024];
const OBJECT_SIZES: [usize; 2] = [4 * 1024, 1024 * 1024];
const DEFAULT_OBJECTS: usize = 64;

fn obj(i: u64) -> ObjectId {
    TaskId::driver_root(DriverId::from_index(7))
        .child(i)
        .return_object(0)
}

struct Plane {
    fabric: Arc<Fabric>,
    src: Arc<ObjectStore>,
    dst: Arc<ObjectStore>,
    src_service: TransferService,
    agent: FetchAgent,
}

/// Two stores, one holder-side service, one consumer-side agent, over a
/// bandwidth-limited fabric — the raw data plane without schedulers.
fn plane(chunk_bytes: u64) -> Plane {
    let fabric = Fabric::new(FabricConfig {
        latency: LatencyModel::Constant(Duration::from_micros(100)),
        bandwidth_bytes_per_sec: Some(2 << 30), // 2 GiB/s
        jitter_seed: 7,
        ..FabricConfig::default()
    });
    let directory = TransferDirectory::new();
    let src = Arc::new(ObjectStore::new(StoreConfig {
        node: NodeId(0),
        capacity_bytes: 1 << 30,
        chunk_bytes,
    }));
    let dst = Arc::new(ObjectStore::new(StoreConfig {
        node: NodeId(1),
        capacity_bytes: 1 << 30,
        chunk_bytes,
    }));
    let src_service = TransferService::spawn(fabric.clone(), src.clone(), &directory);
    let agent = FetchAgent::spawn(fabric.clone(), dst.clone(), directory.clone());
    Plane {
        fabric,
        src,
        dst,
        src_service,
        agent,
    }
}

struct MatrixCell {
    chunk: u64,
    size: usize,
    objects: usize,
    frames_per_object: f64,
    expected_frames: u64,
    objects_per_sec: f64,
    mb_per_sec: f64,
}

fn measure_matrix(objects: usize) -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for &chunk in &CHUNK_SIZES {
        for &size in &OBJECT_SIZES {
            let p = plane(chunk);
            let ids: Vec<ObjectId> = (0..objects as u64).map(obj).collect();
            for (i, &id) in ids.iter().enumerate() {
                p.src
                    .put(id, Bytes::from(vec![(i % 251) as u8; size]))
                    .unwrap();
            }
            let start = Instant::now();
            let results = p.agent.fetch_many(&ids, NodeId(0), Duration::from_secs(60));
            let elapsed = start.elapsed();
            assert!(results.iter().all(|r| r.is_ok()), "matrix fetch failed");
            let served = p.src_service.stats().objects_served.get();
            let chunks = p.src_service.stats().chunks_sent.get();
            assert_eq!(p.fabric.stats.chunk_frames.get(), chunks);
            cells.push(MatrixCell {
                chunk,
                size,
                objects,
                frames_per_object: chunks as f64 / served as f64,
                expected_frames: (size as u64).div_ceil(chunk).max(1),
                objects_per_sec: served as f64 / elapsed.as_secs_f64(),
                mb_per_sec: (served as usize * size) as f64
                    / (1 << 20) as f64
                    / elapsed.as_secs_f64(),
            });
            assert!(p.dst.contains(ids[0]));
        }
    }
    cells
}

struct Coalescing {
    objects: usize,
    request_frames: u64,
    reply_chunk_frames: u64,
}

fn measure_coalescing(objects: usize) -> Coalescing {
    let p = plane(256 * 1024);
    let ids: Vec<ObjectId> = (0..objects as u64).map(obj).collect();
    for &id in &ids {
        p.src.put(id, Bytes::from(vec![5u8; 1024])).unwrap();
    }
    let results = p.agent.fetch_many(&ids, NodeId(0), Duration::from_secs(30));
    assert!(results.iter().all(|r| r.is_ok()));
    Coalescing {
        objects,
        request_frames: p.src_service.stats().requests.get(),
        reply_chunk_frames: p.src_service.stats().chunks_sent.get(),
    }
}

struct SingleFlight {
    concurrent: usize,
    transfers: u64,
    duplicates_suppressed: u64,
}

fn measure_single_flight(concurrent: usize) -> SingleFlight {
    let p = plane(256 * 1024);
    p.src
        .put(obj(0), Bytes::from(vec![9u8; 64 * 1024]))
        .unwrap();
    let agent = Arc::new(p.agent);
    let mut handles = Vec::new();
    for _ in 0..concurrent {
        let agent = agent.clone();
        handles.push(std::thread::spawn(move || {
            agent
                .fetch_one(obj(0), NodeId(0), Duration::from_secs(30))
                .map(|(data, _)| data.len())
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap().unwrap(), 64 * 1024);
    }
    SingleFlight {
        concurrent,
        transfers: agent.stats().transfers.get(),
        duplicates_suppressed: agent.stats().duplicates_suppressed.get(),
    }
}

struct PrefetchRun {
    prefetch: bool,
    dispatch_p50_micros: u64,
    dispatch_p99_micros: u64,
    request_frames: u64,
    prefetches_issued: usize,
    prefetch_hit_rate: f64,
}

/// Tasks pinned to node 1 (custom resource) consuming objects resident
/// on node 0: every dependency is remote, so the consuming scheduler's
/// data plane does all the work while tasks queue behind one worker.
fn measure_prefetch(prefetch: bool, tasks: usize, deps_per_task: usize) -> PrefetchRun {
    let cluster = Cluster::start(ClusterConfig {
        nodes: vec![
            NodeConfig::cpu_only(1),
            NodeConfig::cpu_only(1).with_custom("sink", 64.0),
        ],
        latency: LatencyModel::Constant(Duration::from_micros(300)),
        bandwidth_bytes_per_sec: Some(1 << 30),
        spill: SpillMode::AlwaysSpill,
        prefetch,
        ..ClusterConfig::default()
    })
    .unwrap();
    let consume = cluster.register_fn1("consume", |xs: Bytes| Ok(xs.len() as u64));
    let driver = cluster.driver();

    // Seed the dependencies on node 0 (the driver's home store).
    let payload = Bytes::from(vec![3u8; 16 * 1024]);
    let deps: Vec<_> = (0..tasks * deps_per_task)
        .map(|_| driver.put(&payload).unwrap())
        .collect();

    // One submission batch: each task consumes one distinct dependency
    // group member; all must run on node 1 ("sink" resource).
    let requests: Vec<TaskRequest> = (0..tasks)
        .map(|t| TaskRequest {
            function: consume.id(),
            args: (0..deps_per_task)
                .map(|d| ArgSpec::ObjectRef(deps[t * deps_per_task + d].id()))
                .collect(),
            num_returns: 1,
            resources: Resources::cpu(1.0).with_custom("sink", 1.0),
        })
        .collect();
    let futures = driver.submit_raw_batch(requests).unwrap();
    for returns in &futures {
        let value: u64 = driver
            .get(&rtml_runtime::ObjectRef::typed(returns[0]))
            .unwrap();
        assert_eq!(value, payload.len() as u64);
    }
    let report = cluster.profile();
    let dispatch = report.dispatch_latency().snapshot();
    let run = PrefetchRun {
        prefetch,
        dispatch_p50_micros: dispatch.p50() / 1_000,
        dispatch_p99_micros: dispatch.p99() / 1_000,
        request_frames: report.transfer.requests_served,
        prefetches_issued: report.prefetches_issued,
        prefetch_hit_rate: report.prefetch_hit_rate(),
    };
    cluster.shutdown();
    run
}

fn main() {
    let objects: usize = std::env::var("RTML_TRANSFER_OBJECTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_OBJECTS);

    // --- chunking matrix --------------------------------------------------
    let cells = measure_matrix(objects);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                format!("{} KiB", c.chunk / 1024),
                format!("{} KiB", c.size / 1024),
                c.objects.to_string(),
                format!("{:.0}", c.frames_per_object),
                c.expected_frames.to_string(),
                format!("{:.0}", c.objects_per_sec),
                format!("{:.1}", c.mb_per_sec),
            ]
        })
        .collect();
    print_table(
        "E11a: chunked transfer (frames/object = ceil(size/chunk))",
        &[
            "chunk",
            "object",
            "objects",
            "frames/obj",
            "expected",
            "objects/sec",
            "MiB/sec",
        ],
        &rows,
    );
    for c in &cells {
        assert_eq!(
            c.frames_per_object, c.expected_frames as f64,
            "chunk accounting mismatch"
        );
    }

    // --- request coalescing ----------------------------------------------
    let co = measure_coalescing(objects);
    print_table(
        "E11b: request coalescing (K objects, one holder)",
        &["objects", "request frames", "vs unbatched", "reply frames"],
        &[vec![
            co.objects.to_string(),
            co.request_frames.to_string(),
            format!("{}x fewer", co.objects as u64 / co.request_frames),
            co.reply_chunk_frames.to_string(),
        ]],
    );
    assert_eq!(co.request_frames, 1, "K objects must cost one request");

    // --- single flight ----------------------------------------------------
    let sf = measure_single_flight(8);
    print_table(
        "E11c: single-flight (N concurrent gets, same object)",
        &["concurrent gets", "transfers", "duplicates suppressed"],
        &[vec![
            sf.concurrent.to_string(),
            sf.transfers.to_string(),
            sf.duplicates_suppressed.to_string(),
        ]],
    );
    assert_eq!(sf.transfers, 1, "concurrent gets must share one transfer");

    // --- prefetch ---------------------------------------------------------
    let tasks = (objects / 4).clamp(4, 16);
    let on = measure_prefetch(true, tasks, 8);
    let off = measure_prefetch(false, tasks, 8);
    let rows: Vec<Vec<String>> = [&on, &off]
        .iter()
        .map(|r| {
            vec![
                if r.prefetch { "on" } else { "off" }.to_string(),
                format!("{} µs", r.dispatch_p50_micros),
                format!("{} µs", r.dispatch_p99_micros),
                r.request_frames.to_string(),
                r.prefetches_issued.to_string(),
                format!("{:.2}", r.prefetch_hit_rate),
            ]
        })
        .collect();
    print_table(
        "E11d: dispatch-time prefetch (remote-dependency tasks)",
        &[
            "prefetch",
            "dispatch p50",
            "dispatch p99",
            "request frames",
            "issued",
            "hit rate",
        ],
        &rows,
    );
    assert!(
        on.request_frames < off.request_frames,
        "prefetch must coalesce request frames ({} vs {})",
        on.request_frames,
        off.request_frames,
    );
    println!(
        "\n(prefetch pulls a batch's dependencies as one FetchMany per holder\n at queue time — {}x fewer request frames than the reactive per-object\n baseline — and overlaps transfer with queueing; hit rate is the share\n of prefetched objects whose transfer landed on the requesting node)",
        off.request_frames / on.request_frames.max(1),
    );

    let json = render_json(objects, &cells, &co, &sf, &on, &off);
    let path = "BENCH_transfer.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

/// Hand-rolled JSON: stable key order, no deps.
fn render_json(
    objects: usize,
    cells: &[MatrixCell],
    co: &Coalescing,
    sf: &SingleFlight,
    on: &PrefetchRun,
    off: &PrefetchRun,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"objects_per_cell\": {objects},\n"));
    out.push_str("  \"chunking\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"chunk_bytes\": {}, \"object_bytes\": {}, \"frames_per_object\": {:.0}, \"objects_per_sec\": {:.2}, \"mib_per_sec\": {:.2}}}{}\n",
            c.chunk,
            c.size,
            c.frames_per_object,
            c.objects_per_sec,
            c.mb_per_sec,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"coalescing\": {{\"objects\": {}, \"request_frames\": {}}},\n",
        co.objects, co.request_frames
    ));
    out.push_str(&format!(
        "  \"single_flight\": {{\"concurrent\": {}, \"transfers\": {}, \"duplicates_suppressed\": {}}},\n",
        sf.concurrent, sf.transfers, sf.duplicates_suppressed
    ));
    out.push_str(&format!(
        "  \"prefetch\": {{\"on\": {{\"dispatch_p50_micros\": {}, \"request_frames\": {}, \"hit_rate\": {:.3}}}, \"off\": {{\"dispatch_p50_micros\": {}, \"request_frames\": {}}}}}\n",
        on.dispatch_p50_micros, on.request_frames, on.prefetch_hit_rate,
        off.dispatch_p50_micros, off.request_frames,
    ));
    out.push_str("}\n");
    out
}
