//! E10 — submission throughput vs batch size (R2), pipelined vs
//! serialized.
//!
//! The paper's headline requirement is *millions of fine-grained tasks
//! per second*; every per-task cost on the submit→ingest path (channel
//! sends, control-plane lock round trips, event-log appends, fabric
//! frames) caps that rate. This experiment measures, per batch size in
//! {1, 16, 256, 4096} and per submission mode:
//!
//! - **pipelined** (the default runtime configuration): the driver
//!   blasts every batch; local-scheduler ingest is split into a cheap
//!   accept stage and a deferred index stage, so the driver's
//!   marshalling of batch N+1 overlaps the scheduler's ingest of batch
//!   N. One drain barrier at the end.
//! - **serialized**: pipelined ingest off, and the driver waits for
//!   each batch to be fully indexed (state `Queued`) before submitting
//!   the next — no overlap anywhere, the strict back-to-back baseline.
//!
//! Reported per (size, mode): **tasks/sec** (wall clock from first
//! submit until the scheduler has queued the whole budget), **kv
//! locks/task** (control-plane lock acquisitions per task, the
//! structural quantity that group-committed spec segments amortize),
//! and **sched msgs**. The run also records the host's **core count**:
//! overlap cannot beat back-to-back on one core, so the pipelined ≥
//! 1.5× serialized self-check only arms on multi-core hosts.
//!
//! Every task is gated on a dependency that never seals, so the
//! measurement isolates the submission and ingest layers from task
//! execution. Spillover is disabled: this is a single-node submission
//! benchmark, not a load-balancing one.
//!
//! Run: `cargo run -p rtml-bench --bin exp_submit_throughput --release`
//!
//! Results are also written to `BENCH_submit_throughput.json` so CI can
//! track regressions mechanically (`tasks_per_sec` stays the pipelined
//! curve — the shipping configuration — for continuity with earlier
//! runs). `RTML_SUBMIT_TASKS` overrides the per-size task budget
//! (default 16384); `RTML_SUBMIT_REPS` the repetitions per size
//! (default 3, fresh cluster each, fastest kept — the standard
//! minimum-of-N estimator). `TaskRequest`s are marshalled before the
//! clock starts for both modes, so the comparison stays
//! apples-to-apples.

use std::time::{Duration, Instant};

use rtml_bench::print_table;
use rtml_common::ids::{DriverId, TaskId};
use rtml_common::resources::Resources;
use rtml_common::task::{ArgSpec, TaskState};
use rtml_runtime::{Cluster, ClusterConfig, Driver, TaskRequest};
use rtml_sched::SpillMode;

const BATCH_SIZES: [usize; 4] = [1, 16, 256, 4096];
const DEFAULT_TASKS_PER_SIZE: usize = 16_384;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Pipelined,
    Serialized,
}

struct Measurement {
    batch: usize,
    total: usize,
    elapsed: Duration,
    rate: f64,
    kv_locks_per_task: f64,
    sched_msgs: usize,
}

fn main() {
    let tasks_per_size: usize = std::env::var("RTML_SUBMIT_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TASKS_PER_SIZE);

    let reps: usize = std::env::var("RTML_SUBMIT_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Interleave repetitions across batch sizes and modes (rep-major)
    // so a transient noisy window on the host degrades one rep of every
    // cell rather than every rep of one cell — the min-of-N estimator
    // then stays comparable across the whole grid.
    let mut best_pipe: Vec<Option<Measurement>> = (0..BATCH_SIZES.len()).map(|_| None).collect();
    let mut best_serial: Vec<Option<Measurement>> = (0..BATCH_SIZES.len()).map(|_| None).collect();
    for _ in 0..reps {
        for (slot, &batch) in BATCH_SIZES.iter().enumerate() {
            for mode in [Mode::Pipelined, Mode::Serialized] {
                let m = measure(batch, tasks_per_size, mode);
                let best = match mode {
                    Mode::Pipelined => &mut best_pipe[slot],
                    Mode::Serialized => &mut best_serial[slot],
                };
                if best.as_ref().is_none_or(|prev| m.elapsed < prev.elapsed) {
                    *best = Some(m);
                }
            }
        }
    }
    let pipelined: Vec<Measurement> = best_pipe
        .into_iter()
        .map(|m| m.expect("at least one repetition"))
        .collect();
    let serialized: Vec<Measurement> = best_serial
        .into_iter()
        .map(|m| m.expect("at least one repetition"))
        .collect();

    let base_rate = pipelined[0].rate;
    let rows: Vec<Vec<String>> = pipelined
        .iter()
        .zip(&serialized)
        .map(|(p, s)| {
            vec![
                p.batch.to_string(),
                p.total.to_string(),
                format!("{:.0}", p.rate),
                format!("{:.0}", s.rate),
                format!("{:.2}x", p.rate / s.rate),
                format!("{:.1}x", p.rate / base_rate),
                format!("{:.3}", p.kv_locks_per_task),
                p.sched_msgs.to_string(),
            ]
        })
        .collect();

    print_table(
        &format!("E10: submission throughput, pipelined vs serialized ({cores} core(s))"),
        &[
            "batch",
            "tasks",
            "pipelined/s",
            "serialized/s",
            "overlap gain",
            "vs batch=1",
            "kv locks/task",
            "sched msgs",
        ],
        &rows,
    );
    println!(
        "\n(time from first submit until the local scheduler has queued every\n task; execution is gated out. Serialized = pipelined ingest off and a\n per-batch drain barrier — no driver/ingest overlap. Overlap gain on a\n 1-core host is expected to hover near 1x: there is no second core for\n the ingest stage to run on)"
    );

    // Self-checks. The structural claims hold everywhere; the overlap
    // claim only where the hardware can express it.
    let p4096 = pipelined.iter().find(|m| m.batch == 4096).unwrap();
    let s4096 = serialized.iter().find(|m| m.batch == 4096).unwrap();
    assert!(
        p4096.kv_locks_per_task <= 0.01,
        "segment commit must keep batch-4096 ingest at or under 0.01 kv locks/task (got {:.4})",
        p4096.kv_locks_per_task
    );
    // Rising with batch size, with a small tolerance at the top of the
    // curve: on a 1-core host the 256→4096 step is already deep into
    // diminishing returns and OS scheduling noise between the driver
    // and scheduler threads can wiggle it a few percent either way.
    assert!(
        pipelined.windows(2).all(|w| w[1].rate > w[0].rate * 0.9),
        "pipelined throughput must rise with batch size"
    );
    if cores >= 2 {
        let gain = p4096.rate / s4096.rate;
        assert!(
            gain >= 1.5,
            "on a {cores}-core host, pipelined submission must be >=1.5x serialized at batch 4096 (got {gain:.2}x)"
        );
    }

    let json = render_json(tasks_per_size, cores, &pipelined, &serialized);
    let path = "BENCH_submit_throughput.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    println!(
        "batch=4096: pipelined {:.0} tasks/s vs serialized {:.0} tasks/s ({:.2}x) on {cores} core(s)",
        p4096.rate,
        s4096.rate,
        p4096.rate / s4096.rate,
    );
}

/// Runs one (batch size, mode) cell on a fresh cluster so queue depths
/// start identical. Event logging stays ON (it is part of the per-task
/// cost story); the retention cap keeps the run's control-plane memory
/// bounded.
fn measure(batch: usize, tasks_per_size: usize, mode: Mode) -> Measurement {
    let cluster = Cluster::start(
        ClusterConfig {
            spill: SpillMode::NeverSpill,
            ..ClusterConfig::local(1, 2)
        }
        .with_event_log_retention(4096)
        .with_pipelined_submission(mode == Mode::Pipelined),
    )
    .unwrap();
    let gated = cluster.register_fn2("gated_submit", |x: u64, _gate: u64| Ok(x));
    let driver = cluster.driver();

    // A dependency that never seals: every task waits on it, so nothing
    // executes and the measurement covers submit + scheduler ingest.
    let never = TaskId::driver_root(DriverId::from_index(u64::MAX))
        .child(0)
        .return_object(0);
    // Marshal every request before the clock starts: argument encoding
    // is the benchmark client's cost, not the submission machinery's.
    // One payload is encoded once and its `Bytes` handle cloned per
    // task — the system still moves one value arg per task.
    let payload = rtml_common::codec::encode_to_bytes(&0u64);
    let request = || TaskRequest {
        function: gated.id(),
        args: vec![ArgSpec::Value(payload.clone()), ArgSpec::ObjectRef(never)],
        num_returns: 1,
        resources: Resources::cpu(1.0),
    };

    // Round the budget up to whole batches.
    let batches = tasks_per_size.div_ceil(batch);
    let total = batches * batch;
    let mut prebuilt: Vec<Vec<TaskRequest>> = (0..batches)
        .map(|_| (0..batch).map(|_| request()).collect())
        .collect();

    let locks_before = driver.services().kv.stats().total_locks();
    let start = Instant::now();
    let mut last_returns = Vec::new();
    if batch == 1 {
        for requests in prebuilt.drain(..) {
            for r in requests {
                last_returns = driver
                    .submit_raw(r.function, r.args, r.num_returns, r.resources)
                    .unwrap();
                if mode == Mode::Serialized {
                    wait_queued(&driver, &last_returns);
                }
            }
        }
    } else {
        for requests in prebuilt.drain(..) {
            let mut results = driver.submit_raw_batch(requests).unwrap();
            last_returns = results.pop().unwrap();
            if mode == Mode::Serialized {
                // The per-batch drain barrier that defines serialized
                // mode: submission resumes only after this batch is
                // fully indexed.
                wait_queued(&driver, &last_returns);
            }
        }
    }
    // Pipelined mode's single drain barrier (a second wait in
    // serialized mode is satisfied instantly). The scheduler indexes
    // batches FIFO, so once the final task is queued the whole budget
    // has been ingested.
    wait_queued(&driver, &last_returns);
    let elapsed = start.elapsed();
    let locks = driver.services().kv.stats().total_locks() - locks_before;
    cluster.shutdown();
    Measurement {
        batch,
        total,
        elapsed,
        rate: total as f64 / elapsed.as_secs_f64(),
        kv_locks_per_task: locks as f64 / total as f64,
        sched_msgs: batches,
    }
}

/// Blocks until the task producing `returns[0]` reaches `Queued` —
/// event-driven (kv subscription), not a poll loop, so the barrier
/// itself does not steal scheduler cycles on small hosts.
fn wait_queued(driver: &Driver, returns: &[rtml_common::ids::ObjectId]) {
    let task = returns[0]
        .producer_task()
        .expect("return objects embed their producer");
    let (current, stream) = driver.services().tasks.subscribe_state(task);
    if matches!(current, Some(TaskState::Queued(_))) {
        return;
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match stream.recv_timeout(Duration::from_secs(1)) {
            Some(TaskState::Queued(_)) => return,
            _ => assert!(Instant::now() < deadline, "ingest never completed"),
        }
    }
}

/// Hand-rolled JSON: two decimal places, stable key order, no deps.
fn render_json(
    tasks_per_size: usize,
    cores: usize,
    pipelined: &[Measurement],
    serialized: &[Measurement],
) -> String {
    let base_rate = pipelined[0].rate;
    let field = |set: &[Measurement], f: &dyn Fn(&Measurement) -> String| -> String {
        set.iter()
            .map(|m| format!("\"{}\": {}", m.batch, f(m)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"tasks_per_size\": {tasks_per_size},\n"));
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str("  \"modes\": [\"pipelined\", \"serialized\"],\n");
    out.push_str("  \"batch_sizes\": [");
    out.push_str(
        &pipelined
            .iter()
            .map(|m| m.batch.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    out.push_str("],\n  \"tasks_per_sec\": {");
    out.push_str(&field(pipelined, &|m| format!("{:.2}", m.rate)));
    out.push_str("},\n  \"serialized_tasks_per_sec\": {");
    out.push_str(&field(serialized, &|m| format!("{:.2}", m.rate)));
    out.push_str("},\n  \"overlap_speedup\": {");
    let overlap: Vec<String> = pipelined
        .iter()
        .zip(serialized)
        .map(|(p, s)| format!("\"{}\": {:.2}", p.batch, p.rate / s.rate))
        .collect();
    out.push_str(&overlap.join(", "));
    out.push_str("},\n  \"speedup_vs_batch_1\": {");
    out.push_str(&field(pipelined, &|m| format!("{:.2}", m.rate / base_rate)));
    out.push_str("},\n  \"kv_locks_per_task\": {");
    out.push_str(&field(pipelined, &|m| {
        format!("{:.3}", m.kv_locks_per_task)
    }));
    out.push_str("},\n  \"sched_messages\": {");
    out.push_str(&field(pipelined, &|m| m.sched_msgs.to_string()));
    out.push_str("}\n}\n");
    out
}
