//! E10 — submission throughput vs batch size (R2).
//!
//! The paper's headline requirement is *millions of fine-grained tasks
//! per second*; every per-task cost on the submit→ingest path (channel
//! sends, control-plane lock round trips, event-log appends, fabric
//! frames) caps that rate. This experiment measures, per batch size in
//! {1, 16, 256, 4096}:
//!
//! - **tasks/sec**: wall-clock rate from first submit until the local
//!   scheduler has queued the whole budget. Batch size 1 is the classic
//!   one-message-per-task path (`submit_raw`), larger sizes the batched
//!   path (`submit_raw_batch`) with group-committed control-plane
//!   writes and one scheduler message per batch.
//! - **kv locks/task**: control-plane lock acquisitions per task (from
//!   shard counters) — the structural quantity group commit amortizes,
//!   independent of how fast this particular machine encodes records.
//! - **sched msgs**: scheduler mailbox messages sent for the budget.
//!
//! Every task is gated on a dependency that never seals, so the
//! measurement isolates the submission and ingest layers from task
//! execution (identical in both paths and not what batching changes).
//! Spillover is disabled: this is a single-node submission benchmark,
//! not a load-balancing one.
//!
//! Run: `cargo run -p rtml-bench --bin exp_submit_throughput --release`
//!
//! Results are also written to `BENCH_submit_throughput.json` so CI can
//! track regressions mechanically. `RTML_SUBMIT_TASKS` overrides the
//! per-size task budget (default 16384) — CI smoke runs use a small
//! value. `RTML_SUBMIT_REPS` overrides the repetitions per size
//! (default 3): each repetition runs on a fresh cluster and the fastest
//! is reported, the standard minimum-of-N estimator for wall-clock
//! benchmarks on shared machines. `TaskRequest`s are marshalled before
//! the clock starts — the measurement covers the submission machinery
//! (ID derivation, durable spec records, group commits, routing,
//! scheduler ingest), not the benchmark's own argument encoding — and
//! marshalling is hoisted for the batch=1 path too, so the comparison
//! stays apples-to-apples. Note on wall-clock speedup: it reflects how
//! much of a machine's per-task cost is per-message overhead; on a
//! single shared core (no cross-thread contention, slow per-record
//! encode) it is far smaller than on multi-core hosts where every
//! per-task message also pays wake-ups and cache-line bouncing.

use std::time::{Duration, Instant};

use rtml_bench::print_table;
use rtml_common::ids::{DriverId, TaskId};
use rtml_common::resources::Resources;
use rtml_common::task::{ArgSpec, TaskState};
use rtml_runtime::{Cluster, ClusterConfig, TaskRequest};
use rtml_sched::SpillMode;

const BATCH_SIZES: [usize; 4] = [1, 16, 256, 4096];
const DEFAULT_TASKS_PER_SIZE: usize = 16_384;

struct Measurement {
    batch: usize,
    total: usize,
    elapsed: Duration,
    rate: f64,
    kv_locks_per_task: f64,
    sched_msgs: usize,
}

fn main() {
    let tasks_per_size: usize = std::env::var("RTML_SUBMIT_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TASKS_PER_SIZE);

    let reps: usize = std::env::var("RTML_SUBMIT_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);

    // Interleave repetitions across batch sizes (rep-major, not
    // size-major) so a transient noisy window on the host degrades one
    // rep of every size rather than every rep of one size — the
    // min-of-N estimator then stays comparable across the curve.
    let mut best: Vec<Option<Measurement>> = (0..BATCH_SIZES.len()).map(|_| None).collect();
    for _ in 0..reps {
        for (slot, &batch) in BATCH_SIZES.iter().enumerate() {
            let m = measure(batch, tasks_per_size);
            if best[slot]
                .as_ref()
                .is_none_or(|prev| m.elapsed < prev.elapsed)
            {
                best[slot] = Some(m);
            }
        }
    }
    let measured: Vec<Measurement> = best
        .into_iter()
        .map(|m| m.expect("at least one repetition"))
        .collect();

    let base_rate = measured[0].rate;
    let base_locks = measured[0].kv_locks_per_task;
    let rows: Vec<Vec<String>> = measured
        .iter()
        .map(|m| {
            vec![
                m.batch.to_string(),
                m.total.to_string(),
                format!("{:.2} ms", m.elapsed.as_secs_f64() * 1e3),
                format!("{:.0}", m.rate),
                format!("{:.1}x", m.rate / base_rate),
                format!("{:.2}", m.kv_locks_per_task),
                m.sched_msgs.to_string(),
            ]
        })
        .collect();

    print_table(
        "E10: submission throughput vs batch size (R2)",
        &[
            "batch",
            "tasks",
            "submit+ingest",
            "tasks/sec",
            "vs batch=1",
            "kv locks/task",
            "sched msgs",
        ],
        &rows,
    );
    println!(
        "\n(time from first submit until the local scheduler has queued every\n task; execution is gated out so both paths do identical downstream\n work. kv locks/task counts control-plane lock round trips — the\n per-task cost group commit turns into a per-batch cost)"
    );

    let json = render_json(tasks_per_size, &measured);
    let path = "BENCH_submit_throughput.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    if let Some(m256) = measured.iter().find(|m| m.batch == 256) {
        println!(
            "batch=256 vs batch=1: {:.1}x tasks/sec, {:.0}x fewer kv lock round trips, {:.0}x fewer scheduler messages",
            m256.rate / base_rate,
            base_locks / m256.kv_locks_per_task.max(f64::EPSILON),
            measured[0].sched_msgs as f64 / m256.sched_msgs as f64,
        );
    }
}

/// Runs one batch size on a fresh cluster so queue depths start
/// identical. Event logging stays ON (it is part of the per-task cost
/// story); the retention cap keeps the run's control-plane memory
/// bounded.
fn measure(batch: usize, tasks_per_size: usize) -> Measurement {
    let cluster = Cluster::start(
        ClusterConfig {
            spill: SpillMode::NeverSpill,
            ..ClusterConfig::local(1, 2)
        }
        .with_event_log_retention(4096),
    )
    .unwrap();
    let gated = cluster.register_fn2("gated_submit", |x: u64, _gate: u64| Ok(x));
    let driver = cluster.driver();

    // A dependency that never seals: every task waits on it, so nothing
    // executes and the measurement covers submit + scheduler ingest.
    let never = TaskId::driver_root(DriverId::from_index(u64::MAX))
        .child(0)
        .return_object(0);
    // Marshal every request before the clock starts: argument encoding
    // is the benchmark client's cost, not the submission machinery's.
    // One payload is encoded once and its `Bytes` handle cloned per
    // task — the system still moves one value arg per task.
    let payload = rtml_common::codec::encode_to_bytes(&0u64);
    let request = || TaskRequest {
        function: gated.id(),
        args: vec![ArgSpec::Value(payload.clone()), ArgSpec::ObjectRef(never)],
        num_returns: 1,
        resources: Resources::cpu(1.0),
    };

    // Round the budget up to whole batches.
    let batches = tasks_per_size.div_ceil(batch);
    let total = batches * batch;
    let mut prebuilt: Vec<Vec<TaskRequest>> = (0..batches)
        .map(|_| (0..batch).map(|_| request()).collect())
        .collect();

    let locks_before = driver.services().kv.stats().total_locks();
    let start = Instant::now();
    let mut last_returns = Vec::new();
    if batch == 1 {
        for requests in prebuilt.drain(..) {
            for r in requests {
                last_returns = driver
                    .submit_raw(r.function, r.args, r.num_returns, r.resources)
                    .unwrap();
            }
        }
    } else {
        for requests in prebuilt.drain(..) {
            let mut results = driver.submit_raw_batch(requests).unwrap();
            last_returns = results.pop().unwrap();
        }
    }
    // The scheduler drains its mailbox in order: once the final task is
    // queued, the whole budget has been ingested. The return future's ID
    // embeds its producing task.
    let last_task = last_returns[0]
        .producer_task()
        .expect("return objects embed their producer");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match driver.services().tasks.get_state(last_task) {
            Some(TaskState::Queued(_)) => break,
            _ => {
                assert!(Instant::now() < deadline, "ingest never completed");
                // Sleep, don't spin: on small machines a hot poll loop
                // steals the very cycles the scheduler needs to ingest.
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }
    let elapsed = start.elapsed();
    let locks = driver.services().kv.stats().total_locks() - locks_before;
    cluster.shutdown();
    Measurement {
        batch,
        total,
        elapsed,
        rate: total as f64 / elapsed.as_secs_f64(),
        kv_locks_per_task: locks as f64 / total as f64,
        sched_msgs: batches,
    }
}

/// Hand-rolled JSON: two decimal places, stable key order, no deps.
fn render_json(tasks_per_size: usize, measured: &[Measurement]) -> String {
    let base_rate = measured[0].rate;
    let field = |f: &dyn Fn(&Measurement) -> String| -> String {
        measured
            .iter()
            .map(|m| format!("\"{}\": {}", m.batch, f(m)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"tasks_per_size\": {tasks_per_size},\n"));
    out.push_str("  \"batch_sizes\": [");
    out.push_str(
        &measured
            .iter()
            .map(|m| m.batch.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    out.push_str("],\n  \"tasks_per_sec\": {");
    out.push_str(&field(&|m| format!("{:.2}", m.rate)));
    out.push_str("},\n  \"speedup_vs_batch_1\": {");
    out.push_str(&field(&|m| format!("{:.2}", m.rate / base_rate)));
    out.push_str("},\n  \"kv_locks_per_task\": {");
    out.push_str(&field(&|m| format!("{:.3}", m.kv_locks_per_task)));
    out.push_str("},\n  \"sched_messages\": {");
    out.push_str(&field(&|m| m.sched_msgs.to_string()));
    out.push_str("}\n}\n");
    out
}
