//! E12 — the replication plane: hot-object fan-in spread (R1/R2).
//!
//! The workload the paper motivates (a broadcast policy, shared RNN
//! weights) makes one object hot: K nodes all read it, and every remote
//! read funnels to the producing node's egress link. This experiment
//! measures that hot-spot and the replication plane's answer:
//!
//! - **Off**: every round, all reader nodes pull the hot object from
//!   its single producer; transfers serialize on the producer's egress
//!   bandwidth, so fetch latency grows with reader count.
//! - **On**: per-node demand counters cross
//!   `ReplicationPolicy::read_threshold` after the first round, the
//!   producer's `ReplicationAgent` pulls the object onto
//!   `max_replicas` additional holders (chunked `FetchMany`,
//!   group-committed locations), and subsequent readers spread across
//!   the holder set via the deterministic rendezvous ranking.
//!
//! Self-asserted structural wins: with replication on, ≥ 2 holders
//! serve the measured reads and no holder serves more than
//! `MAX_HOLDER_SHARE` of them; measured fetch p50 improves vs off; and
//! the fetched bytes are checksum-identical in both modes (replication
//! changes where copies live, never values).
//!
//! Run: `cargo run -p rtml-bench --bin exp_replication --release`
//!
//! Results land in `BENCH_replication.json`. `RTML_REPLICATION_ROUNDS`
//! overrides the measured round count (CI smoke uses a small value).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rtml_bench::print_table;
use rtml_common::ids::NodeId;
use rtml_net::LatencyModel;
use rtml_runtime::{Cluster, ClusterConfig, NodeConfig};
use rtml_store::ReplicationPolicy;

/// Reader nodes (plus one producer node).
const READERS: usize = 8;
/// Hot-object payload size.
const OBJECT_BYTES: usize = 1 << 20; // 1 MiB
/// Producer egress bandwidth: 1 MiB costs ~4 ms to serialize, so
/// fan-in queueing dominates scheduling noise.
const BANDWIDTH: u64 = 256 << 20; // 256 MiB/s
/// Highest fraction of measured reads one holder may serve (on).
const MAX_HOLDER_SHARE: f64 = 0.8;
const DEFAULT_ROUNDS: usize = 6;

fn fnv(bytes: &[u8], mut state: u64) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

struct RunResult {
    replication: bool,
    holders: Vec<NodeId>,
    per_holder: BTreeMap<NodeId, u64>,
    latencies_us: Vec<u64>,
    checksum: u64,
    replicas_created: u64,
    egress_wait_ms: u64,
}

impl RunResult {
    fn percentile(&self, p: f64) -> u64 {
        let mut sorted = self.latencies_us.clone();
        sorted.sort();
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    }

    fn max_share(&self) -> f64 {
        let total: u64 = self.per_holder.values().sum();
        let max = self.per_holder.values().copied().max().unwrap_or(0);
        if total == 0 {
            return 0.0;
        }
        max as f64 / total as f64
    }
}

fn run(replication_on: bool, rounds: usize) -> RunResult {
    // Threshold at half the reader count: demand decays by half on
    // every sweep it stays cold, so with a sweep interval comparable to
    // one read round the priming round's READERS reads cross the
    // threshold even if a sweep boundary splits them.
    let policy = if replication_on {
        ReplicationPolicy {
            enabled: true,
            read_threshold: (READERS / 2) as u64,
            max_replicas: 2,
            sweep_interval: Duration::from_millis(25),
            ..ReplicationPolicy::default()
        }
    } else {
        ReplicationPolicy::disabled()
    };
    let cluster = Cluster::start(
        ClusterConfig {
            nodes: (0..READERS + 1).map(|_| NodeConfig::cpu_only(1)).collect(),
            bandwidth_bytes_per_sec: Some(BANDWIDTH),
            ..ClusterConfig::default()
        }
        .with_latency(LatencyModel::Constant(Duration::from_micros(200)))
        .with_replication(policy),
    )
    .unwrap();
    let services = cluster.services().clone();
    let driver = cluster.driver();
    // The hot object, sealed on the driver's home node (node 0): the
    // broadcast policy every reader wants.
    let payload: Vec<u8> = (0..OBJECT_BYTES).map(|i| (i % 251) as u8).collect();
    let hot = driver.put(&payload).unwrap().id();
    // Canonical sealed bytes: every fetched copy, from any holder, in
    // either mode, must hash to exactly this.
    let expect = fnv(
        &driver.get_raw(hot, Duration::from_secs(5)).unwrap(),
        0xcbf2_9ce4_8422_2325,
    );

    let fetch_round = |measure: bool| -> Vec<(NodeId, NodeId, u64, u64)> {
        // Stable view for the whole round: holders from the table,
        // readers = every other alive node.
        let info = services.objects.get(hot).expect("hot object declared");
        let readers: Vec<NodeId> = services
            .alive_nodes()
            .into_iter()
            .filter(|n| !info.locations.contains(n))
            .collect();
        let handles: Vec<_> = readers
            .into_iter()
            .map(|reader| {
                let services = services.clone();
                let info = info.clone();
                std::thread::spawn(move || {
                    let src = info.holders_ranked(hot, reader)[0];
                    let agent = services.fetch_agent(reader).expect("reader alive");
                    let start = Instant::now();
                    let result = agent
                        .fetch_many(&[hot], src, Duration::from_secs(30))
                        .pop()
                        .expect("one object in, one result out");
                    let (bytes, _) = result.expect("hot object fetch");
                    let micros = start.elapsed().as_micros() as u64;
                    (reader, src, micros, fnv(&bytes, 0xcbf2_9ce4_8422_2325))
                })
            })
            .collect();
        let samples: Vec<(NodeId, NodeId, u64, u64)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Clean up transient reader copies (holders keep theirs) so the
        // next round fetches again — the steady stream of new readers a
        // real workload would supply.
        let holders_now = services.objects.get(hot).expect("still declared").locations;
        for (reader, _, _, _) in &samples {
            if !holders_now.contains(reader) {
                if let Some(store) = services.store(*reader) {
                    store.delete(hot);
                }
            }
        }
        let _ = measure;
        samples
    };

    // Round 0 primes demand (READERS remote reads at the producer).
    fetch_round(false);
    if replication_on {
        // Wait for the plane: producer's agent must place its replicas.
        let want = 1 + 2;
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let locations = services.objects.get(hot).expect("declared").locations;
            if locations.len() >= want {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "replication never happened: locations {locations:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    let mut per_holder: BTreeMap<NodeId, u64> = BTreeMap::new();
    let mut latencies_us = Vec::new();
    for _ in 0..rounds {
        for (_, src, micros, sum) in fetch_round(true) {
            // Value integrity: every copy, from any holder, is the
            // original payload bit for bit.
            assert_eq!(sum, expect, "holder {src} served corrupt bytes");
            *per_holder.entry(src).or_insert(0) += 1;
            latencies_us.push(micros);
        }
    }

    let mut holders = services.objects.get(hot).expect("declared").locations;
    holders.sort();
    let report = cluster.profile();
    let egress_wait_ms = services.fabric.stats.egress_wait_nanos.get() / 1_000_000;
    cluster.shutdown();
    RunResult {
        replication: replication_on,
        holders,
        per_holder,
        latencies_us,
        checksum: expect,
        replicas_created: report.replication.replicas_created,
        egress_wait_ms,
    }
}

fn main() {
    let rounds: usize = std::env::var("RTML_REPLICATION_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_ROUNDS);

    let off = run(false, rounds);
    let on = run(true, rounds);

    let rows: Vec<Vec<String>> = [&off, &on]
        .iter()
        .map(|r| {
            vec![
                if r.replication { "on" } else { "off" }.to_string(),
                r.holders.len().to_string(),
                r.per_holder.len().to_string(),
                format!("{:.2}", r.max_share()),
                format!("{} µs", r.percentile(0.5)),
                format!("{} µs", r.percentile(0.99)),
                r.replicas_created.to_string(),
                format!("{} ms", r.egress_wait_ms),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E12: hot-object replication ({READERS} readers, {} KiB object, {} rounds)",
            OBJECT_BYTES / 1024,
            rounds
        ),
        &[
            "replication",
            "holders",
            "holders used",
            "max share",
            "fetch p50",
            "fetch p99",
            "replicas",
            "egress wait",
        ],
        &rows,
    );

    // Structural self-asserts (the acceptance criteria).
    assert_eq!(
        off.checksum, on.checksum,
        "replication must not change fetched values"
    );
    assert!(
        on.holders.len() >= 3,
        "expected producer + 2 replicas, got {:?}",
        on.holders
    );
    assert!(
        on.per_holder.len() >= 2,
        "reads must spread across >= 2 holders: {:?}",
        on.per_holder
    );
    assert!(
        on.max_share() <= MAX_HOLDER_SHARE,
        "one holder served {:.2} of reads (> {MAX_HOLDER_SHARE}): {:?}",
        on.max_share(),
        on.per_holder
    );
    assert_eq!(
        off.per_holder.len(),
        1,
        "with replication off every read funnels to the producer"
    );
    assert!(
        on.percentile(0.5) < off.percentile(0.5),
        "spread reads must beat the single-holder funnel (p50 {} µs vs {} µs)",
        on.percentile(0.5),
        off.percentile(0.5),
    );
    println!(
        "\n(replication detected the hot object from per-object read demand and\n placed {} replicas; {} readers then spread across {} holders — max\n holder share {:.2} — cutting fetch p50 {} µs -> {} µs; with it off, all\n reads serialized on the producer's egress link, {} ms of queueing)",
        on.replicas_created,
        READERS,
        on.per_holder.len(),
        on.max_share(),
        off.percentile(0.5),
        on.percentile(0.5),
        off.egress_wait_ms,
    );

    let json = render_json(rounds, &off, &on);
    let path = "BENCH_replication.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

/// Hand-rolled JSON: stable key order, no deps.
fn render_json(rounds: usize, off: &RunResult, on: &RunResult) -> String {
    let side = |r: &RunResult| {
        let per_holder: Vec<String> = r
            .per_holder
            .iter()
            .map(|(n, c)| format!("\"{n}\": {c}"))
            .collect();
        format!(
            "{{\"holders\": {}, \"holders_used\": {}, \"max_share\": {:.3}, \"fetch_p50_micros\": {}, \"fetch_p99_micros\": {}, \"replicas_created\": {}, \"egress_wait_ms\": {}, \"per_holder\": {{{}}}}}",
            r.holders.len(),
            r.per_holder.len(),
            r.max_share(),
            r.percentile(0.5),
            r.percentile(0.99),
            r.replicas_created,
            r.egress_wait_ms,
            per_holder.join(", "),
        )
    };
    format!(
        "{{\n  \"readers\": {READERS},\n  \"rounds\": {rounds},\n  \"object_bytes\": {OBJECT_BYTES},\n  \"checksums_match\": {},\n  \"off\": {},\n  \"on\": {}\n}}\n",
        off.checksum == on.checksum,
        side(off),
        side(on),
    )
}
