//! E4 — Figure 2b: dynamic task-graph construction with MCTS.
//!
//! The task graph is built during execution: every simulation result
//! decides what to simulate next (R3). Compares sequential search with
//! `wait`-driven parallel search at several parallelism levels.
//!
//! Run: `cargo run -p rtml-bench --bin exp_mcts --release`

use std::time::Duration;

use rtml_bench::{fmt_duration, fmt_ratio, print_table};
use rtml_runtime::{Cluster, ClusterConfig};
use rtml_workloads::mcts::{self, MctsConfig, MctsFuncs};

fn main() {
    let base = MctsConfig {
        actions: 4,
        rollout_frames: 8,
        frame_cost: Duration::from_micros(700), // ≈ 5.6 ms per simulation
        budget: 96,
        parallelism: 1,
        ..MctsConfig::default()
    };

    let serial = mcts::run_serial(&base);
    let mut rows = vec![vec![
        "serial".into(),
        fmt_duration(serial.wall),
        format!(
            "{:.0}",
            serial.simulations as f64 / serial.wall.as_secs_f64()
        ),
        "1.0x".into(),
        serial.tree_size.to_string(),
    ]];

    let cluster = Cluster::start(ClusterConfig::local(2, 8)).unwrap();
    let funcs = MctsFuncs::register(&cluster);
    let driver = cluster.driver();
    for parallelism in [2usize, 4, 8, 16] {
        let config = MctsConfig {
            parallelism,
            ..base.clone()
        };
        let result = mcts::run_rtml(&config, &driver, &funcs).unwrap();
        assert_eq!(result.simulations, base.budget);
        rows.push(vec![
            format!("rtml, {parallelism} in flight"),
            fmt_duration(result.wall),
            format!(
                "{:.0}",
                result.simulations as f64 / result.wall.as_secs_f64()
            ),
            fmt_ratio(serial.wall.as_secs_f64() / result.wall.as_secs_f64()),
            result.tree_size.to_string(),
        ]);
    }
    cluster.shutdown();

    print_table(
        "E4: MCTS planning (Fig. 2b) — 96 simulations x ~5.6 ms, tree grown from completions",
        &["search", "wall", "sims/s", "speedup", "tree nodes"],
        &rows,
    );
    println!(
        "\n(every row expands exactly budget+1 tree nodes: parallel search\n preserves the search structure while tasks are created dynamically\n from whichever simulation finishes first — the paper's R3.)"
    );
}
