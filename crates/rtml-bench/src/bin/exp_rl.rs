//! E2 — the §4.2 RL application: serial vs BSP(Spark-model) vs rtml,
//! the paper's 63x headline. `--sweep` adds the A1 ablation over the
//! BSP per-task overhead.
//!
//! Run: `cargo run -p rtml-bench --bin exp_rl --release [-- --sweep]`

use std::time::Duration;

use rtml_baselines::{BspConfig, BspEngine};
use rtml_bench::{fmt_duration, print_table};
use rtml_runtime::{Cluster, ClusterConfig, NodeConfig};
use rtml_workloads::rl::{self, RlConfig, RlFuncs};

fn headline_config() -> RlConfig {
    RlConfig {
        rollouts: 16,
        frames_per_task: 10,
        frame_cost: Duration::from_micros(700), // ≈ 7 ms tasks (paper)
        iterations: 5,
        ..RlConfig::default()
    }
}

fn rtml_cluster() -> Cluster {
    Cluster::start(ClusterConfig {
        nodes: vec![
            NodeConfig::cpu_only(8).with_gpus(1.0),
            NodeConfig::cpu_only(8),
        ],
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn main() {
    let sweep = std::env::args().any(|a| a == "--sweep");
    let config = headline_config();

    let serial = rl::run_serial(&config);

    let bsp_engine = BspEngine::new(BspConfig::spark_calibrated(8));
    let bsp = rl::run_engine(&config, &bsp_engine);

    let cluster = rtml_cluster();
    let funcs = RlFuncs::register(&cluster);
    let driver = cluster.driver();
    let rtml = rl::run_rtml(&config, &driver, &funcs, true).unwrap();
    cluster.shutdown();

    assert_eq!(serial.checksum, bsp.checksum, "BSP result diverged");
    assert_eq!(serial.checksum, rtml.checksum, "rtml result diverged");

    let speedup = |wall: Duration| serial.wall.as_secs_f64() / wall.as_secs_f64();
    let rows = vec![
        vec![
            "single-threaded".into(),
            fmt_duration(serial.wall),
            "1.0x".into(),
            "1x (baseline)".into(),
        ],
        vec![
            "BSP (Spark model)".into(),
            fmt_duration(bsp.wall),
            format!("{:.2}x", speedup(bsp.wall)),
            "0.11x (9x slower)".into(),
        ],
        vec![
            "rtml".into(),
            fmt_duration(rtml.wall),
            format!("{:.2}x", speedup(rtml.wall)),
            "7x".into(),
        ],
    ];
    print_table(
        "E2: RL application, 5 iterations x 16 rollouts x ~7 ms tasks (paper §4.2)",
        &["implementation", "wall", "speedup vs serial", "paper"],
        &rows,
    );
    println!(
        "\nrtml vs BSP end-to-end: {:.0}x   (paper: 63x vs Spark)",
        bsp.wall.as_secs_f64() / rtml.wall.as_secs_f64()
    );
    println!(
        "checksums: all three implementations bit-identical ({:016x})",
        serial.checksum
    );

    if sweep {
        // A1: how the conclusion depends on the BSP overhead calibration.
        let mut rows = Vec::new();
        for overhead_ms in [0u64, 1, 5, 10, 20, 60] {
            let engine = BspEngine::new(BspConfig {
                workers: 8,
                per_task_overhead: Duration::from_millis(overhead_ms),
                per_stage_overhead: Duration::from_millis(100),
            });
            let result = rl::run_engine(&config, &engine);
            assert_eq!(result.checksum, serial.checksum);
            rows.push(vec![
                format!("{overhead_ms} ms"),
                fmt_duration(result.wall),
                format!(
                    "{:.2}x",
                    serial.wall.as_secs_f64() / result.wall.as_secs_f64()
                ),
            ]);
        }
        print_table(
            "A1: BSP per-task overhead sweep (stage overhead fixed at 100 ms)",
            &["per-task overhead", "wall", "speedup vs serial"],
            &rows,
        );
        println!("\n(the paper's 'Spark 9x slower' observation corresponds to the ~60 ms row;\n even 5 ms of per-task overhead already forfeits all parallel gains on 7 ms tasks)");
    }
}
