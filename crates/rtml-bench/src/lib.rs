//! Shared plumbing for the experiment binaries (`exp_*`) and criterion
//! benches that regenerate every quantitative claim in the paper.
//!
//! See `DESIGN.md` §5 for the experiment index (E1–E9, A1–A2) and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

use std::time::Duration;

/// Renders a fixed-width ASCII table, the format every `exp_*` binary
/// reports in.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a duration compactly for table cells.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Formats a ratio like `6.9x`.
pub fn fmt_ratio(value: f64) -> String {
    format!("{value:.1}x")
}

/// Mean and percentile summary of duration samples.
pub struct DurationStats {
    /// Sample mean.
    pub mean: Duration,
    /// Median.
    pub p50: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum.
    pub max: Duration,
}

impl DurationStats {
    /// Computes stats from samples (sorts a copy).
    pub fn from_samples(samples: &[Duration]) -> DurationStats {
        if samples.is_empty() {
            return DurationStats {
                mean: Duration::ZERO,
                p50: Duration::ZERO,
                p99: Duration::ZERO,
                max: Duration::ZERO,
            };
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        let pick = |q: f64| {
            let idx = ((sorted.len() as f64 * q).ceil() as usize)
                .saturating_sub(1)
                .min(sorted.len() - 1);
            sorted[idx]
        };
        DurationStats {
            mean: total / sorted.len() as u32,
            p50: pick(0.50),
            p99: pick(0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_samples() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let stats = DurationStats::from_samples(&samples);
        assert_eq!(stats.p50, Duration::from_millis(50));
        assert_eq!(stats.p99, Duration::from_millis(99));
        assert_eq!(stats.max, Duration::from_millis(100));
        assert_eq!(stats.mean, Duration::from_micros(50_500));
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = DurationStats::from_samples(&[]);
        assert_eq!(stats.mean, Duration::ZERO);
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(35)), "35.0 µs");
        assert_eq!(fmt_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(fmt_ratio(6.94), "6.9x");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["metric", "value"],
            &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
        );
    }
}
