//! Criterion bench for the per-node object store and cross-node
//! transfer path (the "shared memory" column of Figure 3).

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rtml_common::ids::{DriverId, NodeId, TaskId};
use rtml_net::{Fabric, FabricConfig, LatencyModel};
use rtml_store::{fetch_object, ObjectStore, StoreConfig, TransferDirectory, TransferService};

fn object(i: u64) -> rtml_common::ids::ObjectId {
    TaskId::driver_root(DriverId::from_index(42))
        .child(i)
        .return_object(0)
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(60);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    // put (with implicit eviction management).
    let store = ObjectStore::new(StoreConfig {
        node: NodeId(0),
        capacity_bytes: 64 << 20,
        ..StoreConfig::default()
    });
    let payload = Bytes::from(vec![7u8; 1024]);
    let mut i = 0u64;
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("put_1kb", |b| {
        b.iter(|| {
            i += 1;
            store.put(object(i), payload.clone()).unwrap()
        })
    });

    // get (zero-copy clone).
    let store = ObjectStore::new(StoreConfig::default());
    store.put(object(0), Bytes::from(vec![7u8; 1024])).unwrap();
    group.bench_function("get_1kb", |b| b.iter(|| store.get(object(0)).unwrap()));

    // Cross-node fetch at two payload sizes (zero fabric latency: the
    // bench isolates protocol overhead; exp_latency covers latency).
    for size_kb in [1usize, 256] {
        let fabric = Fabric::new(FabricConfig {
            latency: LatencyModel::Zero,
            ..FabricConfig::default()
        });
        let directory = TransferDirectory::new();
        let src = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: 1 << 30,
            ..StoreConfig::default()
        }));
        let dst = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(1),
            capacity_bytes: 1 << 30,
            ..StoreConfig::default()
        }));
        let _svc0 = TransferService::spawn(fabric.clone(), src.clone(), &directory);
        let _svc1 = TransferService::spawn(fabric.clone(), dst.clone(), &directory);
        src.put(object(9), Bytes::from(vec![1u8; size_kb * 1024]))
            .unwrap();
        group.throughput(Throughput::Bytes((size_kb * 1024) as u64));
        group.bench_with_input(
            BenchmarkId::new("fetch_remote", format!("{size_kb}kb")),
            &size_kb,
            |b, _| {
                b.iter(|| {
                    dst.delete(object(9));
                    fetch_object(
                        &fabric,
                        &directory,
                        &dst,
                        object(9),
                        &[NodeId(0)],
                        Duration::from_secs(5),
                    )
                    .unwrap()
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
