//! Criterion bench for E7: task throughput against control-plane shard
//! counts (R2).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rtml_runtime::{Cluster, ClusterConfig};

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_secs(1));
    const BATCH: usize = 200;
    group.throughput(Throughput::Elements(BATCH as u64));

    for shards in [1usize, 8] {
        let cluster = Cluster::start(
            ClusterConfig::local(2, 4)
                .with_kv_shards(shards)
                .without_event_log(),
        )
        .unwrap();
        let nop = cluster.register_fn1("nop_tp", |x: u64| Ok(x));
        let driver = cluster.driver();
        group.bench_with_input(BenchmarkId::new("noop_batch", shards), &shards, |b, _| {
            b.iter(|| {
                let futs: Vec<_> = (0..BATCH as u64)
                    .map(|i| driver.submit1(&nop, i).unwrap())
                    .collect();
                let (ready, _) = driver.wait(&futs, futs.len(), Duration::from_secs(60));
                assert_eq!(ready.len(), BATCH);
            })
        });
        cluster.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
