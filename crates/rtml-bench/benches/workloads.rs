//! Criterion bench for workload kernels and codec hot paths — the
//! per-task costs every experiment builds on.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use rtml_common::codec::{decode_from_slice, encode_to_bytes};
use rtml_common::ids::{DriverId, FunctionId, TaskId};
use rtml_common::resources::Resources;
use rtml_common::task::{ArgSpec, TaskSpec};
use rtml_workloads::atari::{AtariConfig, AtariSim};
use rtml_workloads::policy::{Device, LinearPolicy};

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(60);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    // Simulator step with no synthetic cost: pure state-machine work.
    let mut sim = AtariSim::new(
        AtariConfig {
            frame_cost: Duration::ZERO,
            obs_dim: 16,
            max_steps: u32::MAX,
        },
        7,
    );
    group.bench_function("atari_step", |b| b.iter(|| sim.step(1)));

    // Policy action: a real 16x4 mat-vec.
    let policy = LinearPolicy::new(16, 4, 9);
    let obs = vec![0.25f64; 16];
    group.bench_function("policy_act", |b| b.iter(|| policy.act(&obs)));

    // Batched actions on CPU (no kernel cost: pure math).
    let batch: Vec<Vec<f64>> = (0..32).map(|_| vec![0.1f64; 16]).collect();
    group.bench_function("policy_act_batch32", |b| {
        b.iter(|| policy.act_batch(&batch, Duration::ZERO, Device::Cpu))
    });

    // Codec hot path: task specs cross the control plane constantly.
    let root = TaskId::driver_root(DriverId::from_index(0));
    let spec = TaskSpec {
        task_id: root.child(1),
        function: FunctionId::from_name("bench"),
        args: vec![
            ArgSpec::Value(bytes::Bytes::from(vec![0u8; 64])),
            ArgSpec::ObjectRef(root.child(0).return_object(0)),
        ],
        num_returns: 1,
        resources: Resources::new(1.0, 0.5),
        submitter_node: rtml_common::ids::NodeId(0),
        attempt: 0,
        actor: None,
    };
    group.bench_function("taskspec_encode", |b| b.iter(|| encode_to_bytes(&spec)));
    let bytes = encode_to_bytes(&spec);
    group.bench_function("taskspec_decode", |b| {
        b.iter(|| decode_from_slice::<TaskSpec>(&bytes).unwrap())
    });

    // Policy serialization (the object the RL loop broadcasts).
    let big_policy = LinearPolicy::new(64, 16, 3);
    group.bench_function("policy_encode", |b| b.iter(|| encode_to_bytes(&big_policy)));
    let policy_bytes = encode_to_bytes(&big_policy);
    group.bench_function("policy_decode", |b| {
        b.iter(|| decode_from_slice::<LinearPolicy>(&policy_bytes).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
