//! Criterion bench for E1: the §4.1 latency microbenchmarks.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use rtml_common::resources::Resources;
use rtml_runtime::{Cluster, ClusterConfig, NodeConfig, TaskOptions};

fn bench_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("latency");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_secs(1));

    // Task creation: non-blocking submit.
    {
        let cluster = Cluster::start(ClusterConfig::local(1, 2).without_event_log()).unwrap();
        let nop = cluster.register_fn0("nop_create", || Ok(0u64));
        let driver = cluster.driver();
        let mut pending = Vec::new();
        group.bench_function("task_creation", |b| {
            b.iter(|| {
                pending.push(driver.submit0(&nop).unwrap());
                if pending.len() >= 64 {
                    for fut in pending.drain(..) {
                        let _ = driver.get(&fut);
                    }
                }
            })
        });
        for fut in pending.drain(..) {
            let _ = driver.get(&fut);
        }
        cluster.shutdown();
    }

    // Result retrieval of a local, sealed object.
    {
        let cluster = Cluster::start(ClusterConfig::local(1, 2).without_event_log()).unwrap();
        let nop = cluster.register_fn0("nop_get", || Ok(0u64));
        let driver = cluster.driver();
        let fut = driver.submit0(&nop).unwrap();
        let _ = driver.get(&fut).unwrap();
        group.bench_function("get_local_sealed", |b| b.iter(|| driver.get(&fut).unwrap()));
        cluster.shutdown();
    }

    // End-to-end empty task, locally scheduled.
    {
        let cluster = Cluster::start(ClusterConfig::local(1, 2).without_event_log()).unwrap();
        let nop = cluster.register_fn0("nop_e2e", || Ok(0u64));
        let driver = cluster.driver();
        group.bench_function("end_to_end_local", |b| {
            b.iter(|| {
                let fut = driver.submit0(&nop).unwrap();
                driver.get(&fut).unwrap()
            })
        });
        cluster.shutdown();
    }

    // End-to-end empty task forced onto a remote node.
    {
        let config = ClusterConfig {
            nodes: vec![
                NodeConfig::cpu_only(2),
                NodeConfig::cpu_only(2).with_custom("pin", 1.0),
            ],
            ..ClusterConfig::default()
        }
        .without_event_log();
        let cluster = Cluster::start(config).unwrap();
        let nop = cluster.register_fn0("nop_remote", || Ok(0u64));
        let driver = cluster.driver();
        let opts = TaskOptions::resources(Resources::cpu(1.0).with_custom("pin", 1.0));
        group.bench_function("end_to_end_remote", |b| {
            b.iter(|| {
                let fut = driver.submit0_opts(&nop, opts.clone()).unwrap();
                driver.get(&fut).unwrap()
            })
        });
        cluster.shutdown();
    }

    group.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
