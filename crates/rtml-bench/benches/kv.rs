//! Criterion bench for the control-plane KV store: the §3.2.1 substrate
//! (sub-millisecond scheduling depends on these being microsecond-class).

use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rtml_kv::KvStore;

fn bench_kv(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv");
    group.sample_size(60);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    for shards in [1usize, 8] {
        let kv = KvStore::new(shards);
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::new("set", shards), &shards, |b, _| {
            b.iter(|| {
                i += 1;
                kv.set(
                    Bytes::from(i.to_le_bytes().to_vec()),
                    Bytes::from_static(b"value"),
                );
            })
        });

        let kv = KvStore::new(shards);
        kv.set(Bytes::from_static(b"hot"), Bytes::from_static(b"v"));
        group.bench_with_input(BenchmarkId::new("get", shards), &shards, |b, _| {
            b.iter(|| kv.get(b"hot").unwrap())
        });

        let kv = KvStore::new(shards);
        kv.set(Bytes::from_static(b"ctr"), Bytes::from(vec![0u8; 8]));
        group.bench_with_input(BenchmarkId::new("update", shards), &shards, |b, _| {
            b.iter(|| {
                kv.update(Bytes::from_static(b"ctr"), |cur| {
                    let mut a = [0u8; 8];
                    a.copy_from_slice(cur.unwrap());
                    let n = u64::from_le_bytes(a).wrapping_add(1);
                    Some(Bytes::from(n.to_le_bytes().to_vec()))
                })
            })
        });

        let kv = KvStore::new(shards);
        let mut j = 0u64;
        group.bench_with_input(BenchmarkId::new("append", shards), &shards, |b, _| {
            b.iter(|| {
                j += 1;
                // Rotate keys so logs stay short.
                kv.append(
                    Bytes::from(format!("log{}", j % 64)),
                    Bytes::from_static(b"record"),
                );
            })
        });
    }

    // Pub-sub notification latency: set -> subscriber receives.
    let kv = KvStore::new(4);
    let (cur, rx) = kv.subscribe(Bytes::from_static(b"watched"));
    assert!(cur.is_none());
    group.bench_function("set_and_notify", |b| {
        b.iter(|| {
            kv.set(Bytes::from_static(b"watched"), Bytes::from_static(b"v"));
            rx.recv().unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_kv);
criterion_main!(benches);
