//! Criterion bench: submit→execute round-trip rate per batch size.
//!
//! Complements `exp_submit_throughput` (which isolates the submission
//! and ingest layers and writes JSON) with criterion's statistical
//! machinery over the full cycle: submit a batch, wait for every result.
//! Draining each iteration keeps the scheduler queue depth flat so
//! iterations are comparable.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rtml_runtime::{Cluster, ClusterConfig};

fn bench_submit(c: &mut Criterion) {
    let mut group = c.benchmark_group("submit_batch_roundtrip");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));

    for batch in [1usize, 16, 256] {
        let cluster =
            Cluster::start(ClusterConfig::local(1, 2).with_event_log_retention(4096)).unwrap();
        let nop = cluster.register_fn1(&format!("nop_submit_{batch}"), |x: u64| Ok(x));
        let driver = cluster.driver();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            b.iter(|| {
                let futs = if batch == 1 {
                    vec![driver.submit1(&nop, 0u64).unwrap()]
                } else {
                    driver.submit_batch(&nop, 0..batch as u64).unwrap()
                };
                let (ready, _) = driver.wait(&futs, futs.len(), Duration::from_secs(60));
                assert_eq!(ready.len(), batch);
            })
        });
        cluster.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_submit);
criterion_main!(benches);
