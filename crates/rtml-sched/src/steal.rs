//! Pull-based, locality-aware work stealing — the fourth per-node
//! plane, after the batched control plane (PR 2), the chunked transfer
//! plane (PR 3), and the demand-driven replication plane (PR 4).
//!
//! Spillover (the paper's §3.2.2 mechanism) is **push**-based and
//! decided once, at ingest: a burst submitted to one node under a lax
//! spill rule drains serially while every other core idles. Stealing
//! inverts the flow: an **idle** local scheduler (empty ready queue,
//! spare resources) consults the load reports every node already
//! publishes to the kv store, picks a victim whose backlog exceeds
//! [`StealConfig::min_backlog`], and sends a single
//! [`crate::wire::SchedWire::StealRequest`] over the fabric. The victim
//! answers with one [`crate::wire::SchedWire::StealGrant`] batch of
//! not-yet-dispatched ready tasks — never one message per task — after
//! group-committing the ownership transfer to the task table
//! (`record_many` with `Queued(thief)`), so a thief crash after the
//! grant is recovered by the same lineage replay that covers any other
//! lost queue.
//!
//! Locality: the victim scores its ready candidates by the bytes of
//! their dependencies already resident on the thief (one batched
//! `ObjectTable::get_many` sweep over the candidates' distinct
//! dependencies plus the thief's shipped residency hint — never a
//! per-object probe), and grants the best-scoring tasks first. Victim
//! *selection* on the thief side is power-of-two-choices with a
//! shared-working-set locality tiebreak ([`crate::policy::choose_victim`]).

use std::time::Duration;

use rtml_common::metrics::{Counter, Histogram};
use rtml_common::resources::Resources;

/// When (and how hard) an idle local scheduler steals.
#[derive(Clone, Debug)]
pub struct StealConfig {
    /// Master switch. Off: no steal requests are sent and incoming
    /// requests are answered with empty grants.
    pub enabled: bool,
    /// A peer is a candidate victim only while its kv-published ready
    /// backlog exceeds this. Mirrors the spill threshold's role: small
    /// queues drain faster locally than a steal round trip.
    pub min_backlog: u32,
    /// Maximum tasks per grant. The victim also never gives away more
    /// than half its ready queue per request, so repeated steals
    /// converge instead of ping-ponging the whole backlog.
    pub max_tasks: usize,
    /// Minimum delay between steal attempts from one scheduler (the
    /// idle-poll cadence).
    pub interval: Duration,
    /// How long the thief waits for a grant before declaring the
    /// request lost (victim died mid-request) and re-arming its steal
    /// loop.
    pub timeout: Duration,
    /// Cap on the resident-object ids shipped in the request as the
    /// thief's locality hint.
    pub hint_objects: usize,
    /// Retry discipline for the steal loop: consecutive fruitless
    /// attempts (timeouts, empty grants) back the re-arm pause off
    /// exponentially from `interval` toward `retry.cap`, instead of
    /// hammering a flat cadence into a partition.
    pub retry: rtml_common::retry::RetryPolicy,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig {
            enabled: true,
            min_backlog: 4,
            max_tasks: 16,
            interval: Duration::from_millis(1),
            timeout: Duration::from_millis(25),
            hint_objects: 64,
            retry: rtml_common::retry::RetryPolicy::default(),
        }
    }
}

impl StealConfig {
    /// Disabled config (for ablations and stealing-off baselines).
    pub fn disabled() -> Self {
        StealConfig {
            enabled: false,
            ..StealConfig::default()
        }
    }
}

/// Live counters for one scheduler's steal plane (thief and victim
/// sides share the struct; a node is usually both over its lifetime).
#[derive(Debug, Default)]
pub struct StealStats {
    /// Steal requests sent (thief side).
    pub attempts: Counter,
    /// Non-empty grants received (thief side).
    pub grants: Counter,
    /// Empty grants received — the stale-victim answer: the victim's
    /// queue drained between the load report and the request.
    pub empty_grants: Counter,
    /// Requests that timed out without any grant (victim died).
    pub timeouts: Counter,
    /// Tasks received via grants (thief side).
    pub tasks_stolen: Counter,
    /// Stolen tasks that arrived with at least one dependency already
    /// resident in the thief's store — the locality scoring working.
    pub locality_hits: Counter,
    /// Tasks handed out via grants (victim side).
    pub tasks_granted: Counter,
    /// Grant-arrival → worker-dispatch latency per stolen task.
    pub steal_to_run: Histogram,
}

/// Plans one steal grant over the victim's ready queue.
///
/// `candidates[i]` is `(resources, thief_local_bytes)` for the ready
/// task at queue position `i` (front first). Returns the positions to
/// grant, in preference order. The rules, in order:
///
/// - never grant more than **half** the ready queue (the victim keeps
///   work for its own cores; repeated steals converge geometrically),
///   and never more than `max_tasks`;
/// - prefer tasks with more dependency bytes already resident on the
///   thief (locality), tie-broken toward the **back** of the queue —
///   the head is closest to dispatch and its dependencies are already
///   pinned locally;
/// - every granted task must **individually** fit the thief's spare
///   `capacity` (a feasibility filter — never grant a GPU task to a
///   CPU thief), but the batch is *not* capped at the capacity sum:
///   the thief queues beyond its instantaneous headroom so its workers
///   stay fed between steal round trips, and peers re-steal any
///   surplus. Capping at the sum degenerates every grant to
///   one-task-per-idle-worker — exactly the per-task messaging this
///   plane exists to avoid.
///
/// Pure function — the proptest suite drives it directly to show a
/// grant never drops or duplicates a task.
pub fn plan_steal_grant(
    candidates: &[(Resources, u64)],
    capacity: &Resources,
    max_tasks: usize,
) -> Vec<usize> {
    let quota = (candidates.len() / 2).min(max_tasks);
    if quota == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| candidates[b].1.cmp(&candidates[a].1).then(b.cmp(&a)));
    let mut picks = Vec::with_capacity(quota);
    for idx in order {
        if picks.len() == quota {
            break;
        }
        if capacity.fits(&candidates[idx].0) {
            picks.push(idx);
        }
    }
    picks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu(n: f64) -> Resources {
        Resources::cpu(n)
    }

    #[test]
    fn grants_at_most_half_the_queue() {
        let candidates: Vec<(Resources, u64)> = (0..8).map(|_| (cpu(1.0), 0)).collect();
        let picks = plan_steal_grant(&candidates, &cpu(100.0), 100);
        assert_eq!(picks.len(), 4);
        // A queue of one is never robbed of its only task.
        assert!(plan_steal_grant(&candidates[..1], &cpu(100.0), 100).is_empty());
        assert!(plan_steal_grant(&[], &cpu(100.0), 100).is_empty());
    }

    #[test]
    fn max_tasks_caps_the_grant() {
        let candidates: Vec<(Resources, u64)> = (0..20).map(|_| (cpu(1.0), 0)).collect();
        assert_eq!(plan_steal_grant(&candidates, &cpu(100.0), 3).len(), 3);
        assert!(plan_steal_grant(&candidates, &cpu(100.0), 0).is_empty());
    }

    #[test]
    fn prefers_thief_local_bytes_then_the_back_of_the_queue() {
        let candidates = vec![
            (cpu(1.0), 0),   // head: no local bytes
            (cpu(1.0), 500), // most thief-local bytes: granted first
            (cpu(1.0), 0),   // back: preferred over the head on ties
            (cpu(1.0), 0),
        ];
        let picks = plan_steal_grant(&candidates, &cpu(100.0), 2);
        assert_eq!(picks, vec![1, 3]);
    }

    #[test]
    fn capacity_filters_infeasible_tasks_without_capping_the_batch() {
        let candidates = vec![
            (cpu(4.0), 900), // best locality but can never run on the thief
            (cpu(1.0), 10),
            (cpu(1.0), 5),
            (cpu(1.0), 0),
            (cpu(1.0), 0),
            (cpu(1.0), 0),
        ];
        // 2 spare cpus: the 4-cpu task is skipped, but the grant is NOT
        // capped at 2 tasks — the thief queues ahead of its workers.
        let picks = plan_steal_grant(&candidates, &cpu(2.0), 8);
        assert_eq!(picks, vec![1, 2, 5]);
    }
}
