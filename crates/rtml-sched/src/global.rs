//! The global scheduler (paper §3.2.2), sharded.
//!
//! Receives spilled tasks from local schedulers over the fabric, and
//! places each on a node chosen from cluster-wide information: per-node
//! load reports (pushed by local schedulers) and object locality (read
//! from the object table). Placements are sent back over the fabric to
//! the chosen node's local scheduler — every hop through here costs
//! cross-node latency, which is exactly why the hybrid design keeps the
//! common case local.
//!
//! # Sharding
//!
//! A single global scheduler serializes every placement, capping submit
//! throughput (requirement R2). The scheduler therefore runs as `K`
//! independent shards: the **task keyspace** is partitioned by the same
//! FNV-64 fold that routes every other id in the system
//! ([`rtml_common::ids::UniqueId::bucket`]), and a local scheduler sends
//! each spilled task to the shard owning its `TaskId` (see
//! [`GlobalRoutes`]). Node state (`NodeUp`/`NodeDown`/`Load`) is
//! broadcast to every shard, so each shard holds a full replica of the
//! cluster view and places without cross-shard locks.
//!
//! Placement under the paper policies is a pure function of the task
//! spec and the load view ([`crate::policy`]), so partitioning a batch
//! across shards cannot change where any task goes — determinism
//! survives sharding by construction. What shards *cannot* see is each
//! other's in-flight placements between load reports; the **load
//! digest** ([`rtml_kv::LoadDigestTable`]) closes that gap: after every
//! batch a shard group-commits its placed-since-report counters to the
//! kv store, and every shard folds the sibling digests into its
//! effective load view at the next batch.
//!
//! Tasks that currently fit no node (e.g. GPU demand while the only GPU
//! node is down) are **parked** and retried whenever the cluster view
//! changes (new load report, node up).

use std::collections::VecDeque;

use crossbeam::channel::{unbounded, Receiver, Sender};

use rtml_common::codec::{decode_from_slice, Codec};
use rtml_common::collections::{fast_map_with_capacity, FastMap};
use rtml_common::event::{Component, Event, EventKind};
use rtml_common::ids::{NodeId, TaskId};
use rtml_common::metrics::Counter;
use rtml_common::task::TaskSpec;
use rtml_kv::{DigestEntry, EventLog, LoadDigest, LoadDigestTable, ObjectTable};
use rtml_net::{Fabric, NetAddress};

use crate::msg::LoadReport;
use crate::policy::{LoadView, PlacementPolicy, PolicyState, DEFAULT_TOP_K};
use crate::wire::SchedWire;

/// Placement attempts before a task is parked to await a cluster change
/// (guards against local/global ping-pong on stale state).
const MAX_HOPS: u32 = 8;

/// Static configuration for the global scheduler.
#[derive(Clone, Debug)]
pub struct GlobalSchedulerConfig {
    /// Node hosting the global scheduler (its fabric endpoints live
    /// there; co-located components reach it without paying latency).
    pub host_node: NodeId,
    /// Placement policy.
    pub policy: PlacementPolicy,
    /// Seed for randomized policies.
    pub seed: u64,
    /// Number of independent scheduler shards (≥ 1). The task keyspace
    /// is FNV-partitioned across them; every shard sees every node.
    pub shards: usize,
}

impl Default for GlobalSchedulerConfig {
    fn default() -> Self {
        GlobalSchedulerConfig {
            host_node: NodeId(0),
            policy: PlacementPolicy::LocalityAware,
            seed: 0x5eed,
            shards: 1,
        }
    }
}

/// Shard routing table handed to every local scheduler: which fabric
/// address owns which slice of the task keyspace.
///
/// Cheap to clone (the address list is shared). Routing uses the same
/// FNV-64 fold as every other keyspace partition in the system, so a
/// task's owning shard is a pure function of its id.
#[derive(Clone, Debug)]
pub struct GlobalRoutes {
    addresses: std::sync::Arc<Vec<NetAddress>>,
}

impl GlobalRoutes {
    /// Builds routes over the shard addresses, in shard order.
    pub fn new(addresses: Vec<NetAddress>) -> Self {
        assert!(!addresses.is_empty(), "at least one global shard");
        GlobalRoutes {
            addresses: std::sync::Arc::new(addresses),
        }
    }

    /// Routes for an unsharded (K = 1) global scheduler.
    pub fn single(address: NetAddress) -> Self {
        GlobalRoutes::new(vec![address])
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.addresses.len()
    }

    /// The shard owning `task`'s slice of the keyspace.
    pub fn shard_of(&self, task: TaskId) -> usize {
        task.bucket(self.addresses.len())
    }

    /// Fabric address of the shard owning `task`.
    pub fn address_for(&self, task: TaskId) -> NetAddress {
        self.addresses[self.shard_of(task)]
    }

    /// Fabric address of shard `shard`.
    pub fn address_of(&self, shard: usize) -> NetAddress {
        self.addresses[shard]
    }

    /// Every shard address, in shard order (broadcast targets for node
    /// lifecycle and load messages).
    pub fn all(&self) -> &[NetAddress] {
        &self.addresses
    }
}

/// Aggregate counters for experiments (one instance per shard).
#[derive(Debug, Default)]
pub struct GlobalStats {
    /// Tasks received via spill.
    pub spills: Counter,
    /// Placements issued.
    pub placements: Counter,
    /// Tasks currently or ever parked.
    pub parked: Counter,
    /// Nodes currently known (NodeUp received, not NodeDown). Used by the
    /// cluster to barrier on formation before accepting work.
    pub nodes_known: std::sync::atomic::AtomicUsize,
}

enum Control {
    Shutdown,
}

struct ShardHandle {
    address: NetAddress,
    control: Sender<Control>,
    join: Option<std::thread::JoinHandle<()>>,
    stats: std::sync::Arc<GlobalStats>,
}

/// Running handle over all global-scheduler shards.
pub struct GlobalSchedulerHandle {
    shards: Vec<ShardHandle>,
    routes: GlobalRoutes,
}

impl GlobalSchedulerHandle {
    /// The shard routing table local schedulers spill through.
    pub fn routes(&self) -> GlobalRoutes {
        self.routes.clone()
    }

    /// Fabric address of shard 0 (the primary; with K = 1 this is the
    /// single global scheduler's address).
    pub fn address(&self) -> NetAddress {
        self.shards[0].address
    }

    /// Number of shards running.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard 0's live counters (the whole scheduler's when K = 1).
    pub fn stats(&self) -> &GlobalStats {
        &self.shards[0].stats
    }

    /// Live counters of shard `shard`.
    pub fn shard_stats(&self, shard: usize) -> &GlobalStats {
        &self.shards[shard].stats
    }

    /// `(spills, placements, parked)` summed across shards.
    pub fn totals(&self) -> (u64, u64, u64) {
        self.shards.iter().fold((0, 0, 0), |acc, s| {
            (
                acc.0 + s.stats.spills.get(),
                acc.1 + s.stats.placements.get(),
                acc.2 + s.stats.parked.get(),
            )
        })
    }

    /// The minimum `nodes_known` across shards — the cluster formation
    /// barrier: every shard must see every node before work is admitted.
    pub fn nodes_known_min(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.stats
                    .nodes_known
                    .load(std::sync::atomic::Ordering::Acquire)
            })
            .min()
            .unwrap_or(0)
    }

    /// Requests shutdown and joins every shard thread.
    pub fn shutdown(&mut self) {
        for shard in &self.shards {
            let _ = shard.control.send(Control::Shutdown);
        }
        for shard in &mut self.shards {
            if let Some(join) = shard.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl Drop for GlobalSchedulerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Namespace for spawning the global scheduler.
pub struct GlobalScheduler;

impl GlobalScheduler {
    /// Spawns `config.shards` independent scheduler shard threads.
    pub fn spawn(
        config: GlobalSchedulerConfig,
        fabric: std::sync::Arc<Fabric>,
        objects: ObjectTable,
        events: EventLog,
        digests: LoadDigestTable,
    ) -> GlobalSchedulerHandle {
        let num_shards = config.shards.max(1);
        let mut shards = Vec::with_capacity(num_shards);
        let mut addresses = Vec::with_capacity(num_shards);
        for shard in 0..num_shards {
            let endpoint = fabric.register(config.host_node, &format!("global-sched-{shard}"));
            let address = endpoint.address();
            addresses.push(address);
            let (control_tx, control_rx) = unbounded();
            let stats = std::sync::Arc::new(GlobalStats::default());
            let stats2 = stats.clone();
            let config2 = config.clone();
            let fabric2 = fabric.clone();
            let objects2 = objects.clone();
            let events2 = events.clone();
            let digests2 = digests.clone();
            let join = std::thread::Builder::new()
                .name(format!("rtml-gsched-{shard}"))
                .spawn(move || {
                    let seed = config2.seed ^ (shard as u64).wrapping_mul(0x9e37_79b9);
                    let mut core = GlobalCore {
                        config: config2,
                        shard: shard as u32,
                        num_shards,
                        fabric: fabric2,
                        objects: objects2,
                        events: events2,
                        digests: digests2,
                        address,
                        loads: FastMap::default(),
                        scheds: FastMap::default(),
                        placed_since: FastMap::default(),
                        parked: VecDeque::new(),
                        policy_state: PolicyState::new(seed),
                        stats: stats2,
                    };
                    core.run(endpoint, control_rx);
                })
                .expect("spawn global scheduler shard");
            shards.push(ShardHandle {
                address,
                control: control_tx,
                join: Some(join),
                stats,
            });
        }
        GlobalSchedulerHandle {
            shards,
            routes: GlobalRoutes::new(addresses),
        }
    }
}

struct GlobalCore {
    config: GlobalSchedulerConfig,
    shard: u32,
    num_shards: usize,
    fabric: std::sync::Arc<Fabric>,
    objects: ObjectTable,
    events: EventLog,
    digests: LoadDigestTable,
    address: NetAddress,
    /// Per-node load and reachability. Deterministic FNV maps: layout is
    /// a function of insertion history, and placement never iterates
    /// them without an explicit total order.
    loads: FastMap<NodeId, LoadReport>,
    scheds: FastMap<NodeId, NetAddress>,
    /// This shard's placements since each node's current load report —
    /// folded into its own view every batch and published as the load
    /// digest for sibling shards.
    placed_since: FastMap<NodeId, DigestEntry>,
    parked: VecDeque<(TaskSpec, u32)>,
    policy_state: PolicyState,
    stats: std::sync::Arc<GlobalStats>,
}

impl GlobalCore {
    fn run(&mut self, endpoint: rtml_net::Endpoint, control: Receiver<Control>) {
        loop {
            crossbeam::channel::select! {
                recv(endpoint.receiver()) -> msg => match msg {
                    Ok(delivery) => self.on_net(delivery.payload),
                    Err(_) => break,
                },
                recv(control) -> msg => match msg {
                    Ok(Control::Shutdown) | Err(_) => break,
                },
            }
        }
        if self.num_shards > 1 {
            self.digests.clear(self.shard);
        }
        self.fabric.unregister(self.address);
    }

    fn on_net(&mut self, payload: bytes::Bytes) {
        match decode_from_slice::<SchedWire>(&payload) {
            Ok(SchedWire::Spill(spec)) => {
                self.stats.spills.inc();
                self.place(spec, 0);
            }
            Ok(SchedWire::SpillBatch(specs)) => {
                self.stats.spills.add(specs.len() as u64);
                self.place_batch(specs, 0);
            }
            Ok(SchedWire::Place { spec, hops }) => {
                // A local scheduler bounced a placement (stale capacity);
                // try again with the hop count preserved.
                self.place(spec, hops);
            }
            Ok(SchedWire::PlaceBatch { specs, hops }) => {
                self.place_batch(specs, hops);
            }
            Ok(SchedWire::Load(report)) => {
                // A fresh report already observed every earlier placement
                // in the queue it measured: retire the digest counters it
                // supersedes.
                if let Some(entry) = self.placed_since.get(&report.node) {
                    if entry.version < report.at_nanos {
                        self.placed_since.remove(&report.node);
                    }
                }
                self.loads.insert(report.node, report);
                self.update_known();
                self.retry_parked();
            }
            Ok(SchedWire::NodeUp {
                node,
                sched_address,
            }) => {
                self.scheds
                    .insert(node, NetAddress::from_u64(sched_address));
                self.update_known();
                self.retry_parked();
            }
            Ok(SchedWire::NodeDown { node }) => {
                self.loads.remove(&node);
                self.scheds.remove(&node);
                self.placed_since.remove(&node);
                self.update_known();
            }
            // Steal traffic flows local → local by design; a misrouted
            // frame carries nothing the global scheduler can act on.
            Ok(SchedWire::StealRequest { .. }) | Ok(SchedWire::StealGrant { .. }) => {}
            Err(_) => {}
        }
    }

    fn place(&mut self, spec: TaskSpec, hops: u32) {
        self.place_batch(vec![spec], hops);
    }

    /// The effective load view for one batch: reachable nodes' reports
    /// with this shard's own and every sibling's placed-since-report
    /// counters folded in (version-matched — a newer report already
    /// includes them).
    fn effective_view(&self) -> LoadView {
        let mut effective: FastMap<NodeId, LoadReport> = fast_map_with_capacity(self.loads.len());
        for (node, report) in &self.loads {
            if !self.scheds.contains_key(node) {
                continue;
            }
            let mut report = report.clone();
            if let Some(entry) = self.placed_since.get(node) {
                if entry.version == report.at_nanos {
                    report.ready = report.ready.saturating_add(entry.placed as u32);
                }
            }
            effective.insert(*node, report);
        }
        if self.num_shards > 1 {
            for digest in self.digests.sweep(self.shard, self.num_shards as u32) {
                for entry in digest.entries {
                    if let Some(report) = effective.get_mut(&entry.node) {
                        if entry.version == report.at_nanos {
                            report.ready = report.ready.saturating_add(entry.placed as u32);
                        }
                    }
                }
            }
        }
        LoadView::build(effective, DEFAULT_TOP_K)
    }

    /// Records a placement in this shard's digest, keyed to the load
    /// report it was decided against.
    fn note_placed(&mut self, node: NodeId) {
        let version = self.loads.get(&node).map(|l| l.at_nanos).unwrap_or(0);
        let entry = self.placed_since.entry(node).or_insert(DigestEntry {
            node,
            version,
            placed: 0,
        });
        if entry.version != version {
            entry.version = version;
            entry.placed = 0;
        }
        entry.placed += 1;
    }

    /// Publishes this shard's digest as one group-committed kv write so
    /// sibling shards can fold it into their next batch's view.
    fn publish_digest(&self) {
        let mut entries: Vec<DigestEntry> = self.placed_since.values().cloned().collect();
        entries.sort_unstable_by_key(|e| e.node);
        self.digests.publish(self.shard, &LoadDigest { entries });
    }

    /// Places a batch of tasks with one cluster-view snapshot, then
    /// coalesces all placements destined for the same node into a single
    /// `PlaceBatch` frame — a spilled burst pays one fabric hop per
    /// destination instead of one per task.
    ///
    /// Each task's placement is a pure function of `(spec, view)`: the
    /// snapshot is not mutated mid-batch, so splitting this batch across
    /// shards sharing the view would place every task identically (the
    /// sharded-equals-single determinism property). Equal candidates are
    /// spread by the per-task hash inside the policy; batch-to-batch
    /// spreading comes from folding `placed_since` into the next view.
    fn place_batch(&mut self, specs: Vec<TaskSpec>, hops: u32) {
        if specs.is_empty() {
            return;
        }
        if hops >= MAX_HOPS {
            for spec in specs {
                self.park(spec, hops);
            }
            return;
        }
        let started = std::time::Instant::now();
        let view = self.effective_view();
        let mut groups: FastMap<NodeId, Vec<TaskSpec>> = FastMap::default();
        let at_nanos = rtml_common::time::now_nanos();
        let mut events = Vec::with_capacity(specs.len() + 1);
        for spec in specs {
            let choice =
                self.config
                    .policy
                    .place(&spec, &view, &self.objects, &mut self.policy_state);
            match choice {
                Some(node) => {
                    events.push(Event {
                        at_nanos,
                        component: Component::GlobalScheduler,
                        kind: EventKind::TaskPlaced {
                            task: spec.task_id,
                            node,
                        },
                    });
                    self.note_placed(node);
                    groups.entry(node).or_default().push(spec);
                }
                None => self.park(spec, hops),
            }
        }
        let placed: u32 = groups.values().map(|g| g.len() as u32).sum();
        // One span per batch, riding the same frame as the per-task
        // placement events (same component → no extra kv append).
        events.push(Event::now(
            Component::GlobalScheduler,
            EventKind::PlacementBatch {
                node: self.config.host_node,
                shard: self.shard,
                tasks: placed,
                micros: started.elapsed().as_micros() as u64,
            },
        ));
        self.events.append_many(self.config.host_node, events);
        if self.num_shards > 1 && !groups.is_empty() {
            self.publish_digest();
        }
        // Deterministic send order regardless of map layout.
        let mut groups: Vec<(NodeId, Vec<TaskSpec>)> = groups.into_iter().collect();
        groups.sort_unstable_by_key(|(node, _)| *node);
        for (node, group) in groups {
            let Some(target) = self.scheds.get(&node).copied() else {
                for spec in group {
                    self.park(spec, hops);
                }
                continue;
            };
            let count = group.len() as u64;
            let msg = if count == 1 {
                SchedWire::Place {
                    spec: group.into_iter().next().expect("len checked"),
                    hops: hops + 1,
                }
            } else {
                SchedWire::PlaceBatch {
                    specs: group,
                    hops: hops + 1,
                }
            };
            // Pre-size the frame encode: ~96 bytes per spec covers the
            // common small-spec case without a doubling series.
            let mut w = rtml_common::codec::Writer::with_capacity(32 + 96 * count as usize);
            msg.encode(&mut w);
            if self
                .fabric
                .send(self.address, target, w.into_bytes())
                .is_ok()
            {
                self.stats.placements.add(count);
            } else {
                // The node vanished mid-send; forget it and park.
                self.scheds.remove(&node);
                self.loads.remove(&node);
                self.placed_since.remove(&node);
                match msg {
                    SchedWire::Place { spec, hops } => self.park(spec, hops),
                    SchedWire::PlaceBatch { specs, hops } => {
                        for spec in specs {
                            self.park(spec, hops);
                        }
                    }
                    _ => unreachable!("constructed above"),
                }
            }
        }
    }

    /// A node counts as known once it is both reachable (NodeUp) and has
    /// reported load — i.e. it is a viable placement candidate.
    fn update_known(&self) {
        let known = self
            .scheds
            .keys()
            .filter(|n| self.loads.contains_key(n))
            .count();
        self.stats
            .nodes_known
            .store(known, std::sync::atomic::Ordering::Release);
    }

    fn park(&mut self, spec: TaskSpec, hops: u32) {
        self.stats.parked.inc();
        self.parked.push_back((spec, hops.min(MAX_HOPS - 1)));
    }

    fn retry_parked(&mut self) {
        let mut batch: VecDeque<(TaskSpec, u32)> = std::mem::take(&mut self.parked);
        while let Some((spec, hops)) = batch.pop_front() {
            self.place(spec, hops);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::codec::encode_to_bytes;
    use rtml_common::ids::{DriverId, FunctionId, TaskId};
    use rtml_common::resources::Resources;
    use rtml_kv::KvStore;
    use rtml_net::FabricConfig;
    use std::time::Duration;

    struct Rig {
        fabric: std::sync::Arc<Fabric>,
        kv: std::sync::Arc<KvStore>,
        handle: GlobalSchedulerHandle,
    }

    fn rig_sharded(policy: PlacementPolicy, shards: usize) -> Rig {
        let fabric = Fabric::new(FabricConfig::default());
        let kv = KvStore::new(2);
        let handle = GlobalScheduler::spawn(
            GlobalSchedulerConfig {
                host_node: NodeId(0),
                policy,
                seed: 7,
                shards,
            },
            fabric.clone(),
            ObjectTable::new(kv.clone()),
            EventLog::new(kv.clone()),
            LoadDigestTable::new(kv.clone()),
        );
        Rig { fabric, kv, handle }
    }

    fn rig(policy: PlacementPolicy) -> Rig {
        rig_sharded(policy, 1)
    }

    /// Announces a fake node to every shard (NodeUp + Load broadcast,
    /// exactly like a real local scheduler).
    fn fake_node(rig: &Rig, node: NodeId, queue: u32, total: Resources) -> rtml_net::Endpoint {
        let endpoint = rig.fabric.register(node, "fake-local");
        for target in rig.handle.routes().all() {
            let up = SchedWire::NodeUp {
                node,
                sched_address: endpoint.address().as_u64(),
            };
            rig.fabric
                .send(endpoint.address(), *target, encode_to_bytes(&up))
                .unwrap();
            let load = SchedWire::Load(LoadReport {
                node,
                sched_address: endpoint.address().as_u64(),
                ready: queue,
                waiting: 0,
                running: 0,
                idle_workers: 1,
                available: total.clone(),
                total: total.clone(),
                at_nanos: 0,
            });
            rig.fabric
                .send(endpoint.address(), *target, encode_to_bytes(&load))
                .unwrap();
        }
        endpoint
    }

    fn spill(rig: &Rig, from: &rtml_net::Endpoint, spec: TaskSpec) {
        let target = rig.handle.routes().address_for(spec.task_id);
        rig.fabric
            .send(
                from.address(),
                target,
                encode_to_bytes(&SchedWire::Spill(spec)),
            )
            .unwrap();
    }

    fn expect_place(endpoint: &rtml_net::Endpoint) -> TaskSpec {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .expect("timed out waiting for placement");
            let d = endpoint
                .receiver()
                .recv_timeout(remaining)
                .expect("delivery");
            if let Ok(SchedWire::Place { spec, .. }) = decode_from_slice(&d.payload) {
                return spec;
            }
        }
    }

    fn task(idx: u64, resources: Resources) -> TaskSpec {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let mut spec = TaskSpec::simple(root.child(idx), FunctionId::from_name("f"), vec![]);
        spec.resources = resources;
        spec
    }

    fn wait_counter(counter: &rtml_common::metrics::Counter, expected: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while counter.get() != expected {
            assert!(
                std::time::Instant::now() < deadline,
                "counter stuck at {} (expected {expected})",
                counter.get()
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn places_on_least_loaded() {
        let mut r = rig(PlacementPolicy::LeastLoaded);
        let busy = fake_node(&r, NodeId(1), 10, Resources::cpu(4.0));
        let idle = fake_node(&r, NodeId(2), 0, Resources::cpu(4.0));
        std::thread::sleep(Duration::from_millis(20)); // let loads land
        spill(&r, &busy, task(0, Resources::cpu(1.0)));
        let placed = expect_place(&idle);
        assert_eq!(placed.task_id, task(0, Resources::cpu(1.0)).task_id);
        // With zero fabric latency, delivery is synchronous inside the
        // scheduler's send: observing the Place does not order-after the
        // scheduler's own counter updates, so give them a bounded wait.
        wait_counter(&r.handle.stats().spills, 1);
        wait_counter(&r.handle.stats().placements, 1);
        r.handle.shutdown();
    }

    #[test]
    fn respects_resource_fit() {
        let mut r = rig(PlacementPolicy::LeastLoaded);
        let cpu_node = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        let gpu_node = fake_node(&r, NodeId(2), 50, Resources::new(4.0, 2.0));
        std::thread::sleep(Duration::from_millis(20));
        // GPU task must land on the busy GPU node, not the idle CPU node.
        spill(&r, &cpu_node, task(0, Resources::gpu(1.0)));
        let placed = expect_place(&gpu_node);
        assert_eq!(placed.resources, Resources::gpu(1.0));
        r.handle.shutdown();
    }

    #[test]
    fn parks_until_fitting_node_appears() {
        let mut r = rig(PlacementPolicy::LeastLoaded);
        let cpu_node = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        std::thread::sleep(Duration::from_millis(20));
        spill(&r, &cpu_node, task(0, Resources::gpu(1.0)));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(r.handle.stats().parked.get(), 1);
        assert_eq!(r.handle.stats().placements.get(), 0);
        // A GPU node joins; the parked task must be placed there.
        let gpu_node = fake_node(&r, NodeId(2), 0, Resources::new(4.0, 1.0));
        let placed = expect_place(&gpu_node);
        assert_eq!(placed.resources, Resources::gpu(1.0));
        r.handle.shutdown();
    }

    #[test]
    fn locality_aware_places_near_data() {
        let mut r = rig(PlacementPolicy::LocalityAware);
        let objects = ObjectTable::new(r.kv.clone());
        let root = TaskId::driver_root(DriverId::from_index(0));
        let dep = root.child(9).return_object(0);
        objects.add_location(dep, NodeId(2), 1 << 20);

        let n1 = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        let n2 = fake_node(&r, NodeId(2), 5, Resources::cpu(4.0));
        std::thread::sleep(Duration::from_millis(20));
        let mut spec = task(0, Resources::cpu(1.0));
        spec.args = vec![rtml_common::task::ArgSpec::ObjectRef(dep)];
        spill(&r, &n1, spec);
        let placed = expect_place(&n2);
        assert_eq!(placed.dependency_count(), 1);
        r.handle.shutdown();
    }

    #[test]
    fn node_down_removes_candidate() {
        let mut r = rig(PlacementPolicy::LeastLoaded);
        let n1 = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        let n2 = fake_node(&r, NodeId(2), 5, Resources::cpu(4.0));
        std::thread::sleep(Duration::from_millis(20));
        r.fabric
            .send(
                n1.address(),
                r.handle.address(),
                encode_to_bytes(&SchedWire::NodeDown { node: NodeId(1) }),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        spill(&r, &n1, task(0, Resources::cpu(1.0)));
        // Node 1 is gone; the busier node 2 must receive the task.
        let placed = expect_place(&n2);
        assert_eq!(placed.resources, Resources::cpu(1.0));
        r.handle.shutdown();
    }

    #[test]
    fn spill_batch_is_placed_in_coalesced_frames() {
        let mut r = rig(PlacementPolicy::LeastLoaded);
        let n1 = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        let n2 = fake_node(&r, NodeId(2), 0, Resources::cpu(4.0));
        std::thread::sleep(Duration::from_millis(20));
        let specs: Vec<TaskSpec> = (0..10).map(|i| task(i, Resources::cpu(1.0))).collect();
        r.fabric
            .send(
                n1.address(),
                r.handle.address(),
                encode_to_bytes(&SchedWire::SpillBatch(specs)),
            )
            .unwrap();
        // All ten tasks arrive, spread over both nodes, and the whole
        // batch crosses the fabric in at most one frame per node.
        let mut placed = 0;
        let mut frames = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while placed < 10 {
            assert!(std::time::Instant::now() < deadline, "placed {placed}/10");
            for endpoint in [&n1, &n2] {
                while let Ok(d) = endpoint.receiver().try_recv() {
                    match decode_from_slice::<SchedWire>(&d.payload) {
                        Ok(SchedWire::PlaceBatch { specs, hops }) => {
                            assert_eq!(hops, 1);
                            placed += specs.len();
                            frames += 1;
                        }
                        Ok(SchedWire::Place { .. }) => {
                            placed += 1;
                            frames += 1;
                        }
                        _ => {}
                    }
                }
            }
            std::thread::yield_now();
        }
        assert_eq!(placed, 10);
        assert!(frames <= 2, "expected coalesced frames, got {frames}");
        assert_eq!(r.handle.stats().spills.get(), 10);
        assert_eq!(r.handle.stats().placements.get(), 10);
        r.handle.shutdown();
    }

    #[test]
    fn burst_spreads_via_hash_and_batch_digest() {
        let mut r = rig(PlacementPolicy::LeastLoaded);
        let n1 = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        let n2 = fake_node(&r, NodeId(2), 0, Resources::cpu(4.0));
        std::thread::sleep(Duration::from_millis(20));
        // Ten spills with no intervening load reports: the per-task
        // spread hash plus the placed-since-report fold keep the two
        // equal nodes within one task of each other.
        for i in 0..10 {
            spill(&r, &n1, task(i, Resources::cpu(1.0)));
        }
        let mut count1 = 0;
        let mut count2 = 0;
        for _ in 0..10 {
            crossbeam::channel::select! {
                recv(n1.receiver()) -> d => {
                    if let Ok(SchedWire::Place { .. }) = decode_from_slice(&d.unwrap().payload) {
                        count1 += 1;
                    }
                }
                recv(n2.receiver()) -> d => {
                    if let Ok(SchedWire::Place { .. }) = decode_from_slice(&d.unwrap().payload) {
                        count2 += 1;
                    }
                }
            }
        }
        assert_eq!(count1 + count2, 10);
        assert!(count1 >= 3 && count2 >= 3, "skewed: {count1}/{count2}");
        r.handle.shutdown();
    }

    #[test]
    fn routes_partition_and_reach_every_shard() {
        let mut r = rig_sharded(PlacementPolicy::LeastLoaded, 4);
        assert_eq!(r.handle.num_shards(), 4);
        let routes = r.handle.routes();
        let n1 = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        let n2 = fake_node(&r, NodeId(2), 0, Resources::cpu(4.0));
        // Formation: every shard must see both nodes.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while r.handle.nodes_known_min() < 2 {
            assert!(std::time::Instant::now() < deadline, "formation stalled");
            std::thread::yield_now();
        }
        // Spill 32 tasks, each to its owning shard; every one must come
        // back as a placement on some node.
        let mut owners = std::collections::BTreeSet::new();
        for i in 0..32 {
            let spec = task(i, Resources::cpu(1.0));
            owners.insert(routes.shard_of(spec.task_id));
            spill(&r, &n1, spec);
        }
        assert!(owners.len() > 1, "expected tasks across multiple shards");
        let mut placed = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while placed < 32 {
            assert!(std::time::Instant::now() < deadline, "placed {placed}/32");
            for endpoint in [&n1, &n2] {
                while let Ok(d) = endpoint.receiver().try_recv() {
                    match decode_from_slice::<SchedWire>(&d.payload) {
                        Ok(SchedWire::Place { .. }) => placed += 1,
                        Ok(SchedWire::PlaceBatch { specs, .. }) => placed += specs.len(),
                        _ => {}
                    }
                }
            }
            std::thread::yield_now();
        }
        let (spills, placements, _parked) = r.handle.totals();
        assert_eq!(spills, 32);
        assert_eq!(placements, 32);
        // Every shard that owned tasks actually placed some.
        for shard in owners {
            assert!(
                r.handle.shard_stats(shard).placements.get() > 0,
                "shard {shard} idle"
            );
        }
        r.handle.shutdown();
    }

    #[test]
    fn sibling_digest_steers_next_batch_away() {
        // Shard 0 places a burst onto the single idle node and publishes
        // its digest; shard 1's next batch must see that node as loaded
        // and prefer the other one.
        let mut r = rig_sharded(PlacementPolicy::LeastLoaded, 2);
        let routes = r.handle.routes();
        let n1 = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        let _n2 = fake_node(&r, NodeId(2), 4, Resources::cpu(4.0));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while r.handle.nodes_known_min() < 2 {
            assert!(std::time::Instant::now() < deadline, "formation stalled");
            std::thread::yield_now();
        }
        // Find task ids owned by each shard.
        let mut shard0 = Vec::new();
        let mut shard1 = Vec::new();
        for i in 0..64 {
            let spec = task(i, Resources::cpu(1.0));
            match routes.shard_of(spec.task_id) {
                0 => shard0.push(spec),
                _ => shard1.push(spec),
            }
        }
        // One batch of 8 tasks through shard 0: all land somewhere and
        // the digest records them.
        let batch: Vec<TaskSpec> = shard0.drain(..).take(8).collect();
        r.fabric
            .send(
                n1.address(),
                routes.address_of(0),
                encode_to_bytes(&SchedWire::SpillBatch(batch)),
            )
            .unwrap();
        wait_counter(&r.handle.shard_stats(0).placements, 8);
        // Shard 1 now places one task; its view folds shard 0's digest,
        // so node 1's effective depth is 0 + placements(n1), node 2's is
        // 4 + placements(n2). Whatever the split, placements happened
        // and shard 1 still places successfully.
        let spec = shard1.remove(0);
        r.fabric
            .send(
                n1.address(),
                routes.address_of(1),
                encode_to_bytes(&SchedWire::Spill(spec)),
            )
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while r.handle.shard_stats(1).placements.get() < 1 {
            assert!(std::time::Instant::now() < deadline, "shard 1 never placed");
            std::thread::yield_now();
        }
        // The digest itself is readable and versioned.
        let digests = LoadDigestTable::new(r.kv.clone());
        let seen = digests.sweep(1, 2);
        assert_eq!(seen.len(), 1, "shard 0 digest missing");
        let placed: u64 = seen[0].entries.iter().map(|e| e.placed).sum();
        assert_eq!(placed, 8);
        r.handle.shutdown();
    }
}
