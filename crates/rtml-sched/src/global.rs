//! The global scheduler (paper §3.2.2).
//!
//! Receives spilled tasks from local schedulers over the fabric, and
//! places each on a node chosen from cluster-wide information: per-node
//! load reports (pushed by local schedulers) and object locality (read
//! from the object table). Placements are sent back over the fabric to
//! the chosen node's local scheduler — every hop through here costs
//! cross-node latency, which is exactly why the hybrid design keeps the
//! common case local.
//!
//! Tasks that currently fit no node (e.g. GPU demand while the only GPU
//! node is down) are **parked** and retried whenever the cluster view
//! changes (new load report, node up).

use std::collections::{BTreeMap, VecDeque};

use crossbeam::channel::{unbounded, Receiver, Sender};

use rtml_common::codec::{decode_from_slice, encode_to_bytes};
use rtml_common::event::{Component, Event, EventKind};
use rtml_common::ids::NodeId;
use rtml_common::metrics::Counter;
use rtml_common::task::TaskSpec;
use rtml_kv::{EventLog, ObjectTable};
use rtml_net::{Fabric, NetAddress};

use crate::msg::LoadReport;
use crate::policy::{PlacementPolicy, PolicyState};
use crate::wire::SchedWire;

/// Placement attempts before a task is parked to await a cluster change
/// (guards against local/global ping-pong on stale state).
const MAX_HOPS: u32 = 8;

/// Static configuration for the global scheduler.
#[derive(Clone, Debug)]
pub struct GlobalSchedulerConfig {
    /// Node hosting the global scheduler (its fabric endpoint lives
    /// there; co-located components reach it without paying latency).
    pub host_node: NodeId,
    /// Placement policy.
    pub policy: PlacementPolicy,
    /// Seed for randomized policies.
    pub seed: u64,
}

impl Default for GlobalSchedulerConfig {
    fn default() -> Self {
        GlobalSchedulerConfig {
            host_node: NodeId(0),
            policy: PlacementPolicy::LocalityAware,
            seed: 0x5eed,
        }
    }
}

/// Aggregate counters for experiments.
#[derive(Debug, Default)]
pub struct GlobalStats {
    /// Tasks received via spill.
    pub spills: Counter,
    /// Placements issued.
    pub placements: Counter,
    /// Tasks currently or ever parked.
    pub parked: Counter,
    /// Nodes currently known (NodeUp received, not NodeDown). Used by the
    /// cluster to barrier on formation before accepting work.
    pub nodes_known: std::sync::atomic::AtomicUsize,
}

enum Control {
    Shutdown,
}

/// Running handle for the global scheduler.
pub struct GlobalSchedulerHandle {
    address: NetAddress,
    control: Sender<Control>,
    join: Option<std::thread::JoinHandle<()>>,
    stats: std::sync::Arc<GlobalStats>,
}

impl GlobalSchedulerHandle {
    /// The fabric address local schedulers spill to.
    pub fn address(&self) -> NetAddress {
        self.address
    }

    /// Live counters.
    pub fn stats(&self) -> &GlobalStats {
        &self.stats
    }

    /// Requests shutdown and joins the scheduler thread.
    pub fn shutdown(&mut self) {
        let _ = self.control.send(Control::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for GlobalSchedulerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Namespace for spawning the global scheduler.
pub struct GlobalScheduler;

impl GlobalScheduler {
    /// Spawns the global scheduler thread.
    pub fn spawn(
        config: GlobalSchedulerConfig,
        fabric: std::sync::Arc<Fabric>,
        objects: ObjectTable,
        events: EventLog,
    ) -> GlobalSchedulerHandle {
        let endpoint = fabric.register(config.host_node, "global-sched");
        let address = endpoint.address();
        let (control_tx, control_rx) = unbounded();
        let stats = std::sync::Arc::new(GlobalStats::default());
        let stats2 = stats.clone();
        let join = std::thread::Builder::new()
            .name("rtml-gsched".into())
            .spawn(move || {
                let mut core = GlobalCore {
                    config,
                    fabric,
                    objects,
                    events,
                    address,
                    loads: BTreeMap::new(),
                    scheds: BTreeMap::new(),
                    parked: VecDeque::new(),
                    policy_state: PolicyState::new(0x5eed),
                    stats: stats2,
                };
                core.policy_state = PolicyState::new(core.config.seed);
                core.run(endpoint, control_rx);
            })
            .expect("spawn global scheduler");
        GlobalSchedulerHandle {
            address,
            control: control_tx,
            join: Some(join),
            stats,
        }
    }
}

struct GlobalCore {
    config: GlobalSchedulerConfig,
    fabric: std::sync::Arc<Fabric>,
    objects: ObjectTable,
    events: EventLog,
    address: NetAddress,
    // Ordered maps: placement iterates these, and `HashMap`'s per-process
    // random iteration order would make tie-breaks (and therefore task
    // placement) irreproducible across runs.
    loads: BTreeMap<NodeId, LoadReport>,
    scheds: BTreeMap<NodeId, NetAddress>,
    parked: VecDeque<(TaskSpec, u32)>,
    policy_state: PolicyState,
    stats: std::sync::Arc<GlobalStats>,
}

impl GlobalCore {
    fn run(&mut self, endpoint: rtml_net::Endpoint, control: Receiver<Control>) {
        loop {
            crossbeam::channel::select! {
                recv(endpoint.receiver()) -> msg => match msg {
                    Ok(delivery) => self.on_net(delivery.payload),
                    Err(_) => break,
                },
                recv(control) -> msg => match msg {
                    Ok(Control::Shutdown) | Err(_) => break,
                },
            }
        }
        self.fabric.unregister(self.address);
    }

    fn on_net(&mut self, payload: bytes::Bytes) {
        match decode_from_slice::<SchedWire>(&payload) {
            Ok(SchedWire::Spill(spec)) => {
                self.stats.spills.inc();
                self.place(spec, 0);
            }
            Ok(SchedWire::SpillBatch(specs)) => {
                self.stats.spills.add(specs.len() as u64);
                self.place_batch(specs, 0);
            }
            Ok(SchedWire::Place { spec, hops }) => {
                // A local scheduler bounced a placement (stale capacity);
                // try again with the hop count preserved.
                self.place(spec, hops);
            }
            Ok(SchedWire::PlaceBatch { specs, hops }) => {
                self.place_batch(specs, hops);
            }
            Ok(SchedWire::Load(report)) => {
                self.loads.insert(report.node, report);
                self.update_known();
                self.retry_parked();
            }
            Ok(SchedWire::NodeUp {
                node,
                sched_address,
            }) => {
                self.scheds
                    .insert(node, NetAddress::from_u64(sched_address));
                self.update_known();
                self.retry_parked();
            }
            Ok(SchedWire::NodeDown { node }) => {
                self.loads.remove(&node);
                self.scheds.remove(&node);
                self.update_known();
            }
            // Steal traffic flows local → local by design; a misrouted
            // frame carries nothing the global scheduler can act on.
            Ok(SchedWire::StealRequest { .. }) | Ok(SchedWire::StealGrant { .. }) => {}
            Err(_) => {}
        }
    }

    fn place(&mut self, spec: TaskSpec, hops: u32) {
        self.place_batch(vec![spec], hops);
    }

    /// Places a batch of tasks with one cluster-view snapshot, then
    /// coalesces all placements destined for the same node into a single
    /// `PlaceBatch` frame — a spilled burst pays one fabric hop per
    /// destination instead of one per task.
    fn place_batch(&mut self, specs: Vec<TaskSpec>, hops: u32) {
        if specs.is_empty() {
            return;
        }
        if hops >= MAX_HOPS {
            for spec in specs {
                self.park(spec, hops);
            }
            return;
        }
        // Only consider nodes whose scheduler we can actually reach.
        // Optimistic queue-depth bumps go to both this snapshot (so the
        // batch itself spreads out) and the live view (so the next burst
        // does too, until fresh load reports land).
        let mut candidates: BTreeMap<NodeId, LoadReport> = self
            .loads
            .iter()
            .filter(|(n, _)| self.scheds.contains_key(n))
            .map(|(n, l)| (*n, l.clone()))
            .collect();
        let mut groups: BTreeMap<NodeId, Vec<TaskSpec>> = BTreeMap::new();
        let at_nanos = rtml_common::time::now_nanos();
        let mut events = Vec::with_capacity(specs.len());
        for spec in specs {
            let choice =
                self.config
                    .policy
                    .place(&spec, &candidates, &self.objects, &mut self.policy_state);
            match choice {
                Some(node) => {
                    events.push(Event {
                        at_nanos,
                        component: Component::GlobalScheduler,
                        kind: EventKind::TaskPlaced {
                            task: spec.task_id,
                            node,
                        },
                    });
                    if let Some(load) = candidates.get_mut(&node) {
                        load.ready += 1;
                    }
                    if let Some(load) = self.loads.get_mut(&node) {
                        load.ready += 1;
                    }
                    groups.entry(node).or_default().push(spec);
                }
                None => self.park(spec, hops),
            }
        }
        self.events.append_many(self.config.host_node, events);
        for (node, group) in groups {
            let Some(target) = self.scheds.get(&node).copied() else {
                for spec in group {
                    self.park(spec, hops);
                }
                continue;
            };
            let count = group.len() as u64;
            let msg = if count == 1 {
                SchedWire::Place {
                    spec: group.into_iter().next().expect("len checked"),
                    hops: hops + 1,
                }
            } else {
                SchedWire::PlaceBatch {
                    specs: group,
                    hops: hops + 1,
                }
            };
            if self
                .fabric
                .send(self.address, target, encode_to_bytes(&msg))
                .is_ok()
            {
                self.stats.placements.add(count);
            } else {
                // The node vanished mid-send; forget it and park.
                self.scheds.remove(&node);
                self.loads.remove(&node);
                match msg {
                    SchedWire::Place { spec, hops } => self.park(spec, hops),
                    SchedWire::PlaceBatch { specs, hops } => {
                        for spec in specs {
                            self.park(spec, hops);
                        }
                    }
                    _ => unreachable!("constructed above"),
                }
            }
        }
    }

    /// A node counts as known once it is both reachable (NodeUp) and has
    /// reported load — i.e. it is a viable placement candidate.
    fn update_known(&self) {
        let known = self
            .scheds
            .keys()
            .filter(|n| self.loads.contains_key(n))
            .count();
        self.stats
            .nodes_known
            .store(known, std::sync::atomic::Ordering::Release);
    }

    fn park(&mut self, spec: TaskSpec, hops: u32) {
        self.stats.parked.inc();
        self.parked.push_back((spec, hops.min(MAX_HOPS - 1)));
    }

    fn retry_parked(&mut self) {
        let mut batch: VecDeque<(TaskSpec, u32)> = std::mem::take(&mut self.parked);
        while let Some((spec, hops)) = batch.pop_front() {
            self.place(spec, hops);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::ids::{DriverId, FunctionId, TaskId};
    use rtml_common::resources::Resources;
    use rtml_kv::KvStore;
    use rtml_net::FabricConfig;
    use std::time::Duration;

    struct Rig {
        fabric: std::sync::Arc<Fabric>,
        kv: std::sync::Arc<KvStore>,
        handle: GlobalSchedulerHandle,
    }

    fn rig(policy: PlacementPolicy) -> Rig {
        let fabric = Fabric::new(FabricConfig::default());
        let kv = KvStore::new(2);
        let handle = GlobalScheduler::spawn(
            GlobalSchedulerConfig {
                host_node: NodeId(0),
                policy,
                seed: 7,
            },
            fabric.clone(),
            ObjectTable::new(kv.clone()),
            EventLog::new(kv.clone()),
        );
        Rig { fabric, kv, handle }
    }

    fn fake_node(rig: &Rig, node: NodeId, queue: u32, total: Resources) -> rtml_net::Endpoint {
        let endpoint = rig.fabric.register(node, "fake-local");
        let up = SchedWire::NodeUp {
            node,
            sched_address: endpoint.address().as_u64(),
        };
        rig.fabric
            .send(
                endpoint.address(),
                rig.handle.address(),
                encode_to_bytes(&up),
            )
            .unwrap();
        let load = SchedWire::Load(LoadReport {
            node,
            sched_address: endpoint.address().as_u64(),
            ready: queue,
            waiting: 0,
            running: 0,
            idle_workers: 1,
            available: total.clone(),
            total,
            at_nanos: 0,
        });
        rig.fabric
            .send(
                endpoint.address(),
                rig.handle.address(),
                encode_to_bytes(&load),
            )
            .unwrap();
        endpoint
    }

    fn spill(rig: &Rig, from: &rtml_net::Endpoint, spec: TaskSpec) {
        rig.fabric
            .send(
                from.address(),
                rig.handle.address(),
                encode_to_bytes(&SchedWire::Spill(spec)),
            )
            .unwrap();
    }

    fn expect_place(endpoint: &rtml_net::Endpoint) -> TaskSpec {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .expect("timed out waiting for placement");
            let d = endpoint
                .receiver()
                .recv_timeout(remaining)
                .expect("delivery");
            if let Ok(SchedWire::Place { spec, .. }) = decode_from_slice(&d.payload) {
                return spec;
            }
        }
    }

    fn task(idx: u64, resources: Resources) -> TaskSpec {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let mut spec = TaskSpec::simple(root.child(idx), FunctionId::from_name("f"), vec![]);
        spec.resources = resources;
        spec
    }

    fn wait_counter(counter: &rtml_common::metrics::Counter, expected: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while counter.get() != expected {
            assert!(
                std::time::Instant::now() < deadline,
                "counter stuck at {} (expected {expected})",
                counter.get()
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn places_on_least_loaded() {
        let mut r = rig(PlacementPolicy::LeastLoaded);
        let busy = fake_node(&r, NodeId(1), 10, Resources::cpu(4.0));
        let idle = fake_node(&r, NodeId(2), 0, Resources::cpu(4.0));
        std::thread::sleep(Duration::from_millis(20)); // let loads land
        spill(&r, &busy, task(0, Resources::cpu(1.0)));
        let placed = expect_place(&idle);
        assert_eq!(placed.task_id, task(0, Resources::cpu(1.0)).task_id);
        // With zero fabric latency, delivery is synchronous inside the
        // scheduler's send: observing the Place does not order-after the
        // scheduler's own counter updates, so give them a bounded wait.
        wait_counter(&r.handle.stats().spills, 1);
        wait_counter(&r.handle.stats().placements, 1);
        r.handle.shutdown();
    }

    #[test]
    fn respects_resource_fit() {
        let mut r = rig(PlacementPolicy::LeastLoaded);
        let cpu_node = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        let gpu_node = fake_node(&r, NodeId(2), 50, Resources::new(4.0, 2.0));
        std::thread::sleep(Duration::from_millis(20));
        // GPU task must land on the busy GPU node, not the idle CPU node.
        spill(&r, &cpu_node, task(0, Resources::gpu(1.0)));
        let placed = expect_place(&gpu_node);
        assert_eq!(placed.resources, Resources::gpu(1.0));
        r.handle.shutdown();
    }

    #[test]
    fn parks_until_fitting_node_appears() {
        let mut r = rig(PlacementPolicy::LeastLoaded);
        let cpu_node = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        std::thread::sleep(Duration::from_millis(20));
        spill(&r, &cpu_node, task(0, Resources::gpu(1.0)));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(r.handle.stats().parked.get(), 1);
        assert_eq!(r.handle.stats().placements.get(), 0);
        // A GPU node joins; the parked task must be placed there.
        let gpu_node = fake_node(&r, NodeId(2), 0, Resources::new(4.0, 1.0));
        let placed = expect_place(&gpu_node);
        assert_eq!(placed.resources, Resources::gpu(1.0));
        r.handle.shutdown();
    }

    #[test]
    fn locality_aware_places_near_data() {
        let mut r = rig(PlacementPolicy::LocalityAware);
        let objects = ObjectTable::new(r.kv.clone());
        let root = TaskId::driver_root(DriverId::from_index(0));
        let dep = root.child(9).return_object(0);
        objects.add_location(dep, NodeId(2), 1 << 20);

        let n1 = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        let n2 = fake_node(&r, NodeId(2), 5, Resources::cpu(4.0));
        std::thread::sleep(Duration::from_millis(20));
        let mut spec = task(0, Resources::cpu(1.0));
        spec.args = vec![rtml_common::task::ArgSpec::ObjectRef(dep)];
        spill(&r, &n1, spec);
        let placed = expect_place(&n2);
        assert_eq!(placed.dependency_count(), 1);
        r.handle.shutdown();
    }

    #[test]
    fn node_down_removes_candidate() {
        let mut r = rig(PlacementPolicy::LeastLoaded);
        let n1 = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        let n2 = fake_node(&r, NodeId(2), 5, Resources::cpu(4.0));
        std::thread::sleep(Duration::from_millis(20));
        r.fabric
            .send(
                n1.address(),
                r.handle.address(),
                encode_to_bytes(&SchedWire::NodeDown { node: NodeId(1) }),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        spill(&r, &n1, task(0, Resources::cpu(1.0)));
        // Node 1 is gone; the busier node 2 must receive the task.
        let placed = expect_place(&n2);
        assert_eq!(placed.resources, Resources::cpu(1.0));
        r.handle.shutdown();
    }

    #[test]
    fn spill_batch_is_placed_in_coalesced_frames() {
        let mut r = rig(PlacementPolicy::LeastLoaded);
        let n1 = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        let n2 = fake_node(&r, NodeId(2), 0, Resources::cpu(4.0));
        std::thread::sleep(Duration::from_millis(20));
        let specs: Vec<TaskSpec> = (0..10).map(|i| task(i, Resources::cpu(1.0))).collect();
        r.fabric
            .send(
                n1.address(),
                r.handle.address(),
                encode_to_bytes(&SchedWire::SpillBatch(specs)),
            )
            .unwrap();
        // All ten tasks arrive, spread over both nodes, and the whole
        // batch crosses the fabric in at most one frame per node.
        let mut placed = 0;
        let mut frames = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while placed < 10 {
            assert!(std::time::Instant::now() < deadline, "placed {placed}/10");
            for endpoint in [&n1, &n2] {
                while let Ok(d) = endpoint.receiver().try_recv() {
                    match decode_from_slice::<SchedWire>(&d.payload) {
                        Ok(SchedWire::PlaceBatch { specs, hops }) => {
                            assert_eq!(hops, 1);
                            placed += specs.len();
                            frames += 1;
                        }
                        Ok(SchedWire::Place { .. }) => {
                            placed += 1;
                            frames += 1;
                        }
                        _ => {}
                    }
                }
            }
            std::thread::yield_now();
        }
        assert_eq!(placed, 10);
        assert!(frames <= 2, "expected coalesced frames, got {frames}");
        assert_eq!(r.handle.stats().spills.get(), 10);
        assert_eq!(r.handle.stats().placements.get(), 10);
        r.handle.shutdown();
    }

    #[test]
    fn burst_spreads_via_optimistic_load_bump() {
        let mut r = rig(PlacementPolicy::LeastLoaded);
        let n1 = fake_node(&r, NodeId(1), 0, Resources::cpu(4.0));
        let n2 = fake_node(&r, NodeId(2), 0, Resources::cpu(4.0));
        std::thread::sleep(Duration::from_millis(20));
        // Ten spills with no intervening load reports: without the bump
        // they would all land on one node.
        for i in 0..10 {
            spill(&r, &n1, task(i, Resources::cpu(1.0)));
        }
        let mut count1 = 0;
        let mut count2 = 0;
        for _ in 0..10 {
            crossbeam::channel::select! {
                recv(n1.receiver()) -> d => {
                    if let Ok(SchedWire::Place { .. }) = decode_from_slice(&d.unwrap().payload) {
                        count1 += 1;
                    }
                }
                recv(n2.receiver()) -> d => {
                    if let Ok(SchedWire::Place { .. }) = decode_from_slice(&d.unwrap().payload) {
                        count2 += 1;
                    }
                }
            }
        }
        assert_eq!(count1 + count2, 10);
        assert!(count1 >= 3 && count2 >= 3, "skewed: {count1}/{count2}");
        r.handle.shutdown();
    }
}
