//! Scheduler messages that cross node boundaries (over the fabric).

use rtml_common::codec::{Codec, Reader, Writer};
use rtml_common::error::{Error, Result};
use rtml_common::ids::{NodeId, ObjectId};
use rtml_common::resources::Resources;
use rtml_common::task::TaskSpec;

use crate::msg::LoadReport;

/// Fabric-borne scheduler protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedWire {
    /// Local → global: "this task exceeds my capacity or backlog".
    Spill(TaskSpec),
    /// Global → local: "run this task on your node". `hops` counts
    /// placement attempts, bounding spill/place ping-pong.
    Place {
        /// The task being placed.
        spec: TaskSpec,
        /// Number of global placements so far.
        hops: u32,
    },
    /// Local → global: periodic load report.
    Load(LoadReport),
    /// A node joined or recovered; `sched_address` is the raw fabric
    /// address of its local scheduler.
    NodeUp {
        /// The node.
        node: NodeId,
        /// Raw fabric address ([`rtml_net::NetAddress::as_u64`]).
        sched_address: u64,
    },
    /// A node left the cluster (failure injection or shutdown).
    NodeDown {
        /// The node.
        node: NodeId,
    },
    /// Local → global: a whole batch of tasks exceeding local capacity
    /// or backlog, forwarded as one length-prefixed frame so a burst
    /// pays one fabric hop instead of one per task.
    SpillBatch(Vec<TaskSpec>),
    /// Global → local: a batch of placements onto one node, coalesced
    /// into a single frame. `hops` counts global placements for every
    /// task in the batch (they travelled together).
    PlaceBatch {
        /// The tasks being placed.
        specs: Vec<TaskSpec>,
        /// Number of global placements so far.
        hops: u32,
    },
    /// Idle local → loaded local (pull path): "my ready queue drained;
    /// grant me a batch of yours". One request frame asks for up to
    /// `max_tasks` tasks — stealing never moves work one message at a
    /// time.
    StealRequest {
        /// The requesting (idle) node.
        thief: NodeId,
        /// Raw fabric address the grant must be sent to
        /// ([`rtml_net::NetAddress::as_u64`] of the thief's scheduler).
        reply_address: u64,
        /// The thief's spare resources; every granted task must fit.
        capacity: Resources,
        /// Cap on the grant batch size.
        max_tasks: u32,
        /// Objects already resident in the thief's store — the victim
        /// scores candidate tasks by how many of their dependency bytes
        /// are on this list (or table-located on the thief) and grants
        /// the most local tasks first.
        local_objects_hint: Vec<ObjectId>,
    },
    /// Loaded local → idle local: the granted batch, as one coalesced
    /// frame. Empty when the victim's queue drained between the load
    /// report and the request (the stale-victim answer) — the thief
    /// re-arms instead of wedging.
    StealGrant {
        /// The granting node.
        victim: NodeId,
        /// The granted tasks, ownership already group-committed to the
        /// task table as `Queued(thief)`.
        tasks: Vec<TaskSpec>,
    },
}

impl Codec for SchedWire {
    fn encode(&self, w: &mut Writer) {
        match self {
            SchedWire::Spill(spec) => {
                w.put_u8(0);
                spec.encode(w);
            }
            SchedWire::Place { spec, hops } => {
                w.put_u8(1);
                spec.encode(w);
                w.put_u32(*hops);
            }
            SchedWire::Load(report) => {
                w.put_u8(2);
                report.encode(w);
            }
            SchedWire::NodeUp {
                node,
                sched_address,
            } => {
                w.put_u8(3);
                node.encode(w);
                w.put_u64(*sched_address);
            }
            SchedWire::NodeDown { node } => {
                w.put_u8(4);
                node.encode(w);
            }
            SchedWire::SpillBatch(specs) => {
                w.put_u8(5);
                specs.encode(w);
            }
            SchedWire::PlaceBatch { specs, hops } => {
                w.put_u8(6);
                specs.encode(w);
                w.put_u32(*hops);
            }
            SchedWire::StealRequest {
                thief,
                reply_address,
                capacity,
                max_tasks,
                local_objects_hint,
            } => {
                w.put_u8(7);
                thief.encode(w);
                w.put_u64(*reply_address);
                capacity.encode(w);
                w.put_u32(*max_tasks);
                local_objects_hint.encode(w);
            }
            SchedWire::StealGrant { victim, tasks } => {
                w.put_u8(8);
                victim.encode(w);
                tasks.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            0 => SchedWire::Spill(TaskSpec::decode(r)?),
            1 => SchedWire::Place {
                spec: TaskSpec::decode(r)?,
                hops: r.take_u32()?,
            },
            2 => SchedWire::Load(LoadReport::decode(r)?),
            3 => SchedWire::NodeUp {
                node: NodeId::decode(r)?,
                sched_address: r.take_u64()?,
            },
            4 => SchedWire::NodeDown {
                node: NodeId::decode(r)?,
            },
            5 => SchedWire::SpillBatch(Vec::<TaskSpec>::decode(r)?),
            6 => SchedWire::PlaceBatch {
                specs: Vec::<TaskSpec>::decode(r)?,
                hops: r.take_u32()?,
            },
            7 => SchedWire::StealRequest {
                thief: NodeId::decode(r)?,
                reply_address: r.take_u64()?,
                capacity: Resources::decode(r)?,
                max_tasks: r.take_u32()?,
                local_objects_hint: Vec::<ObjectId>::decode(r)?,
            },
            8 => SchedWire::StealGrant {
                victim: NodeId::decode(r)?,
                tasks: Vec::<TaskSpec>::decode(r)?,
            },
            other => return Err(Error::Codec(format!("invalid SchedWire tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::codec::{decode_from_slice, encode_to_bytes};
    use rtml_common::ids::{DriverId, FunctionId, TaskId};
    use rtml_common::resources::Resources;

    fn spec() -> TaskSpec {
        let root = TaskId::driver_root(DriverId::from_index(0));
        TaskSpec::simple(root.child(0), FunctionId::from_name("f"), vec![])
    }

    #[test]
    fn all_variants_round_trip() {
        let report = LoadReport {
            node: NodeId(1),
            sched_address: 9,
            ready: 1,
            waiting: 0,
            running: 2,
            idle_workers: 3,
            available: Resources::cpu(2.0),
            total: Resources::cpu(4.0),
            at_nanos: 7,
        };
        for msg in [
            SchedWire::Spill(spec()),
            SchedWire::Place {
                spec: spec(),
                hops: 2,
            },
            SchedWire::Load(report),
            SchedWire::NodeUp {
                node: NodeId(5),
                sched_address: 99,
            },
            SchedWire::NodeDown { node: NodeId(5) },
            SchedWire::SpillBatch(vec![spec(), spec()]),
            SchedWire::SpillBatch(vec![]),
            SchedWire::PlaceBatch {
                specs: vec![spec(), spec(), spec()],
                hops: 3,
            },
            SchedWire::StealRequest {
                thief: NodeId(2),
                reply_address: 77,
                capacity: Resources::new(3.0, 1.0),
                max_tasks: 8,
                local_objects_hint: vec![TaskId::driver_root(DriverId::from_index(0))
                    .child(4)
                    .return_object(0)],
            },
            SchedWire::StealGrant {
                victim: NodeId(3),
                tasks: vec![spec(), spec()],
            },
            SchedWire::StealGrant {
                victim: NodeId(3),
                tasks: vec![],
            },
        ] {
            let bytes = encode_to_bytes(&msg);
            let back: SchedWire = decode_from_slice(&bytes).unwrap();
            assert_eq!(msg, back);
        }
    }
}
