//! Global placement policies.
//!
//! The paper (§3.2.2): "Global schedulers can then assign tasks to local
//! schedulers based on global information about factors including object
//! locality and resource availability." [`PlacementPolicy::LocalityAware`]
//! is that design; the alternatives are ablation baselines (experiment
//! A2).
//!
//! Placement for the paper policies ([`PlacementPolicy::LocalityAware`],
//! [`PlacementPolicy::LeastLoaded`]) is a **pure function** of the task
//! spec and the [`LoadView`] snapshot: no optimistic per-task state is
//! mutated between decisions. That purity is what lets the global
//! scheduler shard its keyspace — splitting one batch across K shards
//! that share a load view cannot change any task's placement. Equal-cost
//! candidates are spread by a deterministic per-task FNV hash instead of
//! a sequential load bump, so a burst of equal tasks still fans out
//! across equal nodes, identically on every run.

use rtml_common::collections::{fast_map_with_capacity, fnv1a_64, FastMap, FixedReverseHeap};
use rtml_common::ids::{NodeId, ObjectId, TaskId};
use rtml_common::task::TaskSpec;
use rtml_kv::ObjectTable;

use crate::msg::LoadReport;

/// Queue-depth price in transfer bytes: one queued task costs as much as
/// moving this many argument bytes. Doubles as the cost band width within
/// which equal-ish candidates are spread by task hash.
pub const QUEUE_PENALTY_BYTES: u128 = 64 * 1024;

/// Default bound on the per-batch candidate set: placement considers the
/// k least-loaded nodes (plus every dependency holder) instead of
/// scanning the full load map per task.
pub const DEFAULT_TOP_K: usize = 16;

/// How the global scheduler picks a node for a spilled task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Maximize the number of argument bytes already resident on the
    /// chosen node; break near-ties by a deterministic per-task hash.
    /// The paper's design.
    LocalityAware,
    /// Pick among the fitting nodes with the shallowest queues.
    LeastLoaded,
    /// Rotate over fitting nodes, ignoring load and locality. Stateful:
    /// not invariant under scheduler sharding (each shard has its own
    /// cursor) — ablation baseline only.
    RoundRobin,
    /// Sample two fitting nodes, keep the less loaded ("power of two
    /// choices") — a classic low-state alternative. Stateful like
    /// [`PlacementPolicy::RoundRobin`]; not shard-invariant.
    PowerOfTwo,
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        PlacementPolicy::LocalityAware
    }
}

/// Mutable state a policy carries across decisions (only the ablation
/// baselines use it; the paper policies are pure).
#[derive(Debug, Default)]
pub struct PolicyState {
    /// Round-robin cursor.
    pub cursor: usize,
    /// Deterministic RNG state for sampling policies.
    pub rng: u64,
}

impl PolicyState {
    /// Creates state with a fixed seed for reproducible placements.
    pub fn new(seed: u64) -> Self {
        PolicyState {
            cursor: 0,
            rng: seed | 1,
        }
    }

    fn next_rand(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }
}

/// A deterministic snapshot of per-node load for one placement batch.
///
/// Wraps a [`FastMap`] of load reports plus a bounded top-k index of the
/// least-loaded nodes (selected with a [`FixedReverseHeap`] in
/// `O(n log k)`); per-task placement then touches `k + dependency
/// holders` candidates instead of the whole cluster. The view is a pure
/// value: building it from the same reports — in any insertion order —
/// yields the same placements.
pub struct LoadView {
    reports: FastMap<NodeId, LoadReport>,
    /// Least-loaded nodes by `(queue_depth, node)`, ascending.
    top_k: Vec<NodeId>,
}

impl LoadView {
    /// Builds a view over `reports`, indexing the `k` least-loaded nodes.
    pub fn build(reports: FastMap<NodeId, LoadReport>, k: usize) -> Self {
        let mut heap = FixedReverseHeap::new(k);
        for l in reports.values() {
            heap.push((l.queue_depth(), l.node));
        }
        let top_k = heap.into_sorted_vec().into_iter().map(|(_, n)| n).collect();
        LoadView { reports, top_k }
    }

    /// Convenience constructor from a plain report list (tests, pure
    /// reference placer).
    pub fn from_reports(reports: impl IntoIterator<Item = LoadReport>, k: usize) -> Self {
        let mut map: FastMap<NodeId, LoadReport> = FastMap::default();
        for l in reports {
            map.insert(l.node, l);
        }
        Self::build(map, k)
    }

    /// The report for `node`, if known.
    pub fn get(&self, node: NodeId) -> Option<&LoadReport> {
        self.reports.get(&node)
    }

    /// The top-k least-loaded nodes, ascending by `(queue_depth, node)`.
    pub fn top_k(&self) -> impl Iterator<Item = &LoadReport> {
        self.top_k.iter().filter_map(|n| self.reports.get(n))
    }

    /// Every known report (full-scan fallback and ablation baselines).
    pub fn all(&self) -> impl Iterator<Item = &LoadReport> {
        self.reports.values()
    }

    /// Number of nodes in the view.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

/// Deterministic per-task spread hash: where several candidates land in
/// the same cost band, `(hash(task, node), node)` picks the winner, so a
/// burst of distinct tasks fans out across equal nodes without any
/// sequential state.
fn spread_hash(task: TaskId, node: NodeId) -> u64 {
    let mut buf = [0u8; 20];
    buf[..16].copy_from_slice(&task.unique().as_u128().to_le_bytes());
    buf[16..].copy_from_slice(&node.0.to_le_bytes());
    fnv1a_64(&buf)
}

/// Among scored candidates, takes the minimum cost `m` and picks — by
/// spread hash — one candidate with cost in `[m, m + band)`. The band
/// treats near-equal costs as equal so hash spreading can act on them;
/// outside the band, strictly cheaper always wins.
fn pick_in_band(costs: &[(u128, NodeId)], task: TaskId, band: u128) -> Option<NodeId> {
    let min = costs.iter().map(|(c, _)| *c).min()?;
    let limit = min.saturating_add(band.max(1));
    costs
        .iter()
        .filter(|(c, _)| *c < limit)
        .min_by_key(|(_, n)| (spread_hash(task, *n), *n))
        .map(|(_, n)| *n)
}

impl PlacementPolicy {
    /// Chooses a node for `spec` in `view`, or `None` if no node's total
    /// capacity fits the demand (the task must be parked until the
    /// cluster changes).
    ///
    /// For `LocalityAware` and `LeastLoaded` the choice is a pure
    /// function of `(spec, view)` — `state` is untouched — which is the
    /// invariant the sharded global scheduler relies on.
    pub fn place(
        &self,
        spec: &TaskSpec,
        view: &LoadView,
        objects: &ObjectTable,
        state: &mut PolicyState,
    ) -> Option<NodeId> {
        match self {
            PlacementPolicy::LocalityAware => {
                // Estimated placement cost per node: the bytes that would
                // have to move there, plus a queue penalty that prices one
                // queued task at QUEUE_PENALTY_BYTES of transfer. Small
                // arguments therefore do not glue tasks to a busy node,
                // while large ones do — "object locality and resource
                // availability" (§3.2.2) in one scalar.
                let deps: Vec<ObjectId> = spec.dependencies().collect();
                let mut local_bytes: FastMap<NodeId, u64> = fast_map_with_capacity(deps.len());
                let mut total_bytes: u64 = 0;
                // One group-committed table sweep for the whole argument
                // list instead of a point read per dependency. Every
                // holder of a dependency is credited its size, so a
                // replicated hot input widens the set of nodes that look
                // local — replication improves placement for free.
                for info in objects.get_many(&deps).into_iter().flatten() {
                    total_bytes += info.size;
                    for node in &info.locations {
                        *local_bytes.entry(*node).or_insert(0) += info.size;
                    }
                }
                // Candidates: the k least-loaded nodes plus every
                // dependency holder (a holder outside the top-k must stay
                // eligible or locality glue breaks for busy holders).
                let mut costs: Vec<(u128, NodeId)> = Vec::new();
                let push = |l: &LoadReport, costs: &mut Vec<(u128, NodeId)>| {
                    if l.total.fits(&spec.resources) {
                        let local = local_bytes.get(&l.node).copied().unwrap_or(0);
                        let missing = total_bytes.saturating_sub(local) as u128;
                        let cost = missing + l.queue_depth() as u128 * QUEUE_PENALTY_BYTES;
                        costs.push((cost, l.node));
                    }
                };
                for l in view.top_k() {
                    push(l, &mut costs);
                }
                for (node, _) in &local_bytes {
                    if !costs.iter().any(|(_, n)| n == node) {
                        if let Some(l) = view.get(*node) {
                            push(l, &mut costs);
                        }
                    }
                }
                if costs.is_empty() {
                    // Nothing in the bounded candidate set fits (e.g. a
                    // GPU task while every GPU node is busy enough to
                    // fall out of the top-k): full scan.
                    for l in view.all() {
                        push(l, &mut costs);
                    }
                }
                pick_in_band(&costs, spec.task_id, QUEUE_PENALTY_BYTES)
            }
            PlacementPolicy::LeastLoaded => {
                let mut costs: Vec<(u128, NodeId)> = view
                    .top_k()
                    .filter(|l| l.total.fits(&spec.resources))
                    .map(|l| (l.queue_depth() as u128, l.node))
                    .collect();
                if costs.is_empty() {
                    costs = view
                        .all()
                        .filter(|l| l.total.fits(&spec.resources))
                        .map(|l| (l.queue_depth() as u128, l.node))
                        .collect();
                }
                // Band of one queue slot: only exactly-equal depths are
                // spread by hash.
                pick_in_band(&costs, spec.task_id, 1)
            }
            PlacementPolicy::RoundRobin => {
                let fitting = sorted_fitting(spec, view);
                if fitting.is_empty() {
                    return None;
                }
                let pick = fitting[state.cursor % fitting.len()];
                state.cursor = state.cursor.wrapping_add(1);
                Some(pick)
            }
            PlacementPolicy::PowerOfTwo => {
                let fitting = sorted_fitting(spec, view);
                if fitting.is_empty() {
                    return None;
                }
                let a = fitting[(state.next_rand() as usize) % fitting.len()];
                let b = fitting[(state.next_rand() as usize) % fitting.len()];
                let depth = |n: NodeId| view.get(n).map_or(u32::MAX, LoadReport::queue_depth);
                Some(if depth(a) <= depth(b) { a } else { b })
            }
        }
    }
}

/// Fitting nodes in ascending node order — the stable indexable list the
/// stateful baselines cycle/sample over.
fn sorted_fitting(spec: &TaskSpec, view: &LoadView) -> Vec<NodeId> {
    let mut fitting: Vec<NodeId> = view
        .all()
        .filter(|l| l.total.fits(&spec.resources))
        .map(|l| l.node)
        .collect();
    fitting.sort_unstable();
    fitting
}

/// Picks a steal victim among `candidates` — peers whose kv-published
/// ready backlog already passed the thief's threshold. Power-of-two
/// choices over the candidate set (classic low-state load sampling),
/// the deeper ready backlog wins; an exact tie falls to a **locality**
/// tiebreak: the victim holding more bytes of the objects already
/// resident on the thief (`thief_resident`, the store-residency hint
/// the steal request ships) wins, because a shared working set means
/// the victim's tasks are more likely to find their dependencies
/// already local on the thief. The tiebreak reads the object table as
/// one batched `get_many` sweep — never per-object probes — and only
/// when a tie makes it necessary. Deterministic given `state`.
pub fn choose_victim<'a>(
    candidates: &'a [LoadReport],
    thief_resident: &[ObjectId],
    objects: &ObjectTable,
    state: &mut PolicyState,
) -> Option<&'a LoadReport> {
    match candidates.len() {
        0 => None,
        1 => Some(&candidates[0]),
        n => {
            let a = &candidates[(state.next_rand() as usize) % n];
            let b = &candidates[(state.next_rand() as usize) % n];
            Some(match a.ready.cmp(&b.ready) {
                std::cmp::Ordering::Greater => a,
                std::cmp::Ordering::Less => b,
                std::cmp::Ordering::Equal if a.node == b.node => a,
                std::cmp::Ordering::Equal => {
                    let infos = objects.get_many(thief_resident);
                    let shared = |node: NodeId| {
                        infos
                            .iter()
                            .flatten()
                            .filter(|info| info.locations.contains(&node))
                            .map(|info| info.size)
                            .sum::<u64>()
                    };
                    let (sa, sb) = (shared(a.node), shared(b.node));
                    match sa.cmp(&sb) {
                        std::cmp::Ordering::Greater => a,
                        std::cmp::Ordering::Less => b,
                        std::cmp::Ordering::Equal if a.node <= b.node => a,
                        std::cmp::Ordering::Equal => b,
                    }
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::ids::{DriverId, FunctionId, TaskId};
    use rtml_common::resources::Resources;
    use rtml_common::task::ArgSpec;
    use rtml_kv::KvStore;

    fn load(node: u32, queue: u32, total: Resources) -> LoadReport {
        LoadReport {
            node: NodeId(node),
            sched_address: node as u64,
            ready: queue,
            waiting: 0,
            running: 0,
            idle_workers: 1,
            available: total.clone(),
            total,
            at_nanos: 0,
        }
    }

    fn view(reports: impl IntoIterator<Item = LoadReport>) -> LoadView {
        LoadView::from_reports(reports, DEFAULT_TOP_K)
    }

    fn cpu_task(args: Vec<ArgSpec>) -> TaskSpec {
        let root = TaskId::driver_root(DriverId::from_index(0));
        TaskSpec::simple(root.child(0), FunctionId::from_name("f"), args)
    }

    #[test]
    fn no_fitting_node_parks() {
        let v = view([load(0, 0, Resources::cpu(4.0))]);
        let objects = ObjectTable::new(KvStore::new(1));
        let mut spec = cpu_task(vec![]);
        spec.resources = Resources::gpu(1.0);
        let mut state = PolicyState::new(1);
        assert_eq!(
            PlacementPolicy::LocalityAware.place(&spec, &v, &objects, &mut state),
            None
        );
    }

    #[test]
    fn least_loaded_picks_shallowest() {
        let v = view([
            load(0, 5, Resources::cpu(4.0)),
            load(1, 1, Resources::cpu(4.0)),
            load(2, 3, Resources::cpu(4.0)),
        ]);
        let objects = ObjectTable::new(KvStore::new(1));
        let mut state = PolicyState::new(1);
        assert_eq!(
            PlacementPolicy::LeastLoaded.place(&cpu_task(vec![]), &v, &objects, &mut state),
            Some(NodeId(1))
        );
    }

    #[test]
    fn locality_beats_load() {
        let kv = KvStore::new(1);
        let objects = ObjectTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(0));
        let dep = root.child(9).return_object(0);
        // A large argument lives on busy node 0.
        objects.add_location(dep, NodeId(0), 1_000_000);

        let v = view([
            load(0, 10, Resources::cpu(4.0)),
            load(1, 0, Resources::cpu(4.0)),
        ]);
        let spec = cpu_task(vec![ArgSpec::ObjectRef(dep)]);
        let mut state = PolicyState::new(1);
        assert_eq!(
            PlacementPolicy::LocalityAware.place(&spec, &v, &objects, &mut state),
            Some(NodeId(0))
        );
        // Without the dependency, the same policy prefers the idle node.
        assert_eq!(
            PlacementPolicy::LocalityAware.place(&cpu_task(vec![]), &v, &objects, &mut state),
            Some(NodeId(1))
        );
    }

    #[test]
    fn replicated_input_lets_locality_pick_the_idle_holder() {
        // A large input resident only on busy node 0 glues the task
        // there (moving the bytes would cost more than the queue).
        // Once a replica exists on idle node 1, both nodes look local
        // and the shallower queue wins — replication widens placement.
        let kv = KvStore::new(1);
        let objects = ObjectTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(0));
        let dep = root.child(9).return_object(0);
        objects.add_location(dep, NodeId(0), 1_000_000);
        let v = view([
            load(0, 10, Resources::cpu(4.0)),
            load(1, 0, Resources::cpu(4.0)),
        ]);
        let spec = cpu_task(vec![ArgSpec::ObjectRef(dep)]);
        let mut state = PolicyState::new(1);
        assert_eq!(
            PlacementPolicy::LocalityAware.place(&spec, &v, &objects, &mut state),
            Some(NodeId(0))
        );
        objects.add_location(dep, NodeId(1), 1_000_000);
        assert_eq!(
            PlacementPolicy::LocalityAware.place(&spec, &v, &objects, &mut state),
            Some(NodeId(1))
        );
    }

    #[test]
    fn locality_only_considers_fitting_nodes() {
        let kv = KvStore::new(1);
        let objects = ObjectTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(0));
        let dep = root.child(9).return_object(0);
        // The data is on a CPU-only node, but the task needs a GPU.
        objects.add_location(dep, NodeId(0), 1_000_000);
        let v = view([
            load(0, 0, Resources::cpu(4.0)),
            load(1, 0, Resources::new(4.0, 1.0)),
        ]);
        let mut spec = cpu_task(vec![ArgSpec::ObjectRef(dep)]);
        spec.resources = Resources::gpu(1.0);
        let mut state = PolicyState::new(1);
        assert_eq!(
            PlacementPolicy::LocalityAware.place(&spec, &v, &objects, &mut state),
            Some(NodeId(1))
        );
    }

    #[test]
    fn round_robin_cycles() {
        let v = view([
            load(0, 0, Resources::cpu(4.0)),
            load(1, 0, Resources::cpu(4.0)),
            load(2, 0, Resources::cpu(4.0)),
        ]);
        let objects = ObjectTable::new(KvStore::new(1));
        let mut state = PolicyState::new(1);
        let picks: Vec<_> = (0..6)
            .map(|_| {
                PlacementPolicy::RoundRobin
                    .place(&cpu_task(vec![]), &v, &objects, &mut state)
                    .unwrap()
            })
            .collect();
        assert_eq!(
            picks,
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(0),
                NodeId(1),
                NodeId(2)
            ]
        );
    }

    #[test]
    fn power_of_two_prefers_less_loaded_on_average() {
        let v = view([
            load(0, 100, Resources::cpu(4.0)),
            load(1, 0, Resources::cpu(4.0)),
        ]);
        let objects = ObjectTable::new(KvStore::new(1));
        let mut state = PolicyState::new(42);
        let mut node1_picks = 0;
        for _ in 0..100 {
            if PlacementPolicy::PowerOfTwo
                .place(&cpu_task(vec![]), &v, &objects, &mut state)
                .unwrap()
                == NodeId(1)
            {
                node1_picks += 1;
            }
        }
        // Picks node 1 unless both samples land on node 0 (~25%).
        assert!(node1_picks > 60, "node1_picks={node1_picks}");
    }

    #[test]
    fn choose_victim_prefers_deeper_backlog() {
        let objects = ObjectTable::new(KvStore::new(1));
        let candidates: Vec<LoadReport> = vec![
            load(0, 2, Resources::cpu(4.0)),
            load(1, 50, Resources::cpu(4.0)),
        ];
        let mut state = PolicyState::new(7);
        // Whenever the two samples differ, the 50-deep queue wins; only
        // a double draw of node 0 (~25%) picks it. Majority check.
        let mut deep = 0;
        for _ in 0..32 {
            if choose_victim(&candidates, &[], &objects, &mut state)
                .unwrap()
                .node
                == NodeId(1)
            {
                deep += 1;
            }
        }
        assert!(deep > 20, "deep victim picked only {deep}/32 times");
        assert!(choose_victim(&[], &[], &objects, &mut state).is_none());
        assert_eq!(
            choose_victim(&candidates[..1], &[], &objects, &mut state)
                .unwrap()
                .node,
            NodeId(0)
        );
    }

    #[test]
    fn choose_victim_ties_break_on_shared_resident_bytes() {
        // Two equally-deep victims; the thief already holds an object
        // that node 2 also holds — shared working set, so node 2 wins
        // every tie. Only a double draw of node 1 (~25%) avoids the
        // tiebreak, hence the majority check.
        let kv = KvStore::new(1);
        let objects = ObjectTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(0));
        let resident: ObjectId = root.child(5).return_object(0);
        objects.add_location(resident, NodeId(2), 4096);
        let candidates: Vec<LoadReport> = vec![
            load(1, 10, Resources::cpu(4.0)),
            load(2, 10, Resources::cpu(4.0)),
        ];
        let mut state = PolicyState::new(3);
        let mut node2 = 0;
        for _ in 0..32 {
            if choose_victim(&candidates, &[resident], &objects, &mut state)
                .unwrap()
                .node
                == NodeId(2)
            {
                node2 += 1;
            }
        }
        assert!(
            node2 > 20,
            "locality tiebreak picked node 2 only {node2}/32"
        );
    }

    #[test]
    fn placement_is_deterministic_given_state() {
        let v = view([
            load(0, 1, Resources::cpu(4.0)),
            load(1, 2, Resources::cpu(4.0)),
        ]);
        let objects = ObjectTable::new(KvStore::new(1));
        let a = PlacementPolicy::LocalityAware.place(
            &cpu_task(vec![]),
            &v,
            &objects,
            &mut PolicyState::new(7),
        );
        let b = PlacementPolicy::LocalityAware.place(
            &cpu_task(vec![]),
            &v,
            &objects,
            &mut PolicyState::new(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn placement_is_independent_of_view_insertion_order() {
        // The FastMap replacing BTreeMap must not leak iteration order
        // into decisions: build the same view with reports inserted in
        // opposite orders and demand identical placements for a burst.
        let reports = [
            load(0, 0, Resources::cpu(4.0)),
            load(1, 0, Resources::cpu(4.0)),
            load(2, 1, Resources::cpu(4.0)),
            load(3, 2, Resources::cpu(4.0)),
        ];
        let forward = LoadView::from_reports(reports.clone(), DEFAULT_TOP_K);
        let reverse = LoadView::from_reports(reports.into_iter().rev(), DEFAULT_TOP_K);
        let objects = ObjectTable::new(KvStore::new(1));
        let root = TaskId::driver_root(DriverId::from_index(3));
        for policy in [PlacementPolicy::LocalityAware, PlacementPolicy::LeastLoaded] {
            for i in 0..64 {
                let spec = TaskSpec::simple(root.child(i), FunctionId::from_name("f"), vec![]);
                let a = policy.place(&spec, &forward, &objects, &mut PolicyState::new(7));
                let b = policy.place(&spec, &reverse, &objects, &mut PolicyState::new(7));
                assert_eq!(a, b, "task {i} placed differently under {policy:?}");
            }
        }
    }

    #[test]
    fn equal_nodes_spread_a_burst_by_task_hash() {
        // Two idle, identical nodes and a burst of distinct tasks: the
        // cost band makes them equal candidates and the per-task hash
        // must fan the burst out over both — deterministically.
        let v = view([
            load(1, 0, Resources::cpu(4.0)),
            load(2, 0, Resources::cpu(4.0)),
        ]);
        let objects = ObjectTable::new(KvStore::new(1));
        let root = TaskId::driver_root(DriverId::from_index(0));
        let mut counts = [0u32; 3];
        for i in 0..32 {
            let spec = TaskSpec::simple(root.child(i), FunctionId::from_name("f"), vec![]);
            let node = PlacementPolicy::LeastLoaded
                .place(&spec, &v, &objects, &mut PolicyState::new(1))
                .unwrap();
            counts[node.0 as usize] += 1;
        }
        assert_eq!(counts[1] + counts[2], 32);
        assert!(
            counts[1] >= 8 && counts[2] >= 8,
            "skewed: {}/{}",
            counts[1],
            counts[2]
        );
    }

    #[test]
    fn top_k_bounds_candidates_but_fallback_finds_special_nodes() {
        // With k = 1 only the single least-loaded node is a candidate —
        // but a GPU task must still find the (busier) GPU node via the
        // full-scan fallback.
        let reports = [
            load(0, 0, Resources::cpu(4.0)),
            load(1, 5, Resources::new(4.0, 1.0)),
        ];
        let v = LoadView::from_reports(reports, 1);
        let objects = ObjectTable::new(KvStore::new(1));
        let mut state = PolicyState::new(1);
        let cpu = cpu_task(vec![]);
        assert_eq!(
            PlacementPolicy::LeastLoaded.place(&cpu, &v, &objects, &mut state),
            Some(NodeId(0))
        );
        let mut gpu = cpu_task(vec![]);
        gpu.resources = Resources::gpu(1.0);
        for policy in [PlacementPolicy::LeastLoaded, PlacementPolicy::LocalityAware] {
            assert_eq!(
                policy.place(&gpu, &v, &objects, &mut state),
                Some(NodeId(1))
            );
        }
    }

    #[test]
    fn dependency_holder_outside_top_k_stays_eligible() {
        // k = 1 selects idle node 1; the 1 MB input lives on node 0
        // whose queue keeps it out of the top-k. Locality must still
        // win: the holder is appended to the candidate set.
        let kv = KvStore::new(1);
        let objects = ObjectTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(0));
        let dep = root.child(9).return_object(0);
        objects.add_location(dep, NodeId(0), 1_000_000);
        let v = LoadView::from_reports(
            [
                load(0, 10, Resources::cpu(4.0)),
                load(1, 0, Resources::cpu(4.0)),
            ],
            1,
        );
        let spec = cpu_task(vec![ArgSpec::ObjectRef(dep)]);
        let mut state = PolicyState::new(1);
        assert_eq!(
            PlacementPolicy::LocalityAware.place(&spec, &v, &objects, &mut state),
            Some(NodeId(0))
        );
    }
}
