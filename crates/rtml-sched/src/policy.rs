//! Global placement policies.
//!
//! The paper (§3.2.2): "Global schedulers can then assign tasks to local
//! schedulers based on global information about factors including object
//! locality and resource availability." [`PlacementPolicy::LocalityAware`]
//! is that design; the alternatives are ablation baselines (experiment
//! A2).

use std::collections::{BTreeMap, HashMap};

use rtml_common::ids::{NodeId, ObjectId};
use rtml_common::task::TaskSpec;
use rtml_kv::ObjectTable;

use crate::msg::LoadReport;

/// How the global scheduler picks a node for a spilled task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Maximize the number of argument bytes already resident on the
    /// chosen node; break ties by the shallowest queue. The paper's
    /// design.
    LocalityAware,
    /// Pick the fitting node with the shallowest queue.
    LeastLoaded,
    /// Rotate over fitting nodes, ignoring load and locality.
    RoundRobin,
    /// Sample two fitting nodes, keep the less loaded ("power of two
    /// choices") — a classic low-state alternative.
    PowerOfTwo,
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        PlacementPolicy::LocalityAware
    }
}

/// Mutable state a policy carries across decisions.
#[derive(Debug, Default)]
pub struct PolicyState {
    /// Round-robin cursor.
    pub cursor: usize,
    /// Deterministic RNG state for sampling policies.
    pub rng: u64,
}

impl PolicyState {
    /// Creates state with a fixed seed for reproducible placements.
    pub fn new(seed: u64) -> Self {
        PolicyState {
            cursor: 0,
            rng: seed | 1,
        }
    }

    fn next_rand(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }
}

impl PlacementPolicy {
    /// Chooses a node for `spec` among `loads`, or `None` if no node's
    /// total capacity fits the demand (the task must be parked until the
    /// cluster changes).
    pub fn place(
        &self,
        spec: &TaskSpec,
        loads: &BTreeMap<NodeId, LoadReport>,
        objects: &ObjectTable,
        state: &mut PolicyState,
    ) -> Option<NodeId> {
        // `BTreeMap` iterates in node order, so the candidate list — and
        // therefore every tie-break below — is reproducible across runs.
        let fitting: Vec<&LoadReport> = loads
            .values()
            .filter(|l| l.total.fits(&spec.resources))
            .collect();
        if fitting.is_empty() {
            return None;
        }

        match self {
            PlacementPolicy::LocalityAware => {
                // Estimated placement cost per node: the bytes that would
                // have to move there, plus a queue penalty that prices one
                // queued task at QUEUE_PENALTY_BYTES of transfer. Small
                // arguments therefore do not glue tasks to a busy node,
                // while large ones do — "object locality and resource
                // availability" (§3.2.2) in one scalar.
                const QUEUE_PENALTY_BYTES: u128 = 64 * 1024;
                let mut local_bytes: HashMap<NodeId, u64> = HashMap::new();
                let mut total_bytes: u64 = 0;
                // One group-committed table sweep for the whole argument
                // list instead of a point read per dependency. Every
                // holder of a dependency is credited its size, so a
                // replicated hot input widens the set of nodes that look
                // local — replication improves placement for free.
                let deps: Vec<_> = spec.dependencies().collect();
                for info in objects.get_many(&deps).into_iter().flatten() {
                    total_bytes += info.size;
                    for node in &info.locations {
                        *local_bytes.entry(*node).or_insert(0) += info.size;
                    }
                }
                fitting
                    .iter()
                    .min_by_key(|l| {
                        let local = local_bytes.get(&l.node).copied().unwrap_or(0);
                        let missing = total_bytes.saturating_sub(local) as u128;
                        (
                            missing + l.queue_depth() as u128 * QUEUE_PENALTY_BYTES,
                            l.node,
                        )
                    })
                    .map(|l| l.node)
            }
            PlacementPolicy::LeastLoaded => fitting
                .iter()
                .min_by_key(|l| (l.queue_depth(), l.node))
                .map(|l| l.node),
            PlacementPolicy::RoundRobin => {
                let pick = fitting[state.cursor % fitting.len()].node;
                state.cursor = state.cursor.wrapping_add(1);
                Some(pick)
            }
            PlacementPolicy::PowerOfTwo => {
                let a = (state.next_rand() as usize) % fitting.len();
                let b = (state.next_rand() as usize) % fitting.len();
                let (la, lb) = (fitting[a], fitting[b]);
                Some(if la.queue_depth() <= lb.queue_depth() {
                    la.node
                } else {
                    lb.node
                })
            }
        }
    }
}

/// Picks a steal victim among `candidates` — peers whose kv-published
/// ready backlog already passed the thief's threshold. Power-of-two
/// choices over the candidate set (classic low-state load sampling),
/// the deeper ready backlog wins; an exact tie falls to a **locality**
/// tiebreak: the victim holding more bytes of the objects already
/// resident on the thief (`thief_resident`, the store-residency hint
/// the steal request ships) wins, because a shared working set means
/// the victim's tasks are more likely to find their dependencies
/// already local on the thief. The tiebreak reads the object table as
/// one batched `get_many` sweep — never per-object probes — and only
/// when a tie makes it necessary. Deterministic given `state`.
pub fn choose_victim<'a>(
    candidates: &'a [LoadReport],
    thief_resident: &[ObjectId],
    objects: &ObjectTable,
    state: &mut PolicyState,
) -> Option<&'a LoadReport> {
    match candidates.len() {
        0 => None,
        1 => Some(&candidates[0]),
        n => {
            let a = &candidates[(state.next_rand() as usize) % n];
            let b = &candidates[(state.next_rand() as usize) % n];
            Some(match a.ready.cmp(&b.ready) {
                std::cmp::Ordering::Greater => a,
                std::cmp::Ordering::Less => b,
                std::cmp::Ordering::Equal if a.node == b.node => a,
                std::cmp::Ordering::Equal => {
                    let infos = objects.get_many(thief_resident);
                    let shared = |node: NodeId| {
                        infos
                            .iter()
                            .flatten()
                            .filter(|info| info.locations.contains(&node))
                            .map(|info| info.size)
                            .sum::<u64>()
                    };
                    let (sa, sb) = (shared(a.node), shared(b.node));
                    match sa.cmp(&sb) {
                        std::cmp::Ordering::Greater => a,
                        std::cmp::Ordering::Less => b,
                        std::cmp::Ordering::Equal if a.node <= b.node => a,
                        std::cmp::Ordering::Equal => b,
                    }
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::ids::{DriverId, FunctionId, TaskId};
    use rtml_common::resources::Resources;
    use rtml_common::task::ArgSpec;
    use rtml_kv::KvStore;

    fn load(node: u32, queue: u32, total: Resources) -> (NodeId, LoadReport) {
        (
            NodeId(node),
            LoadReport {
                node: NodeId(node),
                sched_address: node as u64,
                ready: queue,
                waiting: 0,
                running: 0,
                idle_workers: 1,
                available: total.clone(),
                total,
                at_nanos: 0,
            },
        )
    }

    fn cpu_task(args: Vec<ArgSpec>) -> TaskSpec {
        let root = TaskId::driver_root(DriverId::from_index(0));
        TaskSpec::simple(root.child(0), FunctionId::from_name("f"), args)
    }

    #[test]
    fn no_fitting_node_parks() {
        let loads: BTreeMap<_, _> = [load(0, 0, Resources::cpu(4.0))].into_iter().collect();
        let objects = ObjectTable::new(KvStore::new(1));
        let mut spec = cpu_task(vec![]);
        spec.resources = Resources::gpu(1.0);
        let mut state = PolicyState::new(1);
        assert_eq!(
            PlacementPolicy::LocalityAware.place(&spec, &loads, &objects, &mut state),
            None
        );
    }

    #[test]
    fn least_loaded_picks_shallowest() {
        let loads: BTreeMap<_, _> = [
            load(0, 5, Resources::cpu(4.0)),
            load(1, 1, Resources::cpu(4.0)),
            load(2, 3, Resources::cpu(4.0)),
        ]
        .into_iter()
        .collect();
        let objects = ObjectTable::new(KvStore::new(1));
        let mut state = PolicyState::new(1);
        assert_eq!(
            PlacementPolicy::LeastLoaded.place(&cpu_task(vec![]), &loads, &objects, &mut state),
            Some(NodeId(1))
        );
    }

    #[test]
    fn locality_beats_load() {
        let kv = KvStore::new(1);
        let objects = ObjectTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(0));
        let dep = root.child(9).return_object(0);
        // A large argument lives on busy node 0.
        objects.add_location(dep, NodeId(0), 1_000_000);

        let loads: BTreeMap<_, _> = [
            load(0, 10, Resources::cpu(4.0)),
            load(1, 0, Resources::cpu(4.0)),
        ]
        .into_iter()
        .collect();
        let spec = cpu_task(vec![ArgSpec::ObjectRef(dep)]);
        let mut state = PolicyState::new(1);
        assert_eq!(
            PlacementPolicy::LocalityAware.place(&spec, &loads, &objects, &mut state),
            Some(NodeId(0))
        );
        // Without the dependency, the same policy prefers the idle node.
        assert_eq!(
            PlacementPolicy::LocalityAware.place(&cpu_task(vec![]), &loads, &objects, &mut state),
            Some(NodeId(1))
        );
    }

    #[test]
    fn replicated_input_lets_locality_pick_the_idle_holder() {
        // A large input resident only on busy node 0 glues the task
        // there (moving the bytes would cost more than the queue).
        // Once a replica exists on idle node 1, both nodes look local
        // and the shallower queue wins — replication widens placement.
        let kv = KvStore::new(1);
        let objects = ObjectTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(0));
        let dep = root.child(9).return_object(0);
        objects.add_location(dep, NodeId(0), 1_000_000);
        let loads: BTreeMap<_, _> = [
            load(0, 10, Resources::cpu(4.0)),
            load(1, 0, Resources::cpu(4.0)),
        ]
        .into_iter()
        .collect();
        let spec = cpu_task(vec![ArgSpec::ObjectRef(dep)]);
        let mut state = PolicyState::new(1);
        assert_eq!(
            PlacementPolicy::LocalityAware.place(&spec, &loads, &objects, &mut state),
            Some(NodeId(0))
        );
        objects.add_location(dep, NodeId(1), 1_000_000);
        assert_eq!(
            PlacementPolicy::LocalityAware.place(&spec, &loads, &objects, &mut state),
            Some(NodeId(1))
        );
    }

    #[test]
    fn locality_only_considers_fitting_nodes() {
        let kv = KvStore::new(1);
        let objects = ObjectTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(0));
        let dep = root.child(9).return_object(0);
        // The data is on a CPU-only node, but the task needs a GPU.
        objects.add_location(dep, NodeId(0), 1_000_000);
        let loads: BTreeMap<_, _> = [
            load(0, 0, Resources::cpu(4.0)),
            load(1, 0, Resources::new(4.0, 1.0)),
        ]
        .into_iter()
        .collect();
        let mut spec = cpu_task(vec![ArgSpec::ObjectRef(dep)]);
        spec.resources = Resources::gpu(1.0);
        let mut state = PolicyState::new(1);
        assert_eq!(
            PlacementPolicy::LocalityAware.place(&spec, &loads, &objects, &mut state),
            Some(NodeId(1))
        );
    }

    #[test]
    fn round_robin_cycles() {
        let loads: BTreeMap<_, _> = [
            load(0, 0, Resources::cpu(4.0)),
            load(1, 0, Resources::cpu(4.0)),
            load(2, 0, Resources::cpu(4.0)),
        ]
        .into_iter()
        .collect();
        let objects = ObjectTable::new(KvStore::new(1));
        let mut state = PolicyState::new(1);
        let picks: Vec<_> = (0..6)
            .map(|_| {
                PlacementPolicy::RoundRobin
                    .place(&cpu_task(vec![]), &loads, &objects, &mut state)
                    .unwrap()
            })
            .collect();
        assert_eq!(
            picks,
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(0),
                NodeId(1),
                NodeId(2)
            ]
        );
    }

    #[test]
    fn power_of_two_prefers_less_loaded_on_average() {
        let loads: BTreeMap<_, _> = [
            load(0, 100, Resources::cpu(4.0)),
            load(1, 0, Resources::cpu(4.0)),
        ]
        .into_iter()
        .collect();
        let objects = ObjectTable::new(KvStore::new(1));
        let mut state = PolicyState::new(42);
        let mut node1_picks = 0;
        for _ in 0..100 {
            if PlacementPolicy::PowerOfTwo
                .place(&cpu_task(vec![]), &loads, &objects, &mut state)
                .unwrap()
                == NodeId(1)
            {
                node1_picks += 1;
            }
        }
        // Picks node 1 unless both samples land on node 0 (~25%).
        assert!(node1_picks > 60, "node1_picks={node1_picks}");
    }

    #[test]
    fn choose_victim_prefers_deeper_backlog() {
        let objects = ObjectTable::new(KvStore::new(1));
        let candidates: Vec<LoadReport> = vec![
            load(0, 2, Resources::cpu(4.0)).1,
            load(1, 50, Resources::cpu(4.0)).1,
        ];
        let mut state = PolicyState::new(7);
        // Whenever the two samples differ, the 50-deep queue wins; only
        // a double draw of node 0 (~25%) picks it. Majority check.
        let mut deep = 0;
        for _ in 0..32 {
            if choose_victim(&candidates, &[], &objects, &mut state)
                .unwrap()
                .node
                == NodeId(1)
            {
                deep += 1;
            }
        }
        assert!(deep > 20, "deep victim picked only {deep}/32 times");
        assert!(choose_victim(&[], &[], &objects, &mut state).is_none());
        assert_eq!(
            choose_victim(&candidates[..1], &[], &objects, &mut state)
                .unwrap()
                .node,
            NodeId(0)
        );
    }

    #[test]
    fn choose_victim_ties_break_on_shared_resident_bytes() {
        // Two equally-deep victims; the thief already holds an object
        // that node 2 also holds — shared working set, so node 2 wins
        // every tie. Only a double draw of node 1 (~25%) avoids the
        // tiebreak, hence the majority check.
        let kv = KvStore::new(1);
        let objects = ObjectTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(0));
        let resident: ObjectId = root.child(5).return_object(0);
        objects.add_location(resident, NodeId(2), 4096);
        let candidates: Vec<LoadReport> = vec![
            load(1, 10, Resources::cpu(4.0)).1,
            load(2, 10, Resources::cpu(4.0)).1,
        ];
        let mut state = PolicyState::new(3);
        let mut node2 = 0;
        for _ in 0..32 {
            if choose_victim(&candidates, &[resident], &objects, &mut state)
                .unwrap()
                .node
                == NodeId(2)
            {
                node2 += 1;
            }
        }
        assert!(
            node2 > 20,
            "locality tiebreak picked node 2 only {node2}/32"
        );
    }

    #[test]
    fn placement_is_deterministic_given_state() {
        let loads: BTreeMap<_, _> = [
            load(0, 1, Resources::cpu(4.0)),
            load(1, 2, Resources::cpu(4.0)),
        ]
        .into_iter()
        .collect();
        let objects = ObjectTable::new(KvStore::new(1));
        let a = PlacementPolicy::LocalityAware.place(
            &cpu_task(vec![]),
            &loads,
            &objects,
            &mut PolicyState::new(7),
        );
        let b = PlacementPolicy::LocalityAware.place(
            &cpu_task(vec![]),
            &loads,
            &objects,
            &mut PolicyState::new(7),
        );
        assert_eq!(a, b);
    }
}
