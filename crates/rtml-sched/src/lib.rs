//! The hybrid, bottom-up scheduler (paper §3.2.2).
//!
//! The paper's scheduling architecture is the answer to the tension
//! between latency (R1) and throughput (R2) under *dynamic* task creation
//! (R3): tasks are born on whatever worker created them, so scheduling
//! decisions must start at the edge, not at a central choke point.
//!
//! - Every node runs a [`LocalScheduler`]: workers submit tasks to it
//!   directly (an in-process channel — no network hop). It tracks
//!   per-node resource availability, gates tasks on their dataflow
//!   dependencies (a task is dispatched if and only if every object it
//!   consumes is sealed in the local store), and dispatches to idle
//!   workers.
//! - When a task's demand can never fit the node, or the local backlog
//!   exceeds the [`SpillMode`] threshold, the task **spills over** to a
//!   [`GlobalScheduler`] via the simulated fabric (paying the cross-node
//!   latency the paper's hybrid design tries to avoid on the fast path).
//! - The global scheduler places spilled tasks using cluster-wide
//!   information — per-node load reports and the object table's locality
//!   data — under a pluggable [`PlacementPolicy`].
//!
//! Experiments: E8 compares `SpillMode::{Hybrid, AlwaysSpill, NeverSpill}`
//! (hybrid vs fully-centralized vs node-local scheduling); A2 compares
//! placement policies.
//!
//! [`LocalScheduler`]: local::LocalScheduler
//! [`GlobalScheduler`]: global::GlobalScheduler

pub mod global;
pub mod local;
pub mod msg;
pub mod policy;
pub mod spill;
pub mod steal;
pub mod wire;

pub use global::{
    GlobalRoutes, GlobalScheduler, GlobalSchedulerConfig, GlobalSchedulerHandle, GlobalStats,
};
pub use local::{
    fetch_group_commit, LocalScheduler, LocalSchedulerConfig, LocalSchedulerHandle,
    LocalSchedulerStats, SchedServices,
};
pub use msg::{load_key, LoadReport, LocalMsg, WorkerCommand, WorkerHandle};
pub use policy::{choose_victim, LoadView, PlacementPolicy, PolicyState, DEFAULT_TOP_K};
pub use spill::SpillMode;
pub use steal::{plan_steal_grant, StealConfig, StealStats};
pub use wire::SchedWire;
