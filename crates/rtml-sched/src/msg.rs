//! In-process messages between workers, local schedulers, and the runtime.

use crossbeam::channel::Sender;

use rtml_common::codec::{Codec, Reader, Writer};
use rtml_common::error::Result;
use rtml_common::ids::{NodeId, ObjectId, TaskId, WorkerId};
use rtml_common::resources::Resources;
use rtml_common::task::TaskSpec;

/// Commands the local scheduler sends to a worker thread.
#[derive(Debug)]
pub enum WorkerCommand {
    /// Execute this task; report completion via `LocalMsg::WorkerDone`.
    Run(TaskSpec),
    /// Exit the worker loop.
    Stop,
}

/// A worker as seen by the local scheduler: identity plus command
/// channel.
#[derive(Clone, Debug)]
pub struct WorkerHandle {
    /// Worker identity.
    pub id: WorkerId,
    /// Command channel into the worker thread.
    pub tx: Sender<WorkerCommand>,
}

/// Mailbox messages for a [`crate::local::LocalScheduler`].
#[derive(Debug)]
pub enum LocalMsg {
    /// A task submission. `via_global` marks placements made by the
    /// global scheduler, which must not spill again (except when the
    /// node genuinely cannot ever satisfy the demand).
    Submit {
        /// The task.
        spec: TaskSpec,
        /// Whether the global scheduler placed this task here.
        via_global: bool,
    },
    /// A batch of task submissions ingested as one message: one channel
    /// send, one spill/dependency scan, and group-committed control-plane
    /// writes for the whole batch (the hot-path amortization behind R2's
    /// millions of tasks per second).
    SubmitBatch {
        /// The tasks, in submission order.
        specs: Vec<TaskSpec>,
        /// Whether the global scheduler placed these tasks here.
        via_global: bool,
    },
    /// An object was sealed into this node's store (from a local worker,
    /// a completed fetch, or a reconstruction) — re-evaluate waiters.
    ObjectSealed(ObjectId),
    /// A worker finished its task (successfully or not) and is idle.
    WorkerDone {
        /// The worker, now idle.
        worker: WorkerId,
        /// The task it ran.
        task: TaskId,
    },
    /// Attach a worker to this scheduler's pool.
    AddWorker(WorkerHandle),
    /// Detach a worker (failure injection). Its running task, if any, is
    /// marked lost.
    RemoveWorker(WorkerId),
    /// The worker's current task is blocked in `get`/`wait`: release its
    /// resource grant so other tasks can run (the anti-deadlock
    /// mechanism for nested task graphs; Ray does the same).
    WorkerBlocked {
        /// The blocked worker.
        worker: WorkerId,
        /// The task that is blocking.
        task: TaskId,
    },
    /// The worker's task resumed; re-acquire its grant (transient
    /// oversubscription is tolerated).
    WorkerUnblocked {
        /// The resumed worker.
        worker: WorkerId,
        /// The task that resumed.
        task: TaskId,
    },
    /// Drain and exit.
    Shutdown,
}

/// A node's load, as published to the global scheduler and control
/// plane. This is the information basis for placement (paper §3.2.2:
/// "global information about factors including object locality and
/// resource availability").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadReport {
    /// Reporting node.
    pub node: NodeId,
    /// Raw fabric address of the node's local scheduler
    /// ([`rtml_net::NetAddress::as_u64`]). Carried in the report so an
    /// idle peer reading the kv mirror can address a
    /// [`crate::wire::SchedWire::StealRequest`] directly, without a
    /// round trip through the global scheduler.
    pub sched_address: u64,
    /// Tasks runnable now (dependencies satisfied) but not yet started.
    pub ready: u32,
    /// Tasks blocked on dependencies.
    pub waiting: u32,
    /// Tasks currently executing.
    pub running: u32,
    /// Idle workers.
    pub idle_workers: u32,
    /// Resources not currently allocated.
    pub available: Resources,
    /// The node's full capacity.
    pub total: Resources,
    /// Timestamp (nanos since process epoch).
    pub at_nanos: u64,
}

impl LoadReport {
    /// Backlog pressure used by load-based placement: runnable plus
    /// running work, normalized per idle worker would be fancier; queue
    /// depth is what the paper's threshold policy needs.
    pub fn queue_depth(&self) -> u32 {
        self.ready + self.running
    }
}

impl Codec for LoadReport {
    fn encode(&self, w: &mut Writer) {
        self.node.encode(w);
        w.put_u64(self.sched_address);
        w.put_u32(self.ready);
        w.put_u32(self.waiting);
        w.put_u32(self.running);
        w.put_u32(self.idle_workers);
        self.available.encode(w);
        self.total.encode(w);
        w.put_varint(self.at_nanos);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(LoadReport {
            node: NodeId::decode(r)?,
            sched_address: r.take_u64()?,
            ready: r.take_u32()?,
            waiting: r.take_u32()?,
            running: r.take_u32()?,
            idle_workers: r.take_u32()?,
            available: Resources::decode(r)?,
            total: Resources::decode(r)?,
            at_nanos: r.take_varint()?,
        })
    }
}

/// Key under which a node's load report is mirrored into the KV store
/// (for debugging tools; the scheduling path uses fabric messages).
pub fn load_key(node: NodeId) -> bytes::Bytes {
    bytes::Bytes::from(format!("load:{}", node.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::codec::{decode_from_slice, encode_to_bytes};

    #[test]
    fn load_report_round_trips() {
        let report = LoadReport {
            node: NodeId(3),
            sched_address: 42,
            ready: 5,
            waiting: 2,
            running: 4,
            idle_workers: 0,
            available: Resources::cpu(1.0),
            total: Resources::new(4.0, 1.0),
            at_nanos: 12345,
        };
        let bytes = encode_to_bytes(&report);
        let back: LoadReport = decode_from_slice(&bytes).unwrap();
        assert_eq!(report, back);
        assert_eq!(report.queue_depth(), 9);
    }

    #[test]
    fn load_keys_are_distinct_per_node() {
        assert_ne!(load_key(NodeId(0)), load_key(NodeId(1)));
    }
}
