//! The per-node local scheduler (paper §3.2.2, Figure 3).
//!
//! One instance runs per node as a dedicated thread. It owns three task
//! collections:
//!
//! - `waiting`: tasks with unsatisfied dataflow dependencies. For each
//!   missing object a **resolver** watches the object table, fetches the
//!   object from a remote holder as soon as a copy exists (updating the
//!   object table), and asks the runtime's reconstruction hook for help
//!   if the object has been lost. When the object seals locally the task
//!   moves to `ready` — the paper's "tasks become available for execution
//!   if and only if their dependencies have finished executing".
//! - `ready`: runnable tasks awaiting a worker and resources. Dispatch is
//!   first-fit: a small CPU task may overtake a GPU task that is waiting
//!   for a free GPU (heterogeneity, R4).
//! - `running`: tasks on workers, with their resource grants.
//!
//! Submissions from same-node workers arrive on an in-process channel
//! (the latency-critical path, R1); placements from the global scheduler
//! arrive over the fabric; spill decisions follow the configured
//! [`SpillMode`].

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use rtml_common::codec::{decode_from_slice, encode_to_bytes, Codec};
use rtml_common::collections::{fast_map_with_capacity, FastMap, FastSet};
use rtml_common::event::{Component, Event, EventKind};
use rtml_common::ids::{NodeId, ObjectId, TaskId, WorkerId};
use rtml_common::resources::Resources;
use rtml_common::task::{TaskSpec, TaskState};
use rtml_kv::{EventLog, KvStore, ObjectTable, TaskTable};
use rtml_net::{Fabric, NetAddress};
use rtml_store::{FetchAgent, ObjectStore, TransferDirectory};

use crate::msg::{load_key, LoadReport, LocalMsg, WorkerCommand, WorkerHandle};
use crate::policy::{choose_victim, PolicyState};
use crate::spill::SpillMode;
use crate::steal::{plan_steal_grant, StealConfig, StealStats};
use crate::wire::SchedWire;

/// Static configuration for one local scheduler.
#[derive(Clone, Debug)]
pub struct LocalSchedulerConfig {
    /// Node this scheduler manages.
    pub node: NodeId,
    /// The node's total resource capacity.
    pub total_resources: Resources,
    /// Spillover decision rule.
    pub spill: SpillMode,
    /// Per-attempt timeout for remote object fetches.
    pub fetch_timeout: Duration,
    /// Minimum interval between load publications.
    pub load_interval: Duration,
    /// Dispatch-time prefetch: when a batch of tasks is queued, the
    /// scheduler groups their missing-but-located dependencies by
    /// holder and issues one coalesced `FetchMany` per holder
    /// immediately, so transfer overlaps queueing. When off, every
    /// missing object is resolved reactively by its own watcher.
    /// Prefetch changes *when bytes move*, never what runs: dispatch is
    /// gated on arrival either way, and ids/placements are identical.
    pub prefetch: bool,
    /// Pull-based work stealing: when this scheduler's ready queue
    /// drains while a peer's kv-published backlog is deep, pull a batch
    /// of the peer's ready tasks over the fabric (see
    /// [`crate::steal`]). Like prefetch and replication, stealing moves
    /// *where tasks run*, never values — checksums are identical with
    /// it on or off.
    pub stealing: StealConfig,
    /// Pipelined ingest: batch submissions are *accepted* synchronously
    /// (one mailbox pop, one push onto a staging ring) and *indexed*
    /// (spill decisions, dependency gating, group-committed state
    /// writes) on subsequent loop turns, so the driver's marshalling of
    /// the next batch overlaps this node's ingest of the previous one.
    /// Staged work drains before the mailbox goes idle and before
    /// shutdown, and every batch is indexed in arrival order, so
    /// values, placements, and `wait` semantics are unchanged — only
    /// *when* ingest work happens moves.
    pub pipelined_ingest: bool,
    /// How many accepted-but-unindexed batches may accumulate before an
    /// accept forces a flush of the oldest (bounds staged memory and
    /// ingest latency under sustained submission pressure).
    pub staging_depth: usize,
}

impl Default for LocalSchedulerConfig {
    fn default() -> Self {
        LocalSchedulerConfig {
            node: NodeId(0),
            total_resources: Resources::cpu(4.0),
            spill: SpillMode::default(),
            fetch_timeout: Duration::from_secs(2),
            load_interval: Duration::from_millis(1),
            prefetch: true,
            stealing: StealConfig::default(),
            pipelined_ingest: true,
            staging_depth: 4,
        }
    }
}

/// Shared services every scheduler component needs. Cloning is cheap
/// (everything is behind `Arc`).
#[derive(Clone)]
pub struct SchedServices {
    /// Control-plane store.
    pub kv: Arc<KvStore>,
    /// Object table view.
    pub objects: ObjectTable,
    /// Task table view.
    pub tasks: TaskTable,
    /// Event log (R7).
    pub events: EventLog,
    /// The simulated network.
    pub fabric: Arc<Fabric>,
    /// Node → transfer-service address map.
    pub directory: Arc<TransferDirectory>,
    /// This node's object store.
    pub store: Arc<ObjectStore>,
    /// This node's fetch client: persistent endpoint, coalesced
    /// multi-object requests, single-flighted duplicates.
    pub agent: Arc<FetchAgent>,
    /// Shard routing for the global scheduler: spilled tasks go to the
    /// shard owning their id; node lifecycle and load reports are
    /// broadcast to every shard.
    pub global: crate::global::GlobalRoutes,
    /// Runtime hook invoked when a watched object appears to be lost
    /// (has a producer but no live copies). The runtime deduplicates and
    /// resubmits producing tasks (lineage replay).
    pub reconstruct: Arc<dyn Fn(ObjectId) + Send + Sync>,
    /// Runtime hook asking the node to grow its worker pool: invoked
    /// when runnable tasks exist, no worker is idle, and at least one
    /// worker is blocked inside `get`/`wait` (nested-task deadlock
    /// avoidance).
    pub request_worker: Arc<dyn Fn() + Send + Sync>,
    /// Replication-plane hint, invoked at dispatch/prefetch time with
    /// `(holder, [(object, extra fan-in)])`: a coalesced prefetch issues
    /// **one** request frame on behalf of many waiting tasks, so the
    /// holder's per-object demand counters would undercount exactly the
    /// broadcast objects replication exists for. The runtime wires this
    /// to the holder's transfer-service demand counters; defaults to a
    /// no-op when the replication plane is off.
    pub replicate_hint: Arc<dyn Fn(NodeId, &[(ObjectId, u64)]) + Send + Sync>,
}

/// Live counters for one local scheduler (beyond the event log).
#[derive(Debug, Default)]
pub struct LocalSchedulerStats {
    /// Dispatch-time prefetches skipped because the object would not
    /// fit in the store's unpinned capacity headroom (`capacity -
    /// pinned`): moving bytes early is pointless if they cannot become
    /// resident, and evicting pinned-adjacent working state to make
    /// room would be worse. Skipped objects resolve reactively.
    pub prefetch_skipped_capacity: rtml_common::metrics::Counter,
    /// Dispatch-time prefetches deferred by *prioritization*: the
    /// object fits the headroom on its own, but dependencies of tasks
    /// nearer the head of the ready queue consumed the budget first.
    /// Deferred objects resolve reactively (and retry when the head of
    /// the queue drains the budget back).
    pub prefetch_deferred_priority: rtml_common::metrics::Counter,
    /// Steal-plane counters (thief and victim sides).
    pub steal: StealStats,
}

/// Running handle for a local scheduler.
pub struct LocalSchedulerHandle {
    tx: Sender<LocalMsg>,
    address: NetAddress,
    node: NodeId,
    stats: Arc<LocalSchedulerStats>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl LocalSchedulerHandle {
    /// The in-process submission channel (used by same-node workers and
    /// the driver).
    pub fn sender(&self) -> Sender<LocalMsg> {
        self.tx.clone()
    }

    /// The scheduler's fabric address (placements are sent here).
    pub fn address(&self) -> NetAddress {
        self.address
    }

    /// The node this scheduler manages.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The scheduler's live counters (shared with its thread).
    pub fn stats(&self) -> &Arc<LocalSchedulerStats> {
        &self.stats
    }

    /// Submits a task from this node (driver/worker path).
    pub fn submit(&self, spec: TaskSpec) {
        let _ = self.tx.send(LocalMsg::Submit {
            spec,
            via_global: false,
        });
    }

    /// Submits a whole batch of tasks from this node as **one** mailbox
    /// message — the entry point of the batched hot path.
    pub fn submit_batch(&self, specs: Vec<TaskSpec>) {
        let _ = self.tx.send(LocalMsg::SubmitBatch {
            specs,
            via_global: false,
        });
    }

    /// Requests shutdown and joins the scheduler thread.
    pub fn shutdown(&mut self) {
        let _ = self.tx.send(LocalMsg::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for LocalSchedulerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Namespace for spawning local schedulers.
pub struct LocalScheduler;

impl LocalScheduler {
    /// Spawns a local scheduler thread for `config.node`.
    ///
    /// `workers` are the node's initial worker pool; more can be attached
    /// later with [`LocalMsg::AddWorker`]. The scheduler registers its
    /// fabric endpoint, announces itself to the global scheduler
    /// (`NodeUp`), and publishes an initial load report.
    pub fn spawn(
        config: LocalSchedulerConfig,
        services: SchedServices,
        workers: Vec<WorkerHandle>,
    ) -> LocalSchedulerHandle {
        let (tx, rx) = unbounded();
        let endpoint = services.fabric.register(config.node, "local-sched");
        let address = endpoint.address();
        let node = config.node;
        let stats = Arc::new(LocalSchedulerStats::default());
        let stats2 = stats.clone();

        let (seal_tx, seal_rx) = unbounded();
        services.store.add_seal_listener(seal_tx);

        let join = std::thread::Builder::new()
            .name(format!("rtml-lsched-{node}"))
            .spawn(move || {
                let mut core = Core {
                    config,
                    services,
                    address,
                    stats: stats2,
                    workers: FastMap::default(),
                    idle: VecDeque::new(),
                    in_use: Resources::none(),
                    ready: VecDeque::new(),
                    waiting: FastMap::default(),
                    watchers: FastMap::default(),
                    resolving: FastSet::default(),
                    task_pins: FastMap::default(),
                    running: BTreeMap::new(),
                    released: FastSet::default(),
                    spawn_pending: false,
                    load_dirty: true,
                    last_load: Instant::now() - Duration::from_secs(1),
                    steal_inflight: None,
                    steal_seq: 0,
                    last_steal: Instant::now() - Duration::from_secs(1),
                    steal_failures: 0,
                    steal_hint: Vec::new(),
                    steal_hint_at: Instant::now() - Duration::from_secs(1),
                    steal_rng: PolicyState::new(0x57ea1 ^ ((node.0 as u64) << 32)),
                    stolen_pending: FastMap::default(),
                    staging: VecDeque::new(),
                    staging_seq: 0,
                    staged_tasks: 0,
                };
                for w in workers {
                    core.add_worker(w);
                }
                core.announce();
                core.run(rx, endpoint, seal_rx);
            })
            .expect("spawn local scheduler");

        LocalSchedulerHandle {
            tx,
            address,
            node,
            stats,
            join: Some(join),
        }
    }
}

enum Incoming {
    Local(LocalMsg),
    Net(bytes::Bytes),
    Seal(ObjectId),
    Tick,
    /// The mailbox is momentarily idle and staged batches exist: index
    /// one (the deferred half of pipelined ingest).
    Drain,
    Closed,
}

struct Core {
    config: LocalSchedulerConfig,
    services: SchedServices,
    address: NetAddress,
    stats: Arc<LocalSchedulerStats>,
    workers: FastMap<WorkerId, Sender<WorkerCommand>>,
    idle: VecDeque<WorkerId>,
    /// Resources granted to running (non-blocked) tasks. May transiently
    /// exceed the node total when blocked tasks resume.
    in_use: Resources,
    ready: VecDeque<TaskSpec>,
    /// task → (spec, number of distinct objects still missing).
    waiting: FastMap<TaskId, (TaskSpec, usize)>,
    /// missing object → tasks waiting on it.
    watchers: FastMap<ObjectId, Vec<TaskId>>,
    /// objects with an active resolver (a prefetch in flight or a
    /// watcher thread).
    resolving: FastSet<ObjectId>,
    /// Dependencies pinned on behalf of a task from the moment they
    /// arrive until the task completes, so LRU eviction cannot drop a
    /// fetched/prefetched argument between arrival and execution.
    task_pins: FastMap<TaskId, Vec<ObjectId>>,
    /// Ordered by task ID so iteration (e.g. collecting the tasks lost
    /// with a dead worker) is reproducible across runs — `HashMap`
    /// iteration order is seeded per process and would make failure
    /// handling order (and thus the event log) nondeterministic.
    running: BTreeMap<TaskId, (WorkerId, Resources)>,
    /// Tasks whose grant has been released because they are blocked in
    /// `get`/`wait`.
    released: FastSet<TaskId>,
    /// A worker-pool growth request is outstanding.
    spawn_pending: bool,
    load_dirty: bool,
    last_load: Instant,
    /// The outstanding steal request, if any. One request in flight at
    /// a time; a grant from *that* victim (even empty) or the deadline
    /// re-arms the loop, so a dead victim can never wedge it — and a
    /// late grant from a previously timed-out victim cannot cancel a
    /// newer request's deadline.
    steal_inflight: Option<StealInflight>,
    /// Correlation sequence for steal request→grant spans. Thief-local:
    /// with at most one request in flight, `(thief, seq)` identifies a
    /// round trip without widening the wire protocol.
    steal_seq: u64,
    last_steal: Instant,
    /// Consecutive fruitless steal attempts (timeouts and empty
    /// grants). Feeds [`StealConfig::retry`]'s backoff so an idle
    /// scheduler facing a partition probes gently instead of hammering
    /// the flat interval; any non-empty grant resets it.
    steal_failures: u32,
    /// Cached residency hint (bounded sample of locally-resident
    /// objects) with its build time: enumerating the store is O(n), so
    /// the hint is refreshed on a TTL instead of per attempt — it is a
    /// hint, staleness only softens locality scoring.
    steal_hint: Vec<ObjectId>,
    steal_hint_at: Instant,
    /// Deterministic sampling state for power-of-two victim selection.
    steal_rng: PolicyState,
    /// Stolen tasks not yet dispatched: grant-arrival instants for the
    /// steal-to-run latency histogram.
    stolen_pending: FastMap<TaskId, Instant>,
    /// Accepted-but-unindexed batches (pipelined ingest): each entry is
    /// `(seq, specs, via_global)`, flushed FIFO so indexing order
    /// equals arrival order. The seq correlates each batch's
    /// `BatchStaged`/`BatchIndexed` span events.
    staging: VecDeque<(u64, Vec<TaskSpec>, bool)>,
    /// Next staging-batch sequence number.
    staging_seq: u64,
    /// Total tasks across `staging`, reported as `waiting` load so
    /// peers see accepted-but-unindexed backlog.
    staged_tasks: usize,
}

/// The thief's outstanding steal request (see `Core::steal_inflight`).
struct StealInflight {
    victim: NodeId,
    deadline: Instant,
    /// When the request frame left, for the round-trip span.
    sent_at: Instant,
    seq: u64,
}

impl Core {
    fn run(
        &mut self,
        rx: Receiver<LocalMsg>,
        endpoint: rtml_net::Endpoint,
        seal_rx: Receiver<ObjectId>,
    ) {
        loop {
            // With staged batches pending, never sleep: take whatever
            // message is already here, else index one staged batch
            // immediately. With none, the usual timed idle tick.
            let incoming = if self.staging.is_empty() {
                crossbeam::channel::select! {
                    recv(rx) -> m => m.map(Incoming::Local).unwrap_or(Incoming::Closed),
                    recv(endpoint.receiver()) -> d => d
                        .map(|d| Incoming::Net(d.payload))
                        .unwrap_or(Incoming::Closed),
                    recv(seal_rx) -> o => o.map(Incoming::Seal).unwrap_or(Incoming::Closed),
                    default(self.config.load_interval) => Incoming::Tick,
                }
            } else {
                crossbeam::channel::select! {
                    recv(rx) -> m => m.map(Incoming::Local).unwrap_or(Incoming::Closed),
                    recv(endpoint.receiver()) -> d => d
                        .map(|d| Incoming::Net(d.payload))
                        .unwrap_or(Incoming::Closed),
                    recv(seal_rx) -> o => o.map(Incoming::Seal).unwrap_or(Incoming::Closed),
                    default(Duration::ZERO) => Incoming::Drain,
                }
            };
            match incoming {
                Incoming::Local(LocalMsg::Shutdown) | Incoming::Closed => break,
                Incoming::Local(msg) => self.on_local(msg),
                Incoming::Net(payload) => self.on_net(payload),
                Incoming::Seal(object) => self.on_sealed(object),
                Incoming::Tick => {}
                Incoming::Drain => self.flush_one_staged(),
            }
            self.dispatch();
            self.maybe_steal();
            self.maybe_publish_load();
        }
        // Staged submissions must not die with the loop: index them so
        // their specs' states (and any spill decisions) are durable
        // before the drain barrier below.
        self.flush_staging();
        // Drain: stop workers, deregister from the fabric.
        for (_, tx) in self.workers.drain() {
            let _ = tx.send(WorkerCommand::Stop);
        }
        self.services.fabric.unregister(self.address);
    }

    fn announce(&mut self) {
        let up = SchedWire::NodeUp {
            node: self.config.node,
            sched_address: self.address.as_u64(),
        };
        let report = self.load_report();
        self.services
            .kv
            .set(load_key(self.config.node), encode_to_bytes(&report));
        // NodeUp and the first load report travel as one coalesced
        // frame per shard: every global shard learns reachability and
        // capacity together (one hop), so the formation barrier never
        // observes a node that is reachable but loadless.
        let up = encode_to_bytes(&up);
        let load = encode_to_bytes(&SchedWire::Load(report));
        for target in self.services.global.all() {
            let _ = self.services.fabric.send_batch(
                self.address,
                *target,
                vec![up.clone(), load.clone()],
            );
        }
        self.load_dirty = false;
        self.last_load = Instant::now();
    }

    fn on_local(&mut self, msg: LocalMsg) {
        match msg {
            LocalMsg::Submit { spec, via_global } => self.on_submit(spec, via_global),
            LocalMsg::SubmitBatch { specs, via_global } => self.on_submit_batch(specs, via_global),
            LocalMsg::ObjectSealed(object) => self.on_sealed(object),
            LocalMsg::WorkerDone { worker, task } => self.on_worker_done(worker, task),
            LocalMsg::AddWorker(handle) => self.add_worker(handle),
            LocalMsg::RemoveWorker(worker) => self.remove_worker(worker),
            LocalMsg::WorkerBlocked { worker: _, task } => self.on_blocked(task),
            LocalMsg::WorkerUnblocked { worker: _, task } => self.on_unblocked(task),
            LocalMsg::Shutdown => unreachable!("handled by run()"),
        }
    }

    fn on_net(&mut self, payload: bytes::Bytes) {
        match decode_from_slice::<SchedWire>(&payload) {
            Ok(SchedWire::Place { spec, hops: _ }) => self.on_submit(spec, true),
            Ok(SchedWire::PlaceBatch { specs, hops: _ }) => self.on_submit_batch(specs, true),
            Ok(SchedWire::Spill(spec)) => {
                // Misdirected spill (we are not a global scheduler);
                // treat as a local submission rather than dropping work.
                self.on_submit(spec, false)
            }
            Ok(SchedWire::SpillBatch(specs)) => self.on_submit_batch(specs, false),
            Ok(SchedWire::StealRequest {
                thief,
                reply_address,
                capacity,
                max_tasks,
                local_objects_hint,
            }) => self.on_steal_request(
                thief,
                reply_address,
                capacity,
                max_tasks as usize,
                local_objects_hint,
            ),
            Ok(SchedWire::StealGrant { victim, tasks }) => self.on_steal_grant(victim, tasks),
            Ok(_) | Err(_) => {}
        }
    }

    /// Thief side of the steal plane, run once per scheduler-loop turn:
    /// when the ready queue has drained while workers sit idle, sample
    /// a victim from the kv-published load reports and ask it for a
    /// batch. At most one request is in flight; [`StealConfig::timeout`]
    /// re-arms the loop when a victim dies mid-request.
    fn maybe_steal(&mut self) {
        let cfg = &self.config.stealing;
        if !cfg.enabled || !self.ready.is_empty() || self.idle.is_empty() || self.workers.is_empty()
        {
            return;
        }
        // Accepted-but-unindexed local work exists: index it before
        // pulling remote work.
        if !self.staging.is_empty() {
            return;
        }
        if let Some(inflight) = &self.steal_inflight {
            if Instant::now() < inflight.deadline {
                return;
            }
            // Victim never answered (died, or the request was lost —
            // a partition can swallow the request or the grant):
            // declare the request dead and try someone else.
            self.steal_inflight = None;
            self.stats.steal.timeouts.inc();
            self.steal_failures = self.steal_failures.saturating_add(1);
        }
        // Consecutive fruitless attempts back the re-arm pause off
        // exponentially (seeded per node, so the schedule is
        // reproducible); any non-empty grant snaps it back to the flat
        // interval.
        let pause = if self.steal_failures == 0 {
            cfg.interval
        } else {
            let attempt = (self.steal_failures - 1).min(16);
            cfg.interval
                .max(cfg.retry.backoff(attempt, u64::from(self.config.node.0)))
        };
        if self.last_steal.elapsed() < pause {
            return;
        }
        self.last_steal = Instant::now();
        let me = self.config.node;
        // The load reports every scheduler already mirrors into the kv
        // store (ROADMAP item: "using the load reports already
        // published") — one prefix scan, no extra protocol.
        // Reports older than a few heartbeat periods are ghosts: the
        // publisher is dead, partitioned, or wedged, and a steal
        // request at it would only burn a timeout. Live schedulers
        // republish at least every `load_interval * 16` (the heartbeat
        // branch of `maybe_publish_load`), so 64 intervals of silence
        // is decisive, not jitter.
        let stale_nanos = self
            .config
            .load_interval
            .saturating_mul(64)
            .max(Duration::from_millis(100))
            .as_nanos() as u64;
        let now_nanos = rtml_common::time::now_nanos();
        let candidates: Vec<LoadReport> = self
            .services
            .kv
            .scan_prefix(b"load:")
            .into_iter()
            .filter_map(|(_, bytes)| decode_from_slice::<LoadReport>(&bytes).ok())
            .filter(|report| {
                report.node != me
                    && report.ready > cfg.min_backlog
                    && now_nanos.saturating_sub(report.at_nanos) <= stale_nanos
            })
            .collect();
        if candidates.is_empty() {
            return;
        }
        // Residency hint: a bounded, deterministic sample of what is
        // already local here, for the victim's locality scoring (and
        // our own tiebreak below). Enumerating the store is O(n), so
        // the hint is rebuilt on a TTL — several times the attempt
        // interval — rather than per attempt, and partial selection
        // keeps the rebuild at O(n + cap·log cap), not a full sort.
        if self.steal_hint_at.elapsed() >= cfg.interval.saturating_mul(16) {
            let mut hint = self.services.store.list();
            let cap = cfg.hint_objects;
            if hint.len() > cap && cap > 0 {
                hint.select_nth_unstable(cap);
            }
            hint.truncate(cap);
            hint.sort_unstable();
            self.steal_hint = hint;
            self.steal_hint_at = Instant::now();
        }
        let hint = self.steal_hint.clone();
        let Some(victim) = choose_victim(
            &candidates,
            &hint,
            &self.services.objects,
            &mut self.steal_rng,
        ) else {
            return;
        };
        let request = SchedWire::StealRequest {
            thief: me,
            reply_address: self.address.as_u64(),
            capacity: self.config.total_resources.saturating_sub(&self.in_use),
            max_tasks: cfg.max_tasks as u32,
            local_objects_hint: hint,
        };
        self.stats.steal.attempts.inc();
        let sent = self.services.fabric.send(
            self.address,
            NetAddress::from_u64(victim.sched_address),
            encode_to_bytes(&request),
        );
        if sent.is_ok() {
            let seq = self.steal_seq;
            self.steal_seq += 1;
            self.steal_inflight = Some(StealInflight {
                victim: victim.node,
                deadline: Instant::now() + cfg.timeout,
                sent_at: Instant::now(),
                seq,
            });
            // Open the request→grant span (closed by StealRoundTrip
            // when this victim's answer arrives).
            self.services.events.append(
                me,
                Event::now(
                    Component::LocalScheduler,
                    EventKind::StealRequested {
                        thief: me,
                        victim: victim.node,
                        seq,
                    },
                ),
            );
        }
        // Send refused: the victim's endpoint is gone (stale report from
        // a dead node). No request is in flight, so the next turn simply
        // samples again.
    }

    /// Victim side: answer a steal request with one granted batch —
    /// possibly empty, when the queue drained since the thief read our
    /// load report (the stale-victim answer; the thief must never be
    /// left waiting on silence while we are alive).
    fn on_steal_request(
        &mut self,
        thief: NodeId,
        reply_address: u64,
        capacity: Resources,
        max_tasks: usize,
        hint: Vec<ObjectId>,
    ) {
        let me = self.config.node;
        let granted: Vec<TaskSpec> = if !self.config.stealing.enabled || self.ready.is_empty() {
            Vec::new()
        } else {
            // Score every ready candidate by the bytes of its
            // dependencies already resident on the thief: one batched
            // `get_many` sweep over the distinct dependencies (the same
            // grouping discipline as dispatch-time prefetch), never a
            // point probe per object.
            let mut distinct: Vec<ObjectId> = Vec::new();
            let mut seen: FastSet<ObjectId> = FastSet::default();
            for spec in &self.ready {
                for dep in spec.dependencies() {
                    if seen.insert(dep) {
                        distinct.push(dep);
                    }
                }
            }
            let hint: FastSet<ObjectId> = hint.into_iter().collect();
            let mut thief_bytes: FastMap<ObjectId, u64> = FastMap::default();
            if !distinct.is_empty() {
                let infos = self.services.objects.get_many(&distinct);
                for (dep, info) in distinct.into_iter().zip(infos) {
                    let (size, located) = info
                        .as_ref()
                        .map(|i| (i.size.max(1), i.locations.contains(&thief)))
                        .unwrap_or((1, false));
                    if located || hint.contains(&dep) {
                        thief_bytes.insert(dep, size);
                    }
                }
            }
            let candidates: Vec<(Resources, u64)> = self
                .ready
                .iter()
                .map(|spec| {
                    let local: u64 = spec
                        .dependencies()
                        .map(|dep| thief_bytes.get(&dep).copied().unwrap_or(0))
                        .sum();
                    (spec.resources.clone(), local)
                })
                .collect();
            let picks = plan_steal_grant(&candidates, &capacity, max_tasks);
            // Remove back-to-front so earlier indices stay valid, then
            // restore the preference order for the grant itself.
            let mut by_index: Vec<usize> = picks.clone();
            by_index.sort_unstable_by(|a, b| b.cmp(a));
            let mut extracted: FastMap<usize, TaskSpec> = fast_map_with_capacity(by_index.len());
            for idx in by_index {
                let spec = self.ready.remove(idx).expect("plan indices are in range");
                extracted.insert(idx, spec);
            }
            picks
                .into_iter()
                .map(|idx| extracted.remove(&idx).expect("extracted above"))
                .collect()
        };
        let granted_ids: Vec<TaskId> = granted.iter().map(|spec| spec.task_id).collect();
        if !granted.is_empty() {
            for spec in &granted {
                // The task leaves this node: its dependency pins and any
                // steal-latency bookkeeping go with it.
                self.release_pins(spec.task_id);
                self.stolen_pending.remove(&spec.task_id);
            }
            // Ownership transfer, crash-consistent: the specs and their
            // `Queued(thief)` states are group-committed to the task
            // table BEFORE the grant frame leaves, so a thief that dies
            // with the batch is repaired like any other lost queue
            // (states on the dead node become `Lost`, lineage replays).
            self.services
                .tasks
                .record_many(&granted, &TaskState::Queued(thief));
            self.load_dirty = true;
        }
        let grant = SchedWire::StealGrant {
            victim: me,
            tasks: granted,
        };
        let sent = self.services.fabric.send(
            self.address,
            NetAddress::from_u64(reply_address),
            encode_to_bytes(&grant),
        );
        if sent.is_err() {
            // The thief vanished before the grant left (its endpoint is
            // gone) — but ownership is already committed as
            // `Queued(thief)`, and a node killed *before* this commit
            // landed has already run its one-shot task-table repair.
            // Take the batch back: the same batched ingest re-records
            // `Queued(me)` and re-gates dependencies, so the work is
            // never stranded on a ghost. Nothing was logged or counted
            // yet, so the event log never claims a transfer that was
            // undone.
            if let SchedWire::StealGrant { tasks, .. } = grant {
                if !tasks.is_empty() {
                    self.on_submit_batch(tasks, true);
                }
            }
        } else if !granted_ids.is_empty() {
            // Stats and the durable TaskStolen records reflect grants
            // that actually left. (A send that succeeds but dies in
            // flight is the thief-crash case the task-table repair and
            // lineage replay already cover.)
            let at_nanos = rtml_common::time::now_nanos();
            self.services.events.append_many(
                me,
                granted_ids
                    .iter()
                    .map(|task| Event {
                        at_nanos,
                        component: Component::LocalScheduler,
                        kind: EventKind::TaskStolen {
                            task: *task,
                            from: me,
                            to: thief,
                        },
                    })
                    .collect(),
            );
            self.stats.steal.tasks_granted.add(granted_ids.len() as u64);
        }
    }

    /// Thief side: a grant arrived. Empty grants re-arm the steal loop
    /// (stale victim); non-empty ones ingest exactly like a global
    /// placement batch (one spill/dependency scan, no re-spill), with
    /// per-task arrival stamps for the steal-to-run histogram.
    fn on_steal_grant(&mut self, victim: NodeId, tasks: Vec<TaskSpec>) {
        // Only the grant we are actually waiting on re-arms the loop: a
        // late answer from a victim we already timed out must not
        // cancel the deadline of the newer in-flight request.
        if self
            .steal_inflight
            .as_ref()
            .is_some_and(|inflight| inflight.victim == victim)
        {
            let inflight = self.steal_inflight.take().expect("checked above");
            // Close the request→grant span. Empty grants close it too
            // (tasks = 0): a wasted round trip is exactly what the
            // trace should show.
            self.services.events.append(
                self.config.node,
                Event::now(
                    Component::LocalScheduler,
                    EventKind::StealRoundTrip {
                        thief: self.config.node,
                        victim,
                        seq: inflight.seq,
                        tasks: tasks.len() as u32,
                        micros: inflight.sent_at.elapsed().as_micros() as u64,
                    },
                ),
            );
        }
        if tasks.is_empty() {
            self.stats.steal.empty_grants.inc();
            self.steal_failures = self.steal_failures.saturating_add(1);
            return;
        }
        self.steal_failures = 0;
        self.stats.steal.grants.inc();
        self.stats.steal.tasks_stolen.add(tasks.len() as u64);
        let now = Instant::now();
        for spec in &tasks {
            // Locality scoring working end to end: the stolen task's
            // dependencies are already here.
            if spec
                .dependencies()
                .any(|dep| self.services.store.contains(dep))
            {
                self.stats.steal.locality_hits.inc();
            }
            self.stolen_pending.insert(spec.task_id, now);
        }
        self.on_submit_batch(tasks, true);
    }

    fn add_worker(&mut self, handle: WorkerHandle) {
        self.idle.push_back(handle.id);
        self.workers.insert(handle.id, handle.tx);
        self.spawn_pending = false;
        self.load_dirty = true;
    }

    /// A task blocked inside `get`/`wait`: hand its grant back so other
    /// work can use the node (and, if needed, ask for one more worker).
    fn on_blocked(&mut self, task: TaskId) {
        if let Some((_, grant)) = self.running.get(&task) {
            if self.released.insert(task) {
                self.in_use = self.in_use.saturating_sub(grant);
                self.load_dirty = true;
            }
        }
    }

    /// A blocked task resumed: take its grant back (transient
    /// oversubscription is accepted rather than pausing a live thread).
    fn on_unblocked(&mut self, task: TaskId) {
        if self.released.remove(&task) {
            if let Some((_, grant)) = self.running.get(&task) {
                self.in_use = self.in_use.add(grant);
                self.load_dirty = true;
            }
        }
    }

    fn remove_worker(&mut self, worker: WorkerId) {
        self.workers.remove(&worker);
        self.idle.retain(|w| *w != worker);
        let lost: Vec<TaskId> = self
            .running
            .iter()
            .filter(|(_, (w, _))| *w == worker)
            .map(|(t, _)| *t)
            .collect();
        for task in lost {
            let (_, grant) = self.running.remove(&task).expect("collected above");
            if !self.released.remove(&task) {
                self.in_use = self.in_use.saturating_sub(&grant);
            }
            self.release_pins(task);
            self.services.tasks.set_state(task, &TaskState::Lost);
        }
        self.services.events.append(
            self.config.node,
            Event::now(Component::LocalScheduler, EventKind::WorkerLost { worker }),
        );
        self.load_dirty = true;
    }

    /// Single-task ingest: a batch of one.
    fn on_submit(&mut self, spec: TaskSpec, via_global: bool) {
        self.on_submit_batch(vec![spec], via_global);
    }

    /// Batch ingest: the same decisions as N sequential single
    /// submissions, but with one spill/dependency scan over the batch,
    /// one group-committed state write, one event-log append, and (when
    /// tasks must travel) one fabric frame — per-task costs become
    /// per-batch costs (R2).
    ///
    /// `via_global` marks placements made by the global scheduler,
    /// which must not spill again (except when the node genuinely can
    /// never satisfy the demand — stale capacity information).
    ///
    /// With pipelined ingest on, this is only the cheap *accept* stage:
    /// the batch lands on the staging ring and the expensive *index*
    /// stage ([`Core::ingest_batch`]) runs on a later loop turn — while
    /// the submitter is already marshalling its next batch. Batches
    /// flush FIFO, so indexing order (and thus every spill decision and
    /// state write) is identical to the serialized path.
    fn on_submit_batch(&mut self, specs: Vec<TaskSpec>, via_global: bool) {
        if !self.config.pipelined_ingest {
            self.ingest_batch(specs, via_global);
            return;
        }
        let seq = self.staging_seq;
        self.staging_seq += 1;
        self.staged_tasks += specs.len();
        // Open the staging span: BatchIndexed with the same seq closes
        // it when the index stage runs. `depth` is the ring occupancy
        // including this batch — the pipelining backlog signal.
        self.services.events.append(
            self.config.node,
            Event::now(
                Component::LocalScheduler,
                EventKind::BatchStaged {
                    node: self.config.node,
                    seq,
                    tasks: specs.len() as u32,
                    depth: (self.staging.len() + 1) as u32,
                },
            ),
        );
        self.staging.push_back((seq, specs, via_global));
        self.load_dirty = true;
        if self.staging.len() > self.config.staging_depth.max(1) {
            self.flush_one_staged();
        }
    }

    /// Indexes the oldest staged batch (the deferred half of pipelined
    /// ingest). One batch per call keeps mailbox latency bounded: a
    /// worker-done or seal message never waits behind the whole ring.
    fn flush_one_staged(&mut self) {
        if let Some((seq, specs, via_global)) = self.staging.pop_front() {
            self.staged_tasks = self.staged_tasks.saturating_sub(specs.len());
            let tasks = specs.len() as u32;
            let started = Instant::now();
            self.ingest_batch(specs, via_global);
            self.services.events.append(
                self.config.node,
                Event::now(
                    Component::LocalScheduler,
                    EventKind::BatchIndexed {
                        node: self.config.node,
                        seq,
                        tasks,
                        micros: started.elapsed().as_micros() as u64,
                    },
                ),
            );
        }
    }

    /// Indexes every staged batch, FIFO — the drain barrier used before
    /// shutdown.
    fn flush_staging(&mut self) {
        while !self.staging.is_empty() {
            self.flush_one_staged();
        }
    }

    /// The index stage of batch ingest: spill decisions, dependency
    /// gating, group-committed state writes, event appends, and missing
    /// dependency resolution for one batch.
    fn ingest_batch(&mut self, specs: Vec<TaskSpec>, via_global: bool) {
        let node = self.config.node;
        // Single pass: spill decision plus dependency gating. `backlog`
        // advances as runnable tasks are accepted, so the spill rule
        // sees exactly the queue depths a sequential loop would.
        let mut backlog = self.ready.len();
        let mut accepted: Vec<(TaskSpec, Vec<ObjectId>)> = Vec::with_capacity(specs.len());
        let mut spilled: Vec<TaskSpec> = Vec::new();
        // Batch-local store-presence cache: `store.contains` takes the
        // object store's lock, and batches overwhelmingly share
        // dependencies (fan-out from one input), so one lookup per
        // *distinct* object replaces one lock round trip per task. An
        // object sealing mid-batch is caught downstream (the watcher
        // path re-checks presence before resolving).
        let mut present_cache: FastMap<ObjectId, bool> = FastMap::default();
        for spec in specs {
            let must_spill = if via_global {
                !self.config.total_resources.fits(&spec.resources)
            } else {
                self.config
                    .spill
                    .should_spill(&spec, backlog, &self.config.total_resources)
            };
            if must_spill {
                spilled.push(spec);
                continue;
            }
            // A task's distinct unmet dependencies. Arg lists are short,
            // so a Vec with a linear dedup beats a hash set per task on
            // the ingest hot path.
            let mut missing: Vec<ObjectId> = Vec::new();
            for object in spec.dependencies() {
                if missing.contains(&object) {
                    continue;
                }
                let present = *present_cache
                    .entry(object)
                    .or_insert_with(|| self.services.store.contains(object));
                if !present {
                    missing.push(object);
                }
            }
            if missing.is_empty() {
                backlog += 1;
            }
            accepted.push((spec, missing));
        }

        if !accepted.is_empty() {
            let ids: Vec<TaskId> = accepted.iter().map(|(s, _)| s.task_id).collect();
            self.services
                .tasks
                .set_states_many(&ids, &TaskState::Queued(node));
            let at_nanos = rtml_common::time::now_nanos();
            self.services.events.append_many(
                node,
                accepted
                    .iter()
                    .map(|(s, _)| Event {
                        at_nanos,
                        component: Component::LocalScheduler,
                        kind: EventKind::TaskQueuedLocal {
                            task: s.task_id,
                            node,
                        },
                    })
                    .collect(),
            );
            // Gate each task on its dependencies, collecting the batch's
            // distinct unresolved objects so the whole set resolves as
            // one prefetch pass (one FetchMany per holder) instead of
            // one reactive watcher per object.
            let mut unresolved: Vec<ObjectId> = Vec::new();
            let mut unresolved_seen: FastSet<ObjectId> = FastSet::default();
            for (spec, missing) in accepted {
                if missing.is_empty() {
                    self.ready.push_back(spec);
                } else {
                    let count = missing.len();
                    for object in missing {
                        self.watchers.entry(object).or_default().push(spec.task_id);
                        // Dedup before the presence re-check so each
                        // distinct object pays at most one store lock
                        // round trip per batch (the re-check catches
                        // objects sealed since the gating scan above).
                        if !self.resolving.contains(&object)
                            && unresolved_seen.insert(object)
                            && !self.services.store.contains(object)
                        {
                            unresolved.push(object);
                        }
                    }
                    self.waiting.insert(spec.task_id, (spec, count));
                }
            }
            if !unresolved.is_empty() {
                self.resolve_missing(unresolved);
            }
            self.load_dirty = true;
        }
        if !spilled.is_empty() {
            self.spill_batch(spilled);
        }
    }

    /// Starts resolution for a batch's distinct missing dependencies.
    ///
    /// With prefetch on, objects the table already locates are grouped
    /// by holder (rendezvous-ranked, so different objects of a
    /// replicated set pull from different holders) and requested
    /// **now**, while their tasks are still queued — one coalesced
    /// `FetchMany` per holder, transfer overlapped with queueing,
    /// dispatch still gated on arrival. Admission is budgeted **and
    /// prioritized**: the batch is scanned in submission order, so
    /// dependencies of tasks nearest the head of the ready queue claim
    /// the unpinned-capacity budget first. An object larger than the
    /// whole headroom is skipped outright (counted in
    /// [`LocalSchedulerStats::prefetch_skipped_capacity`]); one that
    /// fits alone but lost the budget to higher-priority dependencies
    /// is deferred (counted in
    /// [`LocalSchedulerStats::prefetch_deferred_priority`]). Both
    /// resolve reactively. Objects with no live copy (producer still
    /// running, or lost) get the patient per-object watcher, which also
    /// triggers lineage reconstruction. With prefetch off, everything
    /// takes the watcher path — the reactive, per-object baseline.
    fn resolve_missing(&mut self, objects: Vec<ObjectId>) {
        for object in &objects {
            self.resolving.insert(*object);
        }
        if !self.config.prefetch {
            for object in objects {
                self.spawn_watcher(object);
            }
            return;
        }
        let me = self.config.node;
        let infos = self.services.objects.get_many(&objects);
        // Prefetch admission budget: what could become resident by
        // evicting everything evictable. Pinned bytes are running
        // tasks' arguments — prefetch must not thrash against them.
        let budget = self
            .services
            .store
            .capacity_bytes()
            .saturating_sub(self.services.store.pinned_bytes());
        let mut admitted_bytes = 0u64;
        let mut groups: BTreeMap<NodeId, Vec<ObjectId>> = BTreeMap::new();
        let mut hints: BTreeMap<NodeId, Vec<(ObjectId, u64)>> = BTreeMap::new();
        let mut unlocated: Vec<ObjectId> = Vec::new();
        for (object, info) in objects.into_iter().zip(infos) {
            let located = info
                .as_ref()
                .and_then(|i| i.fetch_holder(object, me).map(|h| (h, i.size)));
            let Some((holder, size)) = located else {
                unlocated.push(object);
                continue;
            };
            // Demand travels whether or not we prefetch: the fan-in
            // beyond the single coalesced request frame (`waiters - 1`)
            // is what the holder's counters cannot see from the wire.
            let fan_in = self.watchers.get(&object).map_or(0, |w| w.len() as u64);
            if fan_in > 1 {
                hints.entry(holder).or_default().push((object, fan_in - 1));
            }
            if size > budget {
                // Could not become resident even with everything
                // evictable gone: prefetching would move bytes only to
                // fail the put.
                self.stats.prefetch_skipped_capacity.inc();
                unlocated.push(object);
            } else if admitted_bytes + size > budget {
                // Fits on its own, but dependencies of tasks nearer the
                // head of the ready queue (the batch is scanned in
                // submission order) consumed the budget first —
                // prioritization under a tight budget, not a capacity
                // verdict. Resolves reactively.
                self.stats.prefetch_deferred_priority.inc();
                unlocated.push(object);
            } else {
                admitted_bytes += size;
                groups.entry(holder).or_default().push(object);
            }
        }
        for (holder, entries) in &hints {
            (self.services.replicate_hint)(*holder, entries);
        }
        if !groups.is_empty() {
            let at_nanos = rtml_common::time::now_nanos();
            self.services.events.append_many(
                me,
                groups
                    .values()
                    .flatten()
                    .map(|object| Event {
                        at_nanos,
                        component: Component::LocalScheduler,
                        kind: EventKind::PrefetchIssued {
                            object: *object,
                            node: me,
                        },
                    })
                    .collect(),
            );
        }
        for (holder, group) in groups {
            let services = self.services.clone();
            let fetch_timeout = self.config.fetch_timeout;
            std::thread::Builder::new()
                .name(format!("rtml-prefetch-{me}"))
                .spawn(move || prefetch_group(services, group, holder, me, fetch_timeout))
                .expect("spawn prefetch");
        }
        for object in unlocated {
            self.spawn_watcher(object);
        }
    }

    /// Spawns the per-object watcher thread. The caller is responsible
    /// for the `resolving` bookkeeping.
    fn spawn_watcher(&self, object: ObjectId) {
        let services = self.services.clone();
        let node = self.config.node;
        let fetch_timeout = self.config.fetch_timeout;
        std::thread::Builder::new()
            .name(format!("rtml-resolver-{node}"))
            .spawn(move || resolve_object(services, object, node, fetch_timeout))
            .expect("spawn resolver");
    }

    /// Forwards a whole batch of spilling tasks to the global scheduler
    /// as one frame (`Spill` for a single task, `SpillBatch` otherwise):
    /// one state group commit, one event append, one fabric hop.
    fn spill_batch(&mut self, specs: Vec<TaskSpec>) {
        let node = self.config.node;
        let ids: Vec<TaskId> = specs.iter().map(|s| s.task_id).collect();
        self.services
            .tasks
            .set_states_many(&ids, &TaskState::Spilled);
        let at_nanos = rtml_common::time::now_nanos();
        self.services.events.append_many(
            node,
            specs
                .iter()
                .map(|s| Event {
                    at_nanos,
                    component: Component::LocalScheduler,
                    kind: EventKind::TaskSpilled {
                        task: s.task_id,
                        from: node,
                    },
                })
                .collect(),
        );
        // Partition the batch by owning global shard (the FNV-64 task
        // keyspace split) and send one coalesced frame per shard. With
        // one shard this degenerates to the old single-frame path.
        let routes = self.services.global.clone();
        let num_shards = routes.num_shards();
        let mut groups: Vec<Vec<TaskSpec>> = vec![Vec::new(); num_shards];
        for spec in specs {
            groups[routes.shard_of(spec.task_id)].push(spec);
        }
        for (shard, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let msg = if group.len() == 1 {
                SchedWire::Spill(group[0].clone())
            } else {
                SchedWire::SpillBatch(group.clone())
            };
            // Pre-size the frame: ~96 bytes per spec avoids the doubling
            // series on large spilled bursts.
            let mut w = rtml_common::codec::Writer::with_capacity(32 + 96 * group.len());
            msg.encode(&mut w);
            if self
                .services
                .fabric
                .send(self.address, routes.address_of(shard), w.into_bytes())
                .is_err()
            {
                // No global scheduler (shutdown race). Keep whatever work
                // this node can possibly run rather than losing it.
                for spec in group {
                    if self.config.total_resources.fits(&spec.resources) {
                        self.services
                            .tasks
                            .set_state(spec.task_id, &TaskState::Queued(node));
                        self.ready.push_back(spec);
                    } else {
                        self.services
                            .tasks
                            .set_state(spec.task_id, &TaskState::Lost);
                    }
                }
            }
        }
        self.load_dirty = true;
    }

    fn on_sealed(&mut self, object: ObjectId) {
        self.resolving.remove(&object);
        let Some(tasks) = self.watchers.remove(&object) else {
            return;
        };
        for task in tasks {
            if let Some((_, missing)) = self.waiting.get_mut(&task) {
                // Pin the arrived dependency on this task's behalf: LRU
                // eviction must not drop a fetched/prefetched argument
                // between arrival and execution. Released at
                // completion ([`Core::release_pins`]).
                if self.services.store.pin(object) {
                    self.task_pins.entry(task).or_default().push(object);
                }
                *missing -= 1;
                if *missing == 0 {
                    let (spec, _) = self.waiting.remove(&task).expect("present");
                    self.ready.push_back(spec);
                }
            }
        }
        self.load_dirty = true;
    }

    /// Releases every dependency pin held on `task`'s behalf.
    fn release_pins(&mut self, task: TaskId) {
        if let Some(objects) = self.task_pins.remove(&task) {
            for object in objects {
                self.services.store.unpin(object);
            }
        }
    }

    fn on_worker_done(&mut self, worker: WorkerId, task: TaskId) {
        if let Some((granted_worker, grant)) = self.running.remove(&task) {
            debug_assert_eq!(granted_worker, worker, "completion from wrong worker");
            if !self.released.remove(&task) {
                self.in_use = self.in_use.saturating_sub(&grant);
            }
        }
        self.release_pins(task);
        if self.workers.contains_key(&worker) {
            self.idle.push_back(worker);
        }
        self.load_dirty = true;
    }

    fn dispatch(&mut self) {
        while !self.idle.is_empty() {
            let available = self.config.total_resources.saturating_sub(&self.in_use);
            // First-fit over the ready queue: lets small tasks overtake a
            // task waiting for scarce resources (R4).
            let Some(pos) = self.ready.iter().position(|s| available.fits(&s.resources)) else {
                break;
            };
            let spec = self.ready.remove(pos).expect("position valid");
            let worker = self.idle.pop_front().expect("non-empty");
            let Some(worker_tx) = self.workers.get(&worker) else {
                // Worker vanished between bookkeeping steps; retry.
                self.ready.insert(pos.min(self.ready.len()), spec);
                continue;
            };
            let grant = spec.resources.clone();
            let task = spec.task_id;
            if worker_tx.send(WorkerCommand::Run(spec.clone())).is_ok() {
                self.in_use = self.in_use.add(&grant);
                self.running.insert(task, (worker, grant));
                if let Some(arrived) = self.stolen_pending.remove(&task) {
                    self.stats
                        .steal
                        .steal_to_run
                        .record_duration(arrived.elapsed());
                }
            } else {
                // Dead worker: drop it and put the task back.
                self.workers.remove(&worker);
                self.ready.insert(pos.min(self.ready.len()), spec);
            }
            self.load_dirty = true;
        }
        // Nested-task deadlock avoidance: runnable work, no idle worker,
        // and at least one worker parked in get/wait -> grow the pool.
        if !self.ready.is_empty()
            && self.idle.is_empty()
            && !self.released.is_empty()
            && !self.spawn_pending
        {
            self.spawn_pending = true;
            (self.services.request_worker)();
        }
    }

    fn maybe_publish_load(&mut self) {
        let elapsed = self.last_load.elapsed();
        if self.load_dirty && elapsed >= self.config.load_interval {
            self.publish_load();
        } else if elapsed >= self.config.load_interval.saturating_mul(16) {
            // Heartbeat: even with nothing new to say, republish so the
            // report's timestamp stays fresh — peers read staleness as
            // death evidence (steal-candidate filtering, the runtime's
            // health tracker), and an idle-but-alive node must not look
            // like a ghost.
            self.publish_load();
        }
    }

    fn load_report(&self) -> LoadReport {
        LoadReport {
            node: self.config.node,
            sched_address: self.address.as_u64(),
            ready: self.ready.len() as u32,
            waiting: (self.waiting.len() + self.staged_tasks) as u32,
            running: self.running.len() as u32,
            idle_workers: self.idle.len() as u32,
            available: self.config.total_resources.saturating_sub(&self.in_use),
            total: self.config.total_resources.clone(),
            at_nanos: rtml_common::time::now_nanos(),
        }
    }

    fn publish_load(&mut self) {
        let report = self.load_report();
        self.services
            .kv
            .set(load_key(self.config.node), encode_to_bytes(&report));
        let load = encode_to_bytes(&SchedWire::Load(report));
        for target in self.services.global.all() {
            let _ = self
                .services
                .fabric
                .send(self.address, *target, load.clone());
        }
        self.load_dirty = false;
        self.last_load = Instant::now();
    }
}

/// Fetches one holder's group of prefetched objects through the node's
/// [`FetchAgent`]: a single coalesced `FetchMany` request, one chunked
/// reply stream, group-committed location updates. Objects the fast
/// path cannot deliver (holder died, miss, timeout) fall back to the
/// patient per-object watcher so retry and lineage reconstruction still
/// happen.
fn prefetch_group(
    services: SchedServices,
    objects: Vec<ObjectId>,
    holder: NodeId,
    me: NodeId,
    fetch_timeout: Duration,
) {
    let started = Instant::now();
    let results = fetch_group_commit(
        &services.objects,
        &services.agent,
        &objects,
        holder,
        me,
        fetch_timeout,
    );
    let micros = started.elapsed().as_micros() as u64;
    let at_nanos = rtml_common::time::now_nanos();
    let mut events = Vec::new();
    let mut failed = Vec::new();
    for (object, result) in results {
        match result {
            // Only fetches that actually sealed new bytes here are
            // transfers; local hits and joins of another caller's
            // in-flight transfer moved nothing over the wire.
            Ok((_, outcome)) if outcome.inserted => {
                events.push(Event {
                    at_nanos,
                    component: Component::FetchAgent,
                    kind: EventKind::TransferStarted {
                        object,
                        from: holder,
                        to: me,
                    },
                });
                events.push(Event {
                    at_nanos,
                    component: Component::FetchAgent,
                    kind: EventKind::TransferFinished {
                        object,
                        to: me,
                        micros,
                    },
                });
            }
            Ok(_) => {}
            Err(_) => failed.push(object),
        }
    }
    if !events.is_empty() {
        services.events.append_many(me, events);
    }
    for object in failed {
        let services = services.clone();
        std::thread::Builder::new()
            .name(format!("rtml-resolver-{me}"))
            .spawn(move || resolve_object(services, object, me, fetch_timeout))
            .expect("spawn resolver");
    }
}

/// Fetches one holder's group of objects through `agent` and commits
/// the outcome to the object table as group commits: one
/// `add_location_many` for everything now local, one deduplicated
/// `remove_location_many` for the eviction fallout. Returns the
/// per-object results in group order. This is the one fetch-and-commit
/// choreography shared by the scheduler's dispatch-time prefetch and
/// the runtime's batched `get_many`.
pub fn fetch_group_commit(
    objects: &ObjectTable,
    agent: &FetchAgent,
    group: &[ObjectId],
    holder: NodeId,
    me: NodeId,
    timeout: Duration,
) -> Vec<(
    ObjectId,
    rtml_common::error::Result<(bytes::Bytes, rtml_store::PutOutcome)>,
)> {
    let results = agent.fetch_many(group, holder, timeout);
    let mut located: Vec<(ObjectId, u64)> = Vec::new();
    let mut evicted_all: Vec<ObjectId> = Vec::new();
    for (object, result) in group.iter().zip(&results) {
        if let Ok((data, outcome)) = result {
            located.push((*object, data.len() as u64));
            evicted_all.extend(outcome.evicted.iter().copied());
        }
    }
    if !located.is_empty() {
        objects.add_location_many(&located, me);
    }
    if !evicted_all.is_empty() {
        evicted_all.sort();
        evicted_all.dedup();
        objects.remove_location_many(&evicted_all, me);
    }
    group.iter().copied().zip(results).collect()
}

/// Watches one missing object until it is sealed into the local store.
///
/// Runs on its own short-lived thread. Terminates when the object becomes
/// local (the store's seal listener wakes the scheduler) or when the
/// control plane shuts down.
fn resolve_object(services: SchedServices, object: ObjectId, me: NodeId, fetch_timeout: Duration) {
    let local_rx = services.store.subscribe_local(object);
    let (mut pending_info, stream) = services.objects.subscribe(object);
    loop {
        if services.store.contains(object) {
            return;
        }
        let info = pending_info.take().or_else(|| services.objects.get(object));
        if let Some(info) = info {
            // Same capacity headroom check as the prefetch admission
            // guard: while the object provably cannot become resident
            // (store capacity minus pinned bytes), fetching it would
            // move the full payload over the fabric only to fail the
            // put and retry — wait for the headroom instead of
            // hammering the holder's egress link every poll slice.
            let fits = info.size
                <= services
                    .store
                    .capacity_bytes()
                    .saturating_sub(services.store.pinned_bytes());
            if info.is_available() && !fits {
                // Copies exist; only residency is blocked. Fall through
                // to the timed wait below — never to reconstruction.
            } else if info.is_available() {
                if let Some(holder) = info.fetch_holder(object, me) {
                    let started = Instant::now();
                    let (_, result) = fetch_group_commit(
                        &services.objects,
                        &services.agent,
                        &[object],
                        holder,
                        me,
                        fetch_timeout,
                    )
                    .pop()
                    .expect("one object in, one result out");
                    match result {
                        Ok((_, outcome)) => {
                            // Log the transfer only if this fetch sealed
                            // new bytes (not a local hit or a join of an
                            // in-flight transfer logged elsewhere).
                            if outcome.inserted {
                                let at_nanos = rtml_common::time::now_nanos();
                                let micros = started.elapsed().as_micros() as u64;
                                services.events.append_many(
                                    me,
                                    vec![
                                        Event {
                                            at_nanos,
                                            component: Component::FetchAgent,
                                            kind: EventKind::TransferStarted {
                                                object,
                                                from: holder,
                                                to: me,
                                            },
                                        },
                                        Event {
                                            at_nanos,
                                            component: Component::FetchAgent,
                                            kind: EventKind::TransferFinished {
                                                object,
                                                to: me,
                                                micros,
                                            },
                                        },
                                    ],
                                );
                            }
                            return;
                        }
                        Err(_) => {
                            // Holder unreachable or object gone; fall
                            // through and wait for table changes.
                        }
                    }
                }
            } else if object.producer_task().is_some() || info.producer.is_some() {
                // No live copy but we know the producer (embedded in the
                // ID, or recorded in the table): ask the runtime to
                // replay lineage (idempotent; the hook deduplicates).
                (services.reconstruct)(object);
            }
        } else if object.producer_task().is_some() {
            // No record at all. Submission writes no object records, so
            // this is the ordinary in-flight look — and also what a
            // producer that died before sealing looks like. The replay
            // hook derives the producer from the ID and no-ops while
            // the task is in flight.
            (services.reconstruct)(object);
        }
        // Block until the table changes, the object seals locally, or a
        // poll interval passes (covers lost notifications and retries).
        crossbeam::channel::select! {
            recv(local_rx) -> msg => {
                if msg.is_ok() {
                    return;
                }
                // Store dropped: node is gone, give up.
                return;
            }
            recv(stream.receiver()) -> msg => {
                match msg {
                    Ok(bytes) => {
                        pending_info = decode_from_slice(&bytes).ok();
                    }
                    Err(_) => return, // control plane gone
                }
            }
            default(Duration::from_millis(20)) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rtml_common::ids::{DriverId, FunctionId};
    use rtml_common::task::ArgSpec;
    use rtml_net::FabricConfig;
    use rtml_store::{StoreConfig, TransferService};

    struct Rig {
        services: SchedServices,
        global_endpoint: rtml_net::Endpoint,
        _transfer: TransferService,
        worker_rx: Receiver<WorkerCommand>,
        worker_id: WorkerId,
        handle: LocalSchedulerHandle,
    }

    fn rig(config: LocalSchedulerConfig) -> Rig {
        rig_with_workers(config, 1)
    }

    fn rig_with_workers(config: LocalSchedulerConfig, n_workers: u32) -> Rig {
        let kv = KvStore::new(2);
        let fabric = Fabric::new(FabricConfig::default());
        let directory = TransferDirectory::new();
        let store = Arc::new(ObjectStore::new(StoreConfig {
            node: config.node,
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let transfer = TransferService::spawn(fabric.clone(), store.clone(), &directory);
        let agent = Arc::new(FetchAgent::spawn(
            fabric.clone(),
            store.clone(),
            directory.clone(),
        ));
        let global_endpoint = fabric.register(NodeId(1000), "fake-global");
        let services = SchedServices {
            kv: kv.clone(),
            objects: ObjectTable::new(kv.clone()),
            tasks: TaskTable::new(kv.clone()),
            events: EventLog::new(kv.clone()),
            fabric,
            directory,
            store,
            agent,
            global: crate::global::GlobalRoutes::single(global_endpoint.address()),
            reconstruct: Arc::new(|_| {}),
            request_worker: Arc::new(|| {}),
            replicate_hint: Arc::new(|_, _| {}),
        };
        let (worker_tx, worker_rx) = unbounded();
        let worker_id = WorkerId::new(config.node, 0);
        let mut workers = vec![WorkerHandle {
            id: worker_id,
            tx: worker_tx,
        }];
        for i in 1..n_workers {
            let (tx, rx) = unbounded();
            // Extra workers silently discard commands.
            std::thread::spawn(move || while rx.recv().is_ok() {});
            workers.push(WorkerHandle {
                id: WorkerId::new(config.node, i),
                tx,
            });
        }
        let handle = LocalScheduler::spawn(config, services.clone(), workers);
        Rig {
            services,
            global_endpoint,
            _transfer: transfer,
            worker_rx,
            worker_id,
            handle,
        }
    }

    fn spec_with(args: Vec<ArgSpec>, idx: u64) -> TaskSpec {
        let root = TaskId::driver_root(DriverId::from_index(0));
        TaskSpec::simple(root.child(idx), FunctionId::from_name("f"), args)
    }

    fn recv_run(rx: &Receiver<WorkerCommand>) -> TaskSpec {
        match rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker command")
        {
            WorkerCommand::Run(spec) => spec,
            WorkerCommand::Stop => panic!("unexpected stop"),
        }
    }

    #[test]
    fn no_dep_task_dispatches_immediately() {
        let mut r = rig(LocalSchedulerConfig::default());
        let spec = spec_with(vec![], 0);
        r.handle.submit(spec.clone());
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        assert_eq!(
            r.services.tasks.get_state(spec.task_id),
            Some(TaskState::Queued(NodeId(0)))
        );
        r.handle.shutdown();
    }

    #[test]
    fn batch_submit_queues_every_task() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(8.0),
            spill: SpillMode::NeverSpill,
            ..LocalSchedulerConfig::default()
        });
        let specs: Vec<TaskSpec> = (0..6).map(|i| spec_with(vec![], i)).collect();
        r.handle.submit_batch(specs.clone());
        // One worker: the first dispatches, the rest queue.
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, specs[0].task_id);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let all_queued = specs
                .iter()
                .all(|s| matches!(r.services.tasks.get_state(s.task_id), Some(TaskState::Queued(n)) if n == NodeId(0)));
            if all_queued {
                break;
            }
            assert!(Instant::now() < deadline, "batch not fully queued");
            std::thread::sleep(Duration::from_millis(5));
        }
        r.handle.shutdown();
    }

    #[test]
    fn batch_with_dependencies_gates_like_single_submits() {
        let mut r = rig(LocalSchedulerConfig::default());
        let dep = TaskId::driver_root(DriverId::from_index(0))
            .child(99)
            .return_object(0);
        let blocked = spec_with(vec![ArgSpec::ObjectRef(dep)], 0);
        let runnable = spec_with(vec![], 1);
        r.handle
            .submit_batch(vec![blocked.clone(), runnable.clone()]);
        // The dependency-free task dispatches; the gated one waits.
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, runnable.task_id);
        assert!(r.worker_rx.recv_timeout(Duration::from_millis(80)).is_err());
        // Free the worker, then seal the dependency.
        r.handle
            .sender()
            .send(LocalMsg::WorkerDone {
                worker: r.worker_id,
                task: runnable.task_id,
            })
            .unwrap();
        r.services.store.put(dep, Bytes::from_static(b"v")).unwrap();
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, blocked.task_id);
        r.handle.shutdown();
    }

    #[test]
    fn batch_spillover_travels_as_one_frame() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(1.0),
            spill: SpillMode::Hybrid { queue_threshold: 1 },
            ..LocalSchedulerConfig::default()
        });
        let specs: Vec<TaskSpec> = (0..8).map(|i| spec_with(vec![], i)).collect();
        r.handle.submit_batch(specs);
        // The overflow beyond the threshold arrives as one SpillBatch.
        let spilled = loop {
            let d = r
                .global_endpoint
                .receiver()
                .recv_timeout(Duration::from_secs(5))
                .expect("spill batch");
            match decode_from_slice::<SchedWire>(&d.payload).unwrap() {
                SchedWire::SpillBatch(specs) => break specs,
                _ => continue, // loads, node-up
            }
        };
        assert!(spilled.len() > 1, "expected a multi-task spill batch");
        for spec in &spilled {
            assert_eq!(
                r.services.tasks.get_state(spec.task_id),
                Some(TaskState::Spilled)
            );
        }
        r.handle.shutdown();
    }

    #[test]
    fn place_batch_from_global_does_not_respill() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(1.0),
            spill: SpillMode::AlwaysSpill,
            ..LocalSchedulerConfig::default()
        });
        let specs: Vec<TaskSpec> = (0..3).map(|i| spec_with(vec![], i)).collect();
        let place = SchedWire::PlaceBatch {
            specs: specs.clone(),
            hops: 1,
        };
        r.services
            .fabric
            .send(
                r.global_endpoint.address(),
                r.handle.address(),
                encode_to_bytes(&place),
            )
            .unwrap();
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, specs[0].task_id);
        r.handle.shutdown();
    }

    #[test]
    fn dependent_task_waits_for_local_seal() {
        let mut r = rig(LocalSchedulerConfig::default());
        let dep = TaskId::driver_root(DriverId::from_index(0))
            .child(99)
            .return_object(0);
        let spec = spec_with(vec![ArgSpec::ObjectRef(dep)], 0);
        r.handle.submit(spec.clone());
        // Not dispatched while the dependency is missing.
        assert!(r.worker_rx.recv_timeout(Duration::from_millis(80)).is_err());
        // Seal the dependency locally; the seal listener wakes the
        // scheduler.
        r.services.store.put(dep, Bytes::from_static(b"v")).unwrap();
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        r.handle.shutdown();
    }

    #[test]
    fn worker_done_frees_resources_for_next_task() {
        // One worker, 1 CPU: two tasks must run strictly in sequence.
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(1.0),
            ..LocalSchedulerConfig::default()
        });
        let a = spec_with(vec![], 0);
        let b = spec_with(vec![], 1);
        r.handle.submit(a.clone());
        r.handle.submit(b.clone());
        let first = recv_run(&r.worker_rx);
        assert_eq!(first.task_id, a.task_id);
        // Second task must not arrive while the first runs.
        assert!(r.worker_rx.recv_timeout(Duration::from_millis(80)).is_err());
        r.handle
            .sender()
            .send(LocalMsg::WorkerDone {
                worker: r.worker_id,
                task: a.task_id,
            })
            .unwrap();
        let second = recv_run(&r.worker_rx);
        assert_eq!(second.task_id, b.task_id);
        r.handle.shutdown();
    }

    #[test]
    fn infeasible_task_spills_to_global() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(4.0), // no GPU
            ..LocalSchedulerConfig::default()
        });
        let mut spec = spec_with(vec![], 0);
        spec.resources = Resources::gpu(1.0);
        r.handle.submit(spec.clone());
        // The fake global receives the spill.
        let spilled = loop {
            let d = r
                .global_endpoint
                .receiver()
                .recv_timeout(Duration::from_secs(5))
                .expect("spill");
            match decode_from_slice::<SchedWire>(&d.payload).unwrap() {
                SchedWire::Spill(s) => break s,
                _ => continue, // loads, node-up
            }
        };
        assert_eq!(spilled.task_id, spec.task_id);
        assert_eq!(
            r.services.tasks.get_state(spec.task_id),
            Some(TaskState::Spilled)
        );
        r.handle.shutdown();
    }

    #[test]
    fn backlog_past_threshold_spills() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(1.0),
            spill: SpillMode::Hybrid { queue_threshold: 2 },
            ..LocalSchedulerConfig::default()
        });
        // Worker takes the first task; then ready backlog builds.
        for i in 0..8 {
            r.handle.submit(spec_with(vec![], i));
        }
        let mut spills = 0;
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline && spills == 0 {
            if let Ok(d) = r
                .global_endpoint
                .receiver()
                .recv_timeout(Duration::from_millis(200))
            {
                if matches!(
                    decode_from_slice::<SchedWire>(&d.payload),
                    Ok(SchedWire::Spill(_))
                ) {
                    spills += 1;
                }
            }
        }
        assert!(spills > 0, "expected at least one spill");
        r.handle.shutdown();
    }

    #[test]
    fn placement_from_global_does_not_respill() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(1.0),
            spill: SpillMode::AlwaysSpill,
            ..LocalSchedulerConfig::default()
        });
        let spec = spec_with(vec![], 0);
        // Deliver a placement as the global scheduler would.
        let place = SchedWire::Place {
            spec: spec.clone(),
            hops: 1,
        };
        r.services
            .fabric
            .send(
                r.global_endpoint.address(),
                r.handle.address(),
                encode_to_bytes(&place),
            )
            .unwrap();
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        r.handle.shutdown();
    }

    #[test]
    fn first_fit_lets_small_tasks_overtake() {
        let mut r = rig_with_workers(
            LocalSchedulerConfig {
                total_resources: Resources::new(2.0, 0.0).with_custom("slot", 1.0),
                spill: SpillMode::NeverSpill,
                ..LocalSchedulerConfig::default()
            },
            2,
        );
        // Task A consumes the only "slot"; task B (also slot) must wait;
        // task C (cpu only) overtakes B.
        let mut a = spec_with(vec![], 0);
        a.resources = Resources::cpu(1.0).with_custom("slot", 1.0);
        let mut b = spec_with(vec![], 1);
        b.resources = Resources::cpu(1.0).with_custom("slot", 1.0);
        let mut c = spec_with(vec![], 2);
        c.resources = Resources::cpu(1.0);
        r.handle.submit(a.clone());
        // Wait until A occupies the slot (worker 0 receives it).
        let first = recv_run(&r.worker_rx);
        assert_eq!(first.task_id, a.task_id);
        r.handle.submit(b.clone());
        r.handle.submit(c.clone());
        // C dispatches (to the discard worker) even though B is ahead.
        // Give the scheduler a moment, then check the task table.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let b_state = r.services.tasks.get_state(b.task_id);
            let c_queued = r.services.tasks.get_state(c.task_id).is_some();
            if c_queued && matches!(b_state, Some(TaskState::Queued(_))) {
                break;
            }
            assert!(Instant::now() < deadline, "timed out waiting for states");
            std::thread::sleep(Duration::from_millis(5));
        }
        r.handle.shutdown();
    }

    #[test]
    fn remove_worker_marks_running_task_lost() {
        let mut r = rig(LocalSchedulerConfig::default());
        let spec = spec_with(vec![], 0);
        r.handle.submit(spec.clone());
        let _ = recv_run(&r.worker_rx);
        r.handle
            .sender()
            .send(LocalMsg::RemoveWorker(r.worker_id))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if r.services.tasks.get_state(spec.task_id) == Some(TaskState::Lost) {
                break;
            }
            assert!(Instant::now() < deadline, "task never marked lost");
            std::thread::sleep(Duration::from_millis(5));
        }
        r.handle.shutdown();
    }

    #[test]
    fn load_report_published_to_kv() {
        let mut r = rig(LocalSchedulerConfig::default());
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(bytes) = r.services.kv.get(&load_key(NodeId(0))) {
                let report: LoadReport = decode_from_slice(&bytes).unwrap();
                assert_eq!(report.node, NodeId(0));
                assert_eq!(report.total, Resources::cpu(4.0));
                break;
            }
            assert!(Instant::now() < deadline, "no load report");
            std::thread::sleep(Duration::from_millis(5));
        }
        r.handle.shutdown();
    }

    #[test]
    fn resolver_fetches_remote_dependency() {
        // Node 0 scheduler; dependency lives on node 7's store.
        let kv = KvStore::new(2);
        let fabric = Fabric::new(FabricConfig::default());
        let directory = TransferDirectory::new();
        let store0 = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let store7 = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(7),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let _t0 = TransferService::spawn(fabric.clone(), store0.clone(), &directory);
        let _t7 = TransferService::spawn(fabric.clone(), store7.clone(), &directory);
        let agent = Arc::new(FetchAgent::spawn(
            fabric.clone(),
            store0.clone(),
            directory.clone(),
        ));
        let global = fabric.register(NodeId(1000), "fake-global");
        let objects = ObjectTable::new(kv.clone());
        let services = SchedServices {
            kv: kv.clone(),
            objects: objects.clone(),
            tasks: TaskTable::new(kv.clone()),
            events: EventLog::new(kv.clone()),
            fabric,
            directory,
            store: store0.clone(),
            agent,
            global: crate::global::GlobalRoutes::single(global.address()),
            reconstruct: Arc::new(|_| {}),
            request_worker: Arc::new(|| {}),
            replicate_hint: Arc::new(|_, _| {}),
        };
        let (worker_tx, worker_rx) = unbounded();
        let mut handle = LocalScheduler::spawn(
            LocalSchedulerConfig::default(),
            services,
            vec![WorkerHandle {
                id: WorkerId::new(NodeId(0), 0),
                tx: worker_tx,
            }],
        );

        let dep = TaskId::driver_root(DriverId::from_index(0))
            .child(50)
            .return_object(0);
        store7.put(dep, Bytes::from_static(b"remote")).unwrap();
        objects.add_location(dep, NodeId(7), 6);

        let spec = spec_with(vec![ArgSpec::ObjectRef(dep)], 0);
        handle.submit(spec.clone());
        let got = recv_run(&worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        // The object must now be local and the table updated.
        assert!(store0.contains(dep));
        let info = objects.get(dep).unwrap();
        assert!(info.locations.contains(&NodeId(0)));
        handle.shutdown();
    }

    struct RemoteDepRig {
        services: SchedServices,
        store_local: Arc<ObjectStore>,
        store_remote: Arc<ObjectStore>,
        remote_service: TransferService,
        worker_rx: Receiver<WorkerCommand>,
        worker_id: WorkerId,
        handle: LocalSchedulerHandle,
        _local_service: TransferService,
        _global: rtml_net::Endpoint,
    }

    /// A node-0 scheduler plus a remote node-7 store holding
    /// dependencies, with configurable prefetch and local capacity.
    fn remote_dep_rig(prefetch: bool, local_capacity: u64) -> RemoteDepRig {
        let kv = KvStore::new(2);
        let fabric = Fabric::new(FabricConfig::default());
        let directory = TransferDirectory::new();
        let store_local = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: local_capacity,
            ..StoreConfig::default()
        }));
        let store_remote = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(7),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let local_service = TransferService::spawn(fabric.clone(), store_local.clone(), &directory);
        let remote_service =
            TransferService::spawn(fabric.clone(), store_remote.clone(), &directory);
        let agent = Arc::new(FetchAgent::spawn(
            fabric.clone(),
            store_local.clone(),
            directory.clone(),
        ));
        let global = fabric.register(NodeId(1000), "fake-global");
        let services = SchedServices {
            kv: kv.clone(),
            objects: ObjectTable::new(kv.clone()),
            tasks: TaskTable::new(kv.clone()),
            events: EventLog::new(kv.clone()),
            fabric,
            directory,
            store: store_local.clone(),
            agent,
            global: crate::global::GlobalRoutes::single(global.address()),
            reconstruct: Arc::new(|_| {}),
            request_worker: Arc::new(|| {}),
            replicate_hint: Arc::new(|_, _| {}),
        };
        let (worker_tx, worker_rx) = unbounded();
        let worker_id = WorkerId::new(NodeId(0), 0);
        let handle = LocalScheduler::spawn(
            LocalSchedulerConfig {
                prefetch,
                ..LocalSchedulerConfig::default()
            },
            services.clone(),
            vec![WorkerHandle {
                id: worker_id,
                tx: worker_tx,
            }],
        );
        RemoteDepRig {
            services,
            store_local,
            store_remote,
            remote_service,
            worker_rx,
            worker_id,
            handle,
            _local_service: local_service,
            _global: global,
        }
    }

    #[test]
    fn prefetch_coalesces_batch_dependencies_into_one_request() {
        let mut r = remote_dep_rig(true, 1 << 20);
        let deps: Vec<ObjectId> = (0..8)
            .map(|i| {
                TaskId::driver_root(DriverId::from_index(0))
                    .child(100 + i)
                    .return_object(0)
            })
            .collect();
        for (i, &dep) in deps.iter().enumerate() {
            r.store_remote
                .put(dep, Bytes::from(vec![i as u8; 32]))
                .unwrap();
            r.services.objects.add_location(dep, NodeId(7), 32);
        }
        let args: Vec<ArgSpec> = deps.iter().map(|d| ArgSpec::ObjectRef(*d)).collect();
        let spec = spec_with(args, 0);
        r.handle.submit(spec.clone());
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        // All 8 dependencies crossed as ONE coalesced request frame.
        assert_eq!(r.remote_service.stats().requests.get(), 1);
        assert_eq!(r.remote_service.stats().objects_served.get(), 8);
        for dep in &deps {
            assert!(r.store_local.contains(*dep));
        }
        r.handle.shutdown();
    }

    #[test]
    fn prefetch_off_falls_back_to_per_object_watchers() {
        let mut r = remote_dep_rig(false, 1 << 20);
        let deps: Vec<ObjectId> = (0..4)
            .map(|i| {
                TaskId::driver_root(DriverId::from_index(0))
                    .child(200 + i)
                    .return_object(0)
            })
            .collect();
        for &dep in &deps {
            r.store_remote.put(dep, Bytes::from(vec![1u8; 16])).unwrap();
            r.services.objects.add_location(dep, NodeId(7), 16);
        }
        let args: Vec<ArgSpec> = deps.iter().map(|d| ArgSpec::ObjectRef(*d)).collect();
        let spec = spec_with(args, 0);
        r.handle.submit(spec.clone());
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        // The reactive baseline pays one request frame per object.
        assert_eq!(r.remote_service.stats().requests.get(), 4);
        r.handle.shutdown();
    }

    #[test]
    fn prefetch_admission_guard_skips_objects_beyond_unpinned_capacity() {
        // Store: 256 bytes, 200 of them pinned (a running task's
        // argument). A 64-byte remote dependency does not fit in the
        // 56-byte unpinned headroom: prefetch must skip it (counted),
        // and the reactive watcher must still deliver the task once the
        // pin releases — the guard defers bytes, never work.
        let mut r = remote_dep_rig(true, 256);
        let resident = TaskId::driver_root(DriverId::from_index(0))
            .child(400)
            .return_object(0);
        r.store_local
            .put(resident, Bytes::from(vec![1u8; 200]))
            .unwrap();
        assert!(r.store_local.pin(resident));

        let dep = TaskId::driver_root(DriverId::from_index(0))
            .child(401)
            .return_object(0);
        r.store_remote.put(dep, Bytes::from(vec![9u8; 64])).unwrap();
        r.services.objects.add_location(dep, NodeId(7), 64);
        let spec = spec_with(vec![ArgSpec::ObjectRef(dep)], 0);
        r.handle.submit(spec.clone());

        let deadline = Instant::now() + Duration::from_secs(5);
        while r.handle.stats().prefetch_skipped_capacity.get() == 0 {
            assert!(Instant::now() < deadline, "skip never counted");
            std::thread::sleep(Duration::from_millis(2));
        }
        // No PrefetchIssued event for the skipped object.
        let issued = r
            .services
            .events
            .read_all()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PrefetchIssued { .. }))
            .count();
        assert_eq!(issued, 0);
        // While the headroom is missing, no bytes move at all: the
        // watcher waits instead of fetch-and-fail-the-put hammering.
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(r.remote_service.stats().requests.get(), 0);
        // Free the headroom: the watcher path resolves and the task runs.
        r.store_local.unpin(resident);
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        assert!(r.store_local.contains(dep));
        // Exactly one transfer crossed the wire for the dependency.
        assert_eq!(r.remote_service.stats().requests.get(), 1);
        r.handle.shutdown();
    }

    #[test]
    fn arrived_dependencies_stay_pinned_until_task_completes() {
        // Local store fits ~4 x 64B. The fetched dependency must survive
        // eviction pressure while its task is queued/running, and become
        // evictable once the task completes.
        let mut r = remote_dep_rig(true, 256);
        let dep = TaskId::driver_root(DriverId::from_index(0))
            .child(300)
            .return_object(0);
        r.store_remote.put(dep, Bytes::from(vec![9u8; 64])).unwrap();
        r.services.objects.add_location(dep, NodeId(7), 64);
        let spec = spec_with(vec![ArgSpec::ObjectRef(dep)], 0);
        r.handle.submit(spec.clone());
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        // The task is running; its argument is pinned. A put that would
        // need the whole store must fail rather than evict it.
        let filler = |i: u64| {
            TaskId::driver_root(DriverId::from_index(9))
                .child(i)
                .return_object(0)
        };
        let err = r
            .store_local
            .put(filler(0), Bytes::from(vec![0u8; 250]))
            .unwrap_err();
        assert!(matches!(err, rtml_common::error::Error::StoreFull { .. }));
        assert!(r.store_local.contains(dep), "pinned argument was evicted");
        // Completion releases the pin; now the same put evicts it.
        r.handle
            .sender()
            .send(LocalMsg::WorkerDone {
                worker: r.worker_id,
                task: spec.task_id,
            })
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if r.store_local
                .put(filler(1), Bytes::from(vec![0u8; 250]))
                .is_ok()
            {
                break;
            }
            assert!(Instant::now() < deadline, "pin never released");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!r.store_local.contains(dep));
        r.handle.shutdown();
    }

    /// A kv-published load report for a fake loaded peer, pointing the
    /// steal plane at `endpoint`.
    fn publish_fake_load(r: &Rig, node: NodeId, ready: u32, endpoint: &rtml_net::Endpoint) {
        let report = LoadReport {
            node,
            sched_address: endpoint.address().as_u64(),
            ready,
            waiting: 0,
            running: 0,
            idle_workers: 0,
            available: Resources::cpu(0.0),
            total: Resources::cpu(4.0),
            at_nanos: rtml_common::time::now_nanos(),
        };
        r.services.kv.set(load_key(node), encode_to_bytes(&report));
    }

    #[test]
    fn idle_scheduler_steals_a_granted_batch() {
        let mut r = rig(LocalSchedulerConfig {
            stealing: StealConfig {
                min_backlog: 1,
                timeout: Duration::from_millis(200),
                ..StealConfig::default()
            },
            ..LocalSchedulerConfig::default()
        });
        let victim = r.services.fabric.register(NodeId(7), "fake-victim");
        publish_fake_load(&r, NodeId(7), 50, &victim);
        // The idle thief must ask the loaded peer for a batch, naming
        // its full spare capacity.
        let reply_address = loop {
            let d = victim
                .receiver()
                .recv_timeout(Duration::from_secs(5))
                .expect("steal request");
            if let Ok(SchedWire::StealRequest {
                thief,
                reply_address,
                capacity,
                max_tasks,
                ..
            }) = decode_from_slice::<SchedWire>(&d.payload)
            {
                assert_eq!(thief, NodeId(0));
                assert_eq!(capacity, Resources::cpu(4.0));
                assert!(max_tasks >= 1);
                break reply_address;
            }
        };
        // Grant two tasks as ONE frame; the thief must run them.
        let specs = vec![spec_with(vec![], 0), spec_with(vec![], 1)];
        r.services
            .fabric
            .send(
                victim.address(),
                NetAddress::from_u64(reply_address),
                encode_to_bytes(&SchedWire::StealGrant {
                    victim: NodeId(7),
                    tasks: specs.clone(),
                }),
            )
            .unwrap();
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, specs[0].task_id);
        let stats = r.handle.stats().clone();
        let deadline = Instant::now() + Duration::from_secs(5);
        while stats.steal.tasks_stolen.get() < 2 {
            assert!(Instant::now() < deadline, "steal never counted");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(stats.steal.grants.get() >= 1);
        assert!(stats.steal.attempts.get() >= 1);
        // The dispatched stolen task feeds the steal-to-run histogram
        // (the scheduler thread records it just after handing the task
        // to the worker, so poll rather than race it).
        let deadline = Instant::now() + Duration::from_secs(5);
        while stats.steal.steal_to_run.count() == 0 {
            assert!(Instant::now() < deadline, "steal-to-run never recorded");
            std::thread::sleep(Duration::from_millis(2));
        }
        r.handle.shutdown();
    }

    #[test]
    fn stale_or_dead_victims_do_not_wedge_the_steal_loop() {
        // Satellite regression: a victim that never answers (killed
        // mid-request), answers empty (queue drained), or whose
        // endpoint is gone must each leave the thief's steal loop
        // live — and local work must still dispatch.
        let mut r = rig(LocalSchedulerConfig {
            stealing: StealConfig {
                min_backlog: 1,
                timeout: Duration::from_millis(10),
                ..StealConfig::default()
            },
            ..LocalSchedulerConfig::default()
        });
        let victim = r.services.fabric.register(NodeId(7), "fake-victim");
        publish_fake_load(&r, NodeId(7), 50, &victim);
        let stats = r.handle.stats().clone();
        // 1) Silence: the thief must time out and attempt again.
        let deadline = Instant::now() + Duration::from_secs(5);
        while stats.steal.timeouts.get() < 1 || stats.steal.attempts.get() < 2 {
            assert!(Instant::now() < deadline, "thief wedged on a silent victim");
            std::thread::sleep(Duration::from_millis(2));
        }
        // 2) Stale victim: an empty grant is a first-class answer.
        let d = victim
            .receiver()
            .recv_timeout(Duration::from_secs(5))
            .expect("request");
        let Ok(SchedWire::StealRequest { reply_address, .. }) =
            decode_from_slice::<SchedWire>(&d.payload)
        else {
            panic!("expected steal request");
        };
        r.services
            .fabric
            .send(
                victim.address(),
                NetAddress::from_u64(reply_address),
                encode_to_bytes(&SchedWire::StealGrant {
                    victim: NodeId(7),
                    tasks: vec![],
                }),
            )
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while stats.steal.empty_grants.get() < 1 {
            assert!(Instant::now() < deadline, "empty grant never processed");
            std::thread::sleep(Duration::from_millis(2));
        }
        // 3) Dead victim: unregister the endpoint; sends fail fast and
        // the loop keeps cycling rather than waiting on a ghost.
        r.services.fabric.unregister(victim.address());
        let attempts_before = stats.steal.attempts.get();
        let deadline = Instant::now() + Duration::from_secs(5);
        while stats.steal.attempts.get() < attempts_before + 2 {
            assert!(Instant::now() < deadline, "thief wedged on a dead victim");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Local work still runs.
        let spec = spec_with(vec![], 9);
        r.handle.submit(spec.clone());
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        r.handle.shutdown();
    }

    #[test]
    fn steal_request_grants_half_the_queue_and_commits_ownership() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(1.0),
            spill: SpillMode::NeverSpill,
            ..LocalSchedulerConfig::default()
        });
        // One worker, 1 cpu: the first task runs, eight sit ready.
        let specs: Vec<TaskSpec> = (0..9).map(|i| spec_with(vec![], i)).collect();
        r.handle.submit_batch(specs.clone());
        let _ = recv_run(&r.worker_rx);
        let thief = r.services.fabric.register(NodeId(9), "fake-thief");
        r.services
            .fabric
            .send(
                thief.address(),
                r.handle.address(),
                encode_to_bytes(&SchedWire::StealRequest {
                    thief: NodeId(9),
                    reply_address: thief.address().as_u64(),
                    capacity: Resources::cpu(8.0),
                    max_tasks: 16,
                    local_objects_hint: vec![],
                }),
            )
            .unwrap();
        let d = thief
            .receiver()
            .recv_timeout(Duration::from_secs(5))
            .expect("grant");
        let Ok(SchedWire::StealGrant { victim, tasks }) =
            decode_from_slice::<SchedWire>(&d.payload)
        else {
            panic!("expected steal grant");
        };
        assert_eq!(victim, NodeId(0));
        assert_eq!(tasks.len(), 4, "half of the 8-deep ready queue");
        // Ownership was group-committed before the grant left.
        for task in &tasks {
            assert_eq!(
                r.services.tasks.get_state(task.task_id),
                Some(TaskState::Queued(NodeId(9))),
                "stolen task not committed to the thief"
            );
        }
        // The victim counts the grant just after the frame leaves; poll
        // rather than race its scheduler thread.
        let deadline = Instant::now() + Duration::from_secs(5);
        while r.handle.stats().steal.tasks_granted.get() != 4 {
            assert!(Instant::now() < deadline, "tasks_granted never counted");
            std::thread::sleep(Duration::from_millis(2));
        }
        r.handle.shutdown();
    }

    #[test]
    fn steal_grants_prefer_tasks_with_thief_local_dependencies() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(1.0),
            spill: SpillMode::NeverSpill,
            ..LocalSchedulerConfig::default()
        });
        // A dependency resident here (so its task is ready) that the
        // object table also locates on the thief.
        let dep = TaskId::driver_root(DriverId::from_index(0))
            .child(70)
            .return_object(0);
        r.services
            .store
            .put(dep, Bytes::from(vec![1u8; 64]))
            .unwrap();
        r.services.objects.add_location(dep, NodeId(0), 64);
        r.services.objects.add_location(dep, NodeId(9), 64);
        let blocker = spec_with(vec![], 0);
        let plain_a = spec_with(vec![], 1);
        let local_dep = spec_with(vec![ArgSpec::ObjectRef(dep)], 2);
        let plain_b = spec_with(vec![], 3);
        r.handle.submit_batch(vec![
            blocker.clone(),
            plain_a.clone(),
            local_dep.clone(),
            plain_b.clone(),
        ]);
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, blocker.task_id);
        // Three ready tasks -> a one-task grant, and the locality score
        // must pick the task whose dependency lives on the thief.
        let thief = r.services.fabric.register(NodeId(9), "fake-thief");
        r.services
            .fabric
            .send(
                thief.address(),
                r.handle.address(),
                encode_to_bytes(&SchedWire::StealRequest {
                    thief: NodeId(9),
                    reply_address: thief.address().as_u64(),
                    capacity: Resources::cpu(8.0),
                    max_tasks: 16,
                    local_objects_hint: vec![],
                }),
            )
            .unwrap();
        let d = thief
            .receiver()
            .recv_timeout(Duration::from_secs(5))
            .expect("grant");
        let Ok(SchedWire::StealGrant { tasks, .. }) = decode_from_slice::<SchedWire>(&d.payload)
        else {
            panic!("expected steal grant");
        };
        assert_eq!(tasks.len(), 1);
        assert_eq!(
            tasks[0].task_id, local_dep.task_id,
            "victim must grant the thief-local task first"
        );
        r.handle.shutdown();
    }

    #[test]
    fn failed_grant_send_reclaims_the_batch() {
        // The thief's endpoint is gone by the time the victim answers:
        // ownership was already committed as Queued(thief), so the
        // victim must take the batch back (re-record, re-queue) rather
        // than strand it on a ghost.
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(1.0),
            spill: SpillMode::NeverSpill,
            ..LocalSchedulerConfig::default()
        });
        let specs: Vec<TaskSpec> = (0..5).map(|i| spec_with(vec![], i)).collect();
        r.handle.submit_batch(specs.clone());
        let first = recv_run(&r.worker_rx);
        assert_eq!(first.task_id, specs[0].task_id);
        // A request whose reply address was never registered: the grant
        // send fails after the ownership commit.
        let requester = r.services.fabric.register(NodeId(9), "fake-thief");
        r.services
            .fabric
            .send(
                requester.address(),
                r.handle.address(),
                encode_to_bytes(&SchedWire::StealRequest {
                    thief: NodeId(9),
                    reply_address: 0xdead_beef,
                    capacity: Resources::cpu(8.0),
                    max_tasks: 16,
                    local_objects_hint: vec![],
                }),
            )
            .unwrap();
        // Every task still runs locally and ends Queued(0).
        r.handle
            .sender()
            .send(LocalMsg::WorkerDone {
                worker: r.worker_id,
                task: first.task_id,
            })
            .unwrap();
        for _ in &specs[1..] {
            let ran = recv_run(&r.worker_rx);
            r.handle
                .sender()
                .send(LocalMsg::WorkerDone {
                    worker: r.worker_id,
                    task: ran.task_id,
                })
                .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let all_home = specs.iter().all(|s| {
                matches!(
                    r.services.tasks.get_state(s.task_id),
                    Some(TaskState::Queued(n)) if n == NodeId(0)
                )
            });
            if all_home {
                break;
            }
            assert!(Instant::now() < deadline, "batch not reclaimed");
            std::thread::sleep(Duration::from_millis(5));
        }
        r.handle.shutdown();
    }

    #[test]
    fn stale_victim_answers_with_an_empty_grant() {
        let mut r = rig(LocalSchedulerConfig::default());
        // Ready queue is empty: the grant must come back empty rather
        // than not at all (the thief's loop re-arms on any answer).
        let thief = r.services.fabric.register(NodeId(9), "fake-thief");
        r.services
            .fabric
            .send(
                thief.address(),
                r.handle.address(),
                encode_to_bytes(&SchedWire::StealRequest {
                    thief: NodeId(9),
                    reply_address: thief.address().as_u64(),
                    capacity: Resources::cpu(8.0),
                    max_tasks: 16,
                    local_objects_hint: vec![],
                }),
            )
            .unwrap();
        let d = thief
            .receiver()
            .recv_timeout(Duration::from_secs(5))
            .expect("grant");
        match decode_from_slice::<SchedWire>(&d.payload) {
            Ok(SchedWire::StealGrant { tasks, .. }) => assert!(tasks.is_empty()),
            other => panic!("expected empty grant, got {other:?}"),
        }
        r.handle.shutdown();
    }

    #[test]
    fn prefetch_prioritizes_head_of_queue_under_tight_budget() {
        // 256-byte store, two 150-byte remote dependencies: the batch
        // head's dependency claims the prefetch budget; the second fits
        // alone but is deferred (prioritization, not capacity) and
        // resolves reactively once the head task completes.
        let mut r = remote_dep_rig(true, 256);
        let dep = |i: u64| {
            TaskId::driver_root(DriverId::from_index(0))
                .child(500 + i)
                .return_object(0)
        };
        for i in 0..2 {
            r.store_remote
                .put(dep(i), Bytes::from(vec![i as u8; 150]))
                .unwrap();
            r.services.objects.add_location(dep(i), NodeId(7), 150);
        }
        let head = spec_with(vec![ArgSpec::ObjectRef(dep(0))], 0);
        let tail = spec_with(vec![ArgSpec::ObjectRef(dep(1))], 1);
        r.handle.submit_batch(vec![head.clone(), tail.clone()]);
        let deadline = Instant::now() + Duration::from_secs(5);
        while r.handle.stats().prefetch_deferred_priority.get() == 0 {
            assert!(Instant::now() < deadline, "deferral never counted");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            r.handle.stats().prefetch_skipped_capacity.get(),
            0,
            "a budget loss is a deferral, not a capacity skip"
        );
        // The head task runs on its prefetched dependency; completing
        // it releases the pin and the deferred dependency follows.
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, head.task_id);
        r.handle
            .sender()
            .send(LocalMsg::WorkerDone {
                worker: r.worker_id,
                task: head.task_id,
            })
            .unwrap();
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, tail.task_id);
        r.handle.shutdown();
    }

    #[test]
    fn resolver_triggers_reconstruction_for_lost_object() {
        let kv = KvStore::new(2);
        let fabric = Fabric::new(FabricConfig::default());
        let directory = TransferDirectory::new();
        let store = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let _t = TransferService::spawn(fabric.clone(), store.clone(), &directory);
        let agent = Arc::new(FetchAgent::spawn(
            fabric.clone(),
            store.clone(),
            directory.clone(),
        ));
        let global = fabric.register(NodeId(1000), "fake-global");
        let objects = ObjectTable::new(kv.clone());
        let (hook_tx, hook_rx) = unbounded();
        let services = SchedServices {
            kv: kv.clone(),
            objects: objects.clone(),
            tasks: TaskTable::new(kv.clone()),
            events: EventLog::new(kv.clone()),
            fabric,
            directory,
            store,
            agent,
            global: crate::global::GlobalRoutes::single(global.address()),
            reconstruct: Arc::new(move |obj| {
                let _ = hook_tx.send(obj);
            }),
            request_worker: Arc::new(|| {}),
            replicate_hint: Arc::new(|_, _| {}),
        };
        let (worker_tx, _worker_rx) = unbounded();
        let mut handle = LocalScheduler::spawn(
            LocalSchedulerConfig::default(),
            services,
            vec![WorkerHandle {
                id: WorkerId::new(NodeId(0), 0),
                tx: worker_tx,
            }],
        );

        // A dependency whose producer is known but which has no copies.
        let root = TaskId::driver_root(DriverId::from_index(0));
        let producer = root.child(77);
        let dep = producer.return_object(0);
        objects.declare(dep, Some(producer));

        handle.submit(spec_with(vec![ArgSpec::ObjectRef(dep)], 0));
        let asked = hook_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(asked, dep);
        handle.shutdown();
    }
}
