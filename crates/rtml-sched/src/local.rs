//! The per-node local scheduler (paper §3.2.2, Figure 3).
//!
//! One instance runs per node as a dedicated thread. It owns three task
//! collections:
//!
//! - `waiting`: tasks with unsatisfied dataflow dependencies. For each
//!   missing object a **resolver** watches the object table, fetches the
//!   object from a remote holder as soon as a copy exists (updating the
//!   object table), and asks the runtime's reconstruction hook for help
//!   if the object has been lost. When the object seals locally the task
//!   moves to `ready` — the paper's "tasks become available for execution
//!   if and only if their dependencies have finished executing".
//! - `ready`: runnable tasks awaiting a worker and resources. Dispatch is
//!   first-fit: a small CPU task may overtake a GPU task that is waiting
//!   for a free GPU (heterogeneity, R4).
//! - `running`: tasks on workers, with their resource grants.
//!
//! Submissions from same-node workers arrive on an in-process channel
//! (the latency-critical path, R1); placements from the global scheduler
//! arrive over the fabric; spill decisions follow the configured
//! [`SpillMode`].

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use rtml_common::codec::{decode_from_slice, encode_to_bytes};
use rtml_common::event::{Component, Event, EventKind};
use rtml_common::ids::{NodeId, ObjectId, TaskId, WorkerId};
use rtml_common::resources::Resources;
use rtml_common::task::{TaskSpec, TaskState};
use rtml_kv::{EventLog, KvStore, ObjectTable, TaskTable};
use rtml_net::{Fabric, NetAddress};
use rtml_store::{FetchAgent, ObjectStore, TransferDirectory};

use crate::msg::{load_key, LoadReport, LocalMsg, WorkerCommand, WorkerHandle};
use crate::spill::SpillMode;
use crate::wire::SchedWire;

/// Static configuration for one local scheduler.
#[derive(Clone, Debug)]
pub struct LocalSchedulerConfig {
    /// Node this scheduler manages.
    pub node: NodeId,
    /// The node's total resource capacity.
    pub total_resources: Resources,
    /// Spillover decision rule.
    pub spill: SpillMode,
    /// Per-attempt timeout for remote object fetches.
    pub fetch_timeout: Duration,
    /// Minimum interval between load publications.
    pub load_interval: Duration,
    /// Dispatch-time prefetch: when a batch of tasks is queued, the
    /// scheduler groups their missing-but-located dependencies by
    /// holder and issues one coalesced `FetchMany` per holder
    /// immediately, so transfer overlaps queueing. When off, every
    /// missing object is resolved reactively by its own watcher.
    /// Prefetch changes *when bytes move*, never what runs: dispatch is
    /// gated on arrival either way, and ids/placements are identical.
    pub prefetch: bool,
}

impl Default for LocalSchedulerConfig {
    fn default() -> Self {
        LocalSchedulerConfig {
            node: NodeId(0),
            total_resources: Resources::cpu(4.0),
            spill: SpillMode::default(),
            fetch_timeout: Duration::from_secs(2),
            load_interval: Duration::from_millis(1),
            prefetch: true,
        }
    }
}

/// Shared services every scheduler component needs. Cloning is cheap
/// (everything is behind `Arc`).
#[derive(Clone)]
pub struct SchedServices {
    /// Control-plane store.
    pub kv: Arc<KvStore>,
    /// Object table view.
    pub objects: ObjectTable,
    /// Task table view.
    pub tasks: TaskTable,
    /// Event log (R7).
    pub events: EventLog,
    /// The simulated network.
    pub fabric: Arc<Fabric>,
    /// Node → transfer-service address map.
    pub directory: Arc<TransferDirectory>,
    /// This node's object store.
    pub store: Arc<ObjectStore>,
    /// This node's fetch client: persistent endpoint, coalesced
    /// multi-object requests, single-flighted duplicates.
    pub agent: Arc<FetchAgent>,
    /// Fabric address of the global scheduler.
    pub global_address: NetAddress,
    /// Runtime hook invoked when a watched object appears to be lost
    /// (has a producer but no live copies). The runtime deduplicates and
    /// resubmits producing tasks (lineage replay).
    pub reconstruct: Arc<dyn Fn(ObjectId) + Send + Sync>,
    /// Runtime hook asking the node to grow its worker pool: invoked
    /// when runnable tasks exist, no worker is idle, and at least one
    /// worker is blocked inside `get`/`wait` (nested-task deadlock
    /// avoidance).
    pub request_worker: Arc<dyn Fn() + Send + Sync>,
    /// Replication-plane hint, invoked at dispatch/prefetch time with
    /// `(holder, [(object, extra fan-in)])`: a coalesced prefetch issues
    /// **one** request frame on behalf of many waiting tasks, so the
    /// holder's per-object demand counters would undercount exactly the
    /// broadcast objects replication exists for. The runtime wires this
    /// to the holder's transfer-service demand counters; defaults to a
    /// no-op when the replication plane is off.
    pub replicate_hint: Arc<dyn Fn(NodeId, &[(ObjectId, u64)]) + Send + Sync>,
}

/// Live counters for one local scheduler (beyond the event log).
#[derive(Debug, Default)]
pub struct LocalSchedulerStats {
    /// Dispatch-time prefetches skipped because the object would not
    /// fit in the store's unpinned capacity headroom (`capacity -
    /// pinned`): moving bytes early is pointless if they cannot become
    /// resident, and evicting pinned-adjacent working state to make
    /// room would be worse. Skipped objects resolve reactively.
    pub prefetch_skipped_capacity: rtml_common::metrics::Counter,
}

/// Running handle for a local scheduler.
pub struct LocalSchedulerHandle {
    tx: Sender<LocalMsg>,
    address: NetAddress,
    node: NodeId,
    stats: Arc<LocalSchedulerStats>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl LocalSchedulerHandle {
    /// The in-process submission channel (used by same-node workers and
    /// the driver).
    pub fn sender(&self) -> Sender<LocalMsg> {
        self.tx.clone()
    }

    /// The scheduler's fabric address (placements are sent here).
    pub fn address(&self) -> NetAddress {
        self.address
    }

    /// The node this scheduler manages.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The scheduler's live counters (shared with its thread).
    pub fn stats(&self) -> &Arc<LocalSchedulerStats> {
        &self.stats
    }

    /// Submits a task from this node (driver/worker path).
    pub fn submit(&self, spec: TaskSpec) {
        let _ = self.tx.send(LocalMsg::Submit {
            spec,
            via_global: false,
        });
    }

    /// Submits a whole batch of tasks from this node as **one** mailbox
    /// message — the entry point of the batched hot path.
    pub fn submit_batch(&self, specs: Vec<TaskSpec>) {
        let _ = self.tx.send(LocalMsg::SubmitBatch {
            specs,
            via_global: false,
        });
    }

    /// Requests shutdown and joins the scheduler thread.
    pub fn shutdown(&mut self) {
        let _ = self.tx.send(LocalMsg::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for LocalSchedulerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Namespace for spawning local schedulers.
pub struct LocalScheduler;

impl LocalScheduler {
    /// Spawns a local scheduler thread for `config.node`.
    ///
    /// `workers` are the node's initial worker pool; more can be attached
    /// later with [`LocalMsg::AddWorker`]. The scheduler registers its
    /// fabric endpoint, announces itself to the global scheduler
    /// (`NodeUp`), and publishes an initial load report.
    pub fn spawn(
        config: LocalSchedulerConfig,
        services: SchedServices,
        workers: Vec<WorkerHandle>,
    ) -> LocalSchedulerHandle {
        let (tx, rx) = unbounded();
        let endpoint = services.fabric.register(config.node, "local-sched");
        let address = endpoint.address();
        let node = config.node;
        let stats = Arc::new(LocalSchedulerStats::default());
        let stats2 = stats.clone();

        let (seal_tx, seal_rx) = unbounded();
        services.store.add_seal_listener(seal_tx);

        let join = std::thread::Builder::new()
            .name(format!("rtml-lsched-{node}"))
            .spawn(move || {
                let mut core = Core {
                    config,
                    services,
                    address,
                    stats: stats2,
                    workers: HashMap::new(),
                    idle: VecDeque::new(),
                    in_use: Resources::none(),
                    ready: VecDeque::new(),
                    waiting: HashMap::new(),
                    watchers: HashMap::new(),
                    resolving: HashSet::new(),
                    task_pins: HashMap::new(),
                    running: BTreeMap::new(),
                    released: HashSet::new(),
                    spawn_pending: false,
                    load_dirty: true,
                    last_load: Instant::now() - Duration::from_secs(1),
                };
                for w in workers {
                    core.add_worker(w);
                }
                core.announce();
                core.run(rx, endpoint, seal_rx);
            })
            .expect("spawn local scheduler");

        LocalSchedulerHandle {
            tx,
            address,
            node,
            stats,
            join: Some(join),
        }
    }
}

enum Incoming {
    Local(LocalMsg),
    Net(bytes::Bytes),
    Seal(ObjectId),
    Tick,
    Closed,
}

struct Core {
    config: LocalSchedulerConfig,
    services: SchedServices,
    address: NetAddress,
    stats: Arc<LocalSchedulerStats>,
    workers: HashMap<WorkerId, Sender<WorkerCommand>>,
    idle: VecDeque<WorkerId>,
    /// Resources granted to running (non-blocked) tasks. May transiently
    /// exceed the node total when blocked tasks resume.
    in_use: Resources,
    ready: VecDeque<TaskSpec>,
    /// task → (spec, number of distinct objects still missing).
    waiting: HashMap<TaskId, (TaskSpec, usize)>,
    /// missing object → tasks waiting on it.
    watchers: HashMap<ObjectId, Vec<TaskId>>,
    /// objects with an active resolver (a prefetch in flight or a
    /// watcher thread).
    resolving: HashSet<ObjectId>,
    /// Dependencies pinned on behalf of a task from the moment they
    /// arrive until the task completes, so LRU eviction cannot drop a
    /// fetched/prefetched argument between arrival and execution.
    task_pins: HashMap<TaskId, Vec<ObjectId>>,
    /// Ordered by task ID so iteration (e.g. collecting the tasks lost
    /// with a dead worker) is reproducible across runs — `HashMap`
    /// iteration order is seeded per process and would make failure
    /// handling order (and thus the event log) nondeterministic.
    running: BTreeMap<TaskId, (WorkerId, Resources)>,
    /// Tasks whose grant has been released because they are blocked in
    /// `get`/`wait`.
    released: HashSet<TaskId>,
    /// A worker-pool growth request is outstanding.
    spawn_pending: bool,
    load_dirty: bool,
    last_load: Instant,
}

impl Core {
    fn run(
        &mut self,
        rx: Receiver<LocalMsg>,
        endpoint: rtml_net::Endpoint,
        seal_rx: Receiver<ObjectId>,
    ) {
        loop {
            let incoming = {
                crossbeam::channel::select! {
                    recv(rx) -> m => m.map(Incoming::Local).unwrap_or(Incoming::Closed),
                    recv(endpoint.receiver()) -> d => d
                        .map(|d| Incoming::Net(d.payload))
                        .unwrap_or(Incoming::Closed),
                    recv(seal_rx) -> o => o.map(Incoming::Seal).unwrap_or(Incoming::Closed),
                    default(self.config.load_interval) => Incoming::Tick,
                }
            };
            match incoming {
                Incoming::Local(LocalMsg::Shutdown) | Incoming::Closed => break,
                Incoming::Local(msg) => self.on_local(msg),
                Incoming::Net(payload) => self.on_net(payload),
                Incoming::Seal(object) => self.on_sealed(object),
                Incoming::Tick => {}
            }
            self.dispatch();
            self.maybe_publish_load();
        }
        // Drain: stop workers, deregister from the fabric.
        for (_, tx) in self.workers.drain() {
            let _ = tx.send(WorkerCommand::Stop);
        }
        self.services.fabric.unregister(self.address);
    }

    fn announce(&mut self) {
        let up = SchedWire::NodeUp {
            node: self.config.node,
            sched_address: self.address.as_u64(),
        };
        let report = self.load_report();
        self.services
            .kv
            .set(load_key(self.config.node), encode_to_bytes(&report));
        // NodeUp and the first load report travel as one coalesced
        // frame: the global scheduler learns reachability and capacity
        // together (one hop), so the formation barrier never observes a
        // node that is reachable but loadless.
        let _ = self.services.fabric.send_batch(
            self.address,
            self.services.global_address,
            vec![
                encode_to_bytes(&up),
                encode_to_bytes(&SchedWire::Load(report)),
            ],
        );
        self.load_dirty = false;
        self.last_load = Instant::now();
    }

    fn on_local(&mut self, msg: LocalMsg) {
        match msg {
            LocalMsg::Submit { spec, via_global } => self.on_submit(spec, via_global),
            LocalMsg::SubmitBatch { specs, via_global } => self.on_submit_batch(specs, via_global),
            LocalMsg::ObjectSealed(object) => self.on_sealed(object),
            LocalMsg::WorkerDone { worker, task } => self.on_worker_done(worker, task),
            LocalMsg::AddWorker(handle) => self.add_worker(handle),
            LocalMsg::RemoveWorker(worker) => self.remove_worker(worker),
            LocalMsg::WorkerBlocked { worker: _, task } => self.on_blocked(task),
            LocalMsg::WorkerUnblocked { worker: _, task } => self.on_unblocked(task),
            LocalMsg::Shutdown => unreachable!("handled by run()"),
        }
    }

    fn on_net(&mut self, payload: bytes::Bytes) {
        match decode_from_slice::<SchedWire>(&payload) {
            Ok(SchedWire::Place { spec, hops: _ }) => self.on_submit(spec, true),
            Ok(SchedWire::PlaceBatch { specs, hops: _ }) => self.on_submit_batch(specs, true),
            Ok(SchedWire::Spill(spec)) => {
                // Misdirected spill (we are not a global scheduler);
                // treat as a local submission rather than dropping work.
                self.on_submit(spec, false)
            }
            Ok(SchedWire::SpillBatch(specs)) => self.on_submit_batch(specs, false),
            Ok(_) | Err(_) => {}
        }
    }

    fn add_worker(&mut self, handle: WorkerHandle) {
        self.idle.push_back(handle.id);
        self.workers.insert(handle.id, handle.tx);
        self.spawn_pending = false;
        self.load_dirty = true;
    }

    /// A task blocked inside `get`/`wait`: hand its grant back so other
    /// work can use the node (and, if needed, ask for one more worker).
    fn on_blocked(&mut self, task: TaskId) {
        if let Some((_, grant)) = self.running.get(&task) {
            if self.released.insert(task) {
                self.in_use = self.in_use.saturating_sub(grant);
                self.load_dirty = true;
            }
        }
    }

    /// A blocked task resumed: take its grant back (transient
    /// oversubscription is accepted rather than pausing a live thread).
    fn on_unblocked(&mut self, task: TaskId) {
        if self.released.remove(&task) {
            if let Some((_, grant)) = self.running.get(&task) {
                self.in_use = self.in_use.add(grant);
                self.load_dirty = true;
            }
        }
    }

    fn remove_worker(&mut self, worker: WorkerId) {
        self.workers.remove(&worker);
        self.idle.retain(|w| *w != worker);
        let lost: Vec<TaskId> = self
            .running
            .iter()
            .filter(|(_, (w, _))| *w == worker)
            .map(|(t, _)| *t)
            .collect();
        for task in lost {
            let (_, grant) = self.running.remove(&task).expect("collected above");
            if !self.released.remove(&task) {
                self.in_use = self.in_use.saturating_sub(&grant);
            }
            self.release_pins(task);
            self.services.tasks.set_state(task, &TaskState::Lost);
        }
        self.services.events.append(
            self.config.node,
            Event::now(Component::LocalScheduler, EventKind::WorkerLost { worker }),
        );
        self.load_dirty = true;
    }

    /// Single-task ingest: a batch of one.
    fn on_submit(&mut self, spec: TaskSpec, via_global: bool) {
        self.on_submit_batch(vec![spec], via_global);
    }

    /// Batch ingest: the same decisions as N sequential single
    /// submissions, but with one spill/dependency scan over the batch,
    /// one group-committed state write, one event-log append, and (when
    /// tasks must travel) one fabric frame — per-task costs become
    /// per-batch costs (R2).
    ///
    /// `via_global` marks placements made by the global scheduler,
    /// which must not spill again (except when the node genuinely can
    /// never satisfy the demand — stale capacity information).
    fn on_submit_batch(&mut self, specs: Vec<TaskSpec>, via_global: bool) {
        let node = self.config.node;
        // Single pass: spill decision plus dependency gating. `backlog`
        // advances as runnable tasks are accepted, so the spill rule
        // sees exactly the queue depths a sequential loop would.
        let mut backlog = self.ready.len();
        let mut accepted: Vec<(TaskSpec, HashSet<ObjectId>)> = Vec::with_capacity(specs.len());
        let mut spilled: Vec<TaskSpec> = Vec::new();
        for spec in specs {
            let must_spill = if via_global {
                !self.config.total_resources.fits(&spec.resources)
            } else {
                self.config
                    .spill
                    .should_spill(&spec, backlog, &self.config.total_resources)
            };
            if must_spill {
                spilled.push(spec);
                continue;
            }
            let missing: HashSet<ObjectId> = spec
                .dependencies()
                .filter(|o| !self.services.store.contains(*o))
                .collect();
            if missing.is_empty() {
                backlog += 1;
            }
            accepted.push((spec, missing));
        }

        if !accepted.is_empty() {
            let ids: Vec<TaskId> = accepted.iter().map(|(s, _)| s.task_id).collect();
            self.services
                .tasks
                .set_states_many(&ids, &TaskState::Queued(node));
            let at_nanos = rtml_common::time::now_nanos();
            self.services.events.append_many(
                node,
                accepted
                    .iter()
                    .map(|(s, _)| Event {
                        at_nanos,
                        component: Component::LocalScheduler,
                        kind: EventKind::TaskQueuedLocal {
                            task: s.task_id,
                            node,
                        },
                    })
                    .collect(),
            );
            // Gate each task on its dependencies, collecting the batch's
            // distinct unresolved objects so the whole set resolves as
            // one prefetch pass (one FetchMany per holder) instead of
            // one reactive watcher per object.
            let mut unresolved: Vec<ObjectId> = Vec::new();
            let mut unresolved_seen: HashSet<ObjectId> = HashSet::new();
            for (spec, missing) in accepted {
                if missing.is_empty() {
                    self.ready.push_back(spec);
                } else {
                    let count = missing.len();
                    for object in missing {
                        self.watchers.entry(object).or_default().push(spec.task_id);
                        if !self.resolving.contains(&object)
                            && !self.services.store.contains(object)
                            && unresolved_seen.insert(object)
                        {
                            unresolved.push(object);
                        }
                    }
                    self.waiting.insert(spec.task_id, (spec, count));
                }
            }
            if !unresolved.is_empty() {
                self.resolve_missing(unresolved);
            }
            self.load_dirty = true;
        }
        if !spilled.is_empty() {
            self.spill_batch(spilled);
        }
    }

    /// Starts resolution for a batch's distinct missing dependencies.
    ///
    /// With prefetch on, objects the table already locates are grouped
    /// by holder (rendezvous-ranked, so different objects of a
    /// replicated set pull from different holders) and requested
    /// **now**, while their tasks are still queued — one coalesced
    /// `FetchMany` per holder, transfer overlapped with queueing,
    /// dispatch still gated on arrival. Admission is budgeted: objects
    /// that would not fit in the store's unpinned capacity headroom are
    /// not prefetched (counted in
    /// [`LocalSchedulerStats::prefetch_skipped_capacity`]) and resolve
    /// reactively instead. Objects with no live copy (producer still
    /// running, or lost) get the patient per-object watcher, which also
    /// triggers lineage reconstruction. With prefetch off, everything
    /// takes the watcher path — the reactive, per-object baseline.
    fn resolve_missing(&mut self, objects: Vec<ObjectId>) {
        for object in &objects {
            self.resolving.insert(*object);
        }
        if !self.config.prefetch {
            for object in objects {
                self.spawn_watcher(object);
            }
            return;
        }
        let me = self.config.node;
        let infos = self.services.objects.get_many(&objects);
        // Prefetch admission budget: what could become resident by
        // evicting everything evictable. Pinned bytes are running
        // tasks' arguments — prefetch must not thrash against them.
        let budget = self
            .services
            .store
            .capacity_bytes()
            .saturating_sub(self.services.store.pinned_bytes());
        let mut admitted_bytes = 0u64;
        let mut groups: BTreeMap<NodeId, Vec<ObjectId>> = BTreeMap::new();
        let mut hints: BTreeMap<NodeId, Vec<(ObjectId, u64)>> = BTreeMap::new();
        let mut unlocated: Vec<ObjectId> = Vec::new();
        for (object, info) in objects.into_iter().zip(infos) {
            let located = info
                .as_ref()
                .and_then(|i| i.fetch_holder(object, me).map(|h| (h, i.size)));
            let Some((holder, size)) = located else {
                unlocated.push(object);
                continue;
            };
            // Demand travels whether or not we prefetch: the fan-in
            // beyond the single coalesced request frame (`waiters - 1`)
            // is what the holder's counters cannot see from the wire.
            let fan_in = self.watchers.get(&object).map_or(0, |w| w.len() as u64);
            if fan_in > 1 {
                hints.entry(holder).or_default().push((object, fan_in - 1));
            }
            if admitted_bytes + size > budget {
                self.stats.prefetch_skipped_capacity.inc();
                unlocated.push(object);
            } else {
                admitted_bytes += size;
                groups.entry(holder).or_default().push(object);
            }
        }
        for (holder, entries) in &hints {
            (self.services.replicate_hint)(*holder, entries);
        }
        if !groups.is_empty() {
            let at_nanos = rtml_common::time::now_nanos();
            self.services.events.append_many(
                me,
                groups
                    .values()
                    .flatten()
                    .map(|object| Event {
                        at_nanos,
                        component: Component::LocalScheduler,
                        kind: EventKind::PrefetchIssued {
                            object: *object,
                            node: me,
                        },
                    })
                    .collect(),
            );
        }
        for (holder, group) in groups {
            let services = self.services.clone();
            let fetch_timeout = self.config.fetch_timeout;
            std::thread::Builder::new()
                .name(format!("rtml-prefetch-{me}"))
                .spawn(move || prefetch_group(services, group, holder, me, fetch_timeout))
                .expect("spawn prefetch");
        }
        for object in unlocated {
            self.spawn_watcher(object);
        }
    }

    /// Spawns the per-object watcher thread. The caller is responsible
    /// for the `resolving` bookkeeping.
    fn spawn_watcher(&self, object: ObjectId) {
        let services = self.services.clone();
        let node = self.config.node;
        let fetch_timeout = self.config.fetch_timeout;
        std::thread::Builder::new()
            .name(format!("rtml-resolver-{node}"))
            .spawn(move || resolve_object(services, object, node, fetch_timeout))
            .expect("spawn resolver");
    }

    /// Forwards a whole batch of spilling tasks to the global scheduler
    /// as one frame (`Spill` for a single task, `SpillBatch` otherwise):
    /// one state group commit, one event append, one fabric hop.
    fn spill_batch(&mut self, specs: Vec<TaskSpec>) {
        let node = self.config.node;
        let ids: Vec<TaskId> = specs.iter().map(|s| s.task_id).collect();
        self.services
            .tasks
            .set_states_many(&ids, &TaskState::Spilled);
        let at_nanos = rtml_common::time::now_nanos();
        self.services.events.append_many(
            node,
            specs
                .iter()
                .map(|s| Event {
                    at_nanos,
                    component: Component::LocalScheduler,
                    kind: EventKind::TaskSpilled {
                        task: s.task_id,
                        from: node,
                    },
                })
                .collect(),
        );
        let msg = if specs.len() == 1 {
            SchedWire::Spill(specs[0].clone())
        } else {
            SchedWire::SpillBatch(specs.clone())
        };
        if self
            .services
            .fabric
            .send(
                self.address,
                self.services.global_address,
                encode_to_bytes(&msg),
            )
            .is_err()
        {
            // No global scheduler (shutdown race). Keep whatever work
            // this node can possibly run rather than losing it.
            for spec in specs {
                if self.config.total_resources.fits(&spec.resources) {
                    self.services
                        .tasks
                        .set_state(spec.task_id, &TaskState::Queued(node));
                    self.ready.push_back(spec);
                } else {
                    self.services
                        .tasks
                        .set_state(spec.task_id, &TaskState::Lost);
                }
            }
        }
        self.load_dirty = true;
    }

    fn on_sealed(&mut self, object: ObjectId) {
        self.resolving.remove(&object);
        let Some(tasks) = self.watchers.remove(&object) else {
            return;
        };
        for task in tasks {
            if let Some((_, missing)) = self.waiting.get_mut(&task) {
                // Pin the arrived dependency on this task's behalf: LRU
                // eviction must not drop a fetched/prefetched argument
                // between arrival and execution. Released at
                // completion ([`Core::release_pins`]).
                if self.services.store.pin(object) {
                    self.task_pins.entry(task).or_default().push(object);
                }
                *missing -= 1;
                if *missing == 0 {
                    let (spec, _) = self.waiting.remove(&task).expect("present");
                    self.ready.push_back(spec);
                }
            }
        }
        self.load_dirty = true;
    }

    /// Releases every dependency pin held on `task`'s behalf.
    fn release_pins(&mut self, task: TaskId) {
        if let Some(objects) = self.task_pins.remove(&task) {
            for object in objects {
                self.services.store.unpin(object);
            }
        }
    }

    fn on_worker_done(&mut self, worker: WorkerId, task: TaskId) {
        if let Some((granted_worker, grant)) = self.running.remove(&task) {
            debug_assert_eq!(granted_worker, worker, "completion from wrong worker");
            if !self.released.remove(&task) {
                self.in_use = self.in_use.saturating_sub(&grant);
            }
        }
        self.release_pins(task);
        if self.workers.contains_key(&worker) {
            self.idle.push_back(worker);
        }
        self.load_dirty = true;
    }

    fn dispatch(&mut self) {
        while !self.idle.is_empty() {
            let available = self.config.total_resources.saturating_sub(&self.in_use);
            // First-fit over the ready queue: lets small tasks overtake a
            // task waiting for scarce resources (R4).
            let Some(pos) = self.ready.iter().position(|s| available.fits(&s.resources)) else {
                break;
            };
            let spec = self.ready.remove(pos).expect("position valid");
            let worker = self.idle.pop_front().expect("non-empty");
            let Some(worker_tx) = self.workers.get(&worker) else {
                // Worker vanished between bookkeeping steps; retry.
                self.ready.insert(pos.min(self.ready.len()), spec);
                continue;
            };
            let grant = spec.resources.clone();
            let task = spec.task_id;
            if worker_tx.send(WorkerCommand::Run(spec.clone())).is_ok() {
                self.in_use = self.in_use.add(&grant);
                self.running.insert(task, (worker, grant));
            } else {
                // Dead worker: drop it and put the task back.
                self.workers.remove(&worker);
                self.ready.insert(pos.min(self.ready.len()), spec);
            }
            self.load_dirty = true;
        }
        // Nested-task deadlock avoidance: runnable work, no idle worker,
        // and at least one worker parked in get/wait -> grow the pool.
        if !self.ready.is_empty()
            && self.idle.is_empty()
            && !self.released.is_empty()
            && !self.spawn_pending
        {
            self.spawn_pending = true;
            (self.services.request_worker)();
        }
    }

    fn maybe_publish_load(&mut self) {
        if self.load_dirty && self.last_load.elapsed() >= self.config.load_interval {
            self.publish_load();
        }
    }

    fn load_report(&self) -> LoadReport {
        LoadReport {
            node: self.config.node,
            ready: self.ready.len() as u32,
            waiting: self.waiting.len() as u32,
            running: self.running.len() as u32,
            idle_workers: self.idle.len() as u32,
            available: self.config.total_resources.saturating_sub(&self.in_use),
            total: self.config.total_resources.clone(),
            at_nanos: rtml_common::time::now_nanos(),
        }
    }

    fn publish_load(&mut self) {
        let report = self.load_report();
        self.services
            .kv
            .set(load_key(self.config.node), encode_to_bytes(&report));
        let _ = self.services.fabric.send(
            self.address,
            self.services.global_address,
            encode_to_bytes(&SchedWire::Load(report)),
        );
        self.load_dirty = false;
        self.last_load = Instant::now();
    }
}

/// Fetches one holder's group of prefetched objects through the node's
/// [`FetchAgent`]: a single coalesced `FetchMany` request, one chunked
/// reply stream, group-committed location updates. Objects the fast
/// path cannot deliver (holder died, miss, timeout) fall back to the
/// patient per-object watcher so retry and lineage reconstruction still
/// happen.
fn prefetch_group(
    services: SchedServices,
    objects: Vec<ObjectId>,
    holder: NodeId,
    me: NodeId,
    fetch_timeout: Duration,
) {
    let started = Instant::now();
    let results = fetch_group_commit(
        &services.objects,
        &services.agent,
        &objects,
        holder,
        me,
        fetch_timeout,
    );
    let micros = started.elapsed().as_micros() as u64;
    let at_nanos = rtml_common::time::now_nanos();
    let mut events = Vec::new();
    let mut failed = Vec::new();
    for (object, result) in results {
        match result {
            // Only fetches that actually sealed new bytes here are
            // transfers; local hits and joins of another caller's
            // in-flight transfer moved nothing over the wire.
            Ok((_, outcome)) if outcome.inserted => {
                events.push(Event {
                    at_nanos,
                    component: Component::ObjectStore,
                    kind: EventKind::TransferStarted {
                        object,
                        from: holder,
                        to: me,
                    },
                });
                events.push(Event {
                    at_nanos,
                    component: Component::ObjectStore,
                    kind: EventKind::TransferFinished {
                        object,
                        to: me,
                        micros,
                    },
                });
            }
            Ok(_) => {}
            Err(_) => failed.push(object),
        }
    }
    if !events.is_empty() {
        services.events.append_many(me, events);
    }
    for object in failed {
        let services = services.clone();
        std::thread::Builder::new()
            .name(format!("rtml-resolver-{me}"))
            .spawn(move || resolve_object(services, object, me, fetch_timeout))
            .expect("spawn resolver");
    }
}

/// Fetches one holder's group of objects through `agent` and commits
/// the outcome to the object table as group commits: one
/// `add_location_many` for everything now local, one deduplicated
/// `remove_location_many` for the eviction fallout. Returns the
/// per-object results in group order. This is the one fetch-and-commit
/// choreography shared by the scheduler's dispatch-time prefetch and
/// the runtime's batched `get_many`.
pub fn fetch_group_commit(
    objects: &ObjectTable,
    agent: &FetchAgent,
    group: &[ObjectId],
    holder: NodeId,
    me: NodeId,
    timeout: Duration,
) -> Vec<(
    ObjectId,
    rtml_common::error::Result<(bytes::Bytes, rtml_store::PutOutcome)>,
)> {
    let results = agent.fetch_many(group, holder, timeout);
    let mut located: Vec<(ObjectId, u64)> = Vec::new();
    let mut evicted_all: Vec<ObjectId> = Vec::new();
    for (object, result) in group.iter().zip(&results) {
        if let Ok((data, outcome)) = result {
            located.push((*object, data.len() as u64));
            evicted_all.extend(outcome.evicted.iter().copied());
        }
    }
    if !located.is_empty() {
        objects.add_location_many(&located, me);
    }
    if !evicted_all.is_empty() {
        evicted_all.sort();
        evicted_all.dedup();
        objects.remove_location_many(&evicted_all, me);
    }
    group.iter().copied().zip(results).collect()
}

/// Watches one missing object until it is sealed into the local store.
///
/// Runs on its own short-lived thread. Terminates when the object becomes
/// local (the store's seal listener wakes the scheduler) or when the
/// control plane shuts down.
fn resolve_object(services: SchedServices, object: ObjectId, me: NodeId, fetch_timeout: Duration) {
    let local_rx = services.store.subscribe_local(object);
    let (mut pending_info, stream) = services.objects.subscribe(object);
    loop {
        if services.store.contains(object) {
            return;
        }
        let info = pending_info.take().or_else(|| services.objects.get(object));
        if let Some(info) = info {
            // Same capacity headroom check as the prefetch admission
            // guard: while the object provably cannot become resident
            // (store capacity minus pinned bytes), fetching it would
            // move the full payload over the fabric only to fail the
            // put and retry — wait for the headroom instead of
            // hammering the holder's egress link every poll slice.
            let fits = info.size
                <= services
                    .store
                    .capacity_bytes()
                    .saturating_sub(services.store.pinned_bytes());
            if info.is_available() && !fits {
                // Copies exist; only residency is blocked. Fall through
                // to the timed wait below — never to reconstruction.
            } else if info.is_available() {
                if let Some(holder) = info.fetch_holder(object, me) {
                    let started = Instant::now();
                    let (_, result) = fetch_group_commit(
                        &services.objects,
                        &services.agent,
                        &[object],
                        holder,
                        me,
                        fetch_timeout,
                    )
                    .pop()
                    .expect("one object in, one result out");
                    match result {
                        Ok((_, outcome)) => {
                            // Log the transfer only if this fetch sealed
                            // new bytes (not a local hit or a join of an
                            // in-flight transfer logged elsewhere).
                            if outcome.inserted {
                                let at_nanos = rtml_common::time::now_nanos();
                                let micros = started.elapsed().as_micros() as u64;
                                services.events.append_many(
                                    me,
                                    vec![
                                        Event {
                                            at_nanos,
                                            component: Component::ObjectStore,
                                            kind: EventKind::TransferStarted {
                                                object,
                                                from: holder,
                                                to: me,
                                            },
                                        },
                                        Event {
                                            at_nanos,
                                            component: Component::ObjectStore,
                                            kind: EventKind::TransferFinished {
                                                object,
                                                to: me,
                                                micros,
                                            },
                                        },
                                    ],
                                );
                            }
                            return;
                        }
                        Err(_) => {
                            // Holder unreachable or object gone; fall
                            // through and wait for table changes.
                        }
                    }
                }
            } else if info.producer.is_some() {
                // No live copy but we know the producer: ask the runtime
                // to replay lineage (idempotent; the hook deduplicates).
                (services.reconstruct)(object);
            }
        }
        // Block until the table changes, the object seals locally, or a
        // poll interval passes (covers lost notifications and retries).
        crossbeam::channel::select! {
            recv(local_rx) -> msg => {
                if msg.is_ok() {
                    return;
                }
                // Store dropped: node is gone, give up.
                return;
            }
            recv(stream.receiver()) -> msg => {
                match msg {
                    Ok(bytes) => {
                        pending_info = decode_from_slice(&bytes).ok();
                    }
                    Err(_) => return, // control plane gone
                }
            }
            default(Duration::from_millis(20)) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rtml_common::ids::{DriverId, FunctionId};
    use rtml_common::task::ArgSpec;
    use rtml_net::FabricConfig;
    use rtml_store::{StoreConfig, TransferService};

    struct Rig {
        services: SchedServices,
        global_endpoint: rtml_net::Endpoint,
        _transfer: TransferService,
        worker_rx: Receiver<WorkerCommand>,
        worker_id: WorkerId,
        handle: LocalSchedulerHandle,
    }

    fn rig(config: LocalSchedulerConfig) -> Rig {
        rig_with_workers(config, 1)
    }

    fn rig_with_workers(config: LocalSchedulerConfig, n_workers: u32) -> Rig {
        let kv = KvStore::new(2);
        let fabric = Fabric::new(FabricConfig::default());
        let directory = TransferDirectory::new();
        let store = Arc::new(ObjectStore::new(StoreConfig {
            node: config.node,
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let transfer = TransferService::spawn(fabric.clone(), store.clone(), &directory);
        let agent = Arc::new(FetchAgent::spawn(
            fabric.clone(),
            store.clone(),
            directory.clone(),
        ));
        let global_endpoint = fabric.register(NodeId(1000), "fake-global");
        let services = SchedServices {
            kv: kv.clone(),
            objects: ObjectTable::new(kv.clone()),
            tasks: TaskTable::new(kv.clone()),
            events: EventLog::new(kv.clone()),
            fabric,
            directory,
            store,
            agent,
            global_address: global_endpoint.address(),
            reconstruct: Arc::new(|_| {}),
            request_worker: Arc::new(|| {}),
            replicate_hint: Arc::new(|_, _| {}),
        };
        let (worker_tx, worker_rx) = unbounded();
        let worker_id = WorkerId::new(config.node, 0);
        let mut workers = vec![WorkerHandle {
            id: worker_id,
            tx: worker_tx,
        }];
        for i in 1..n_workers {
            let (tx, rx) = unbounded();
            // Extra workers silently discard commands.
            std::thread::spawn(move || while rx.recv().is_ok() {});
            workers.push(WorkerHandle {
                id: WorkerId::new(config.node, i),
                tx,
            });
        }
        let handle = LocalScheduler::spawn(config, services.clone(), workers);
        Rig {
            services,
            global_endpoint,
            _transfer: transfer,
            worker_rx,
            worker_id,
            handle,
        }
    }

    fn spec_with(args: Vec<ArgSpec>, idx: u64) -> TaskSpec {
        let root = TaskId::driver_root(DriverId::from_index(0));
        TaskSpec::simple(root.child(idx), FunctionId::from_name("f"), args)
    }

    fn recv_run(rx: &Receiver<WorkerCommand>) -> TaskSpec {
        match rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker command")
        {
            WorkerCommand::Run(spec) => spec,
            WorkerCommand::Stop => panic!("unexpected stop"),
        }
    }

    #[test]
    fn no_dep_task_dispatches_immediately() {
        let mut r = rig(LocalSchedulerConfig::default());
        let spec = spec_with(vec![], 0);
        r.handle.submit(spec.clone());
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        assert_eq!(
            r.services.tasks.get_state(spec.task_id),
            Some(TaskState::Queued(NodeId(0)))
        );
        r.handle.shutdown();
    }

    #[test]
    fn batch_submit_queues_every_task() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(8.0),
            spill: SpillMode::NeverSpill,
            ..LocalSchedulerConfig::default()
        });
        let specs: Vec<TaskSpec> = (0..6).map(|i| spec_with(vec![], i)).collect();
        r.handle.submit_batch(specs.clone());
        // One worker: the first dispatches, the rest queue.
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, specs[0].task_id);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let all_queued = specs
                .iter()
                .all(|s| matches!(r.services.tasks.get_state(s.task_id), Some(TaskState::Queued(n)) if n == NodeId(0)));
            if all_queued {
                break;
            }
            assert!(Instant::now() < deadline, "batch not fully queued");
            std::thread::sleep(Duration::from_millis(5));
        }
        r.handle.shutdown();
    }

    #[test]
    fn batch_with_dependencies_gates_like_single_submits() {
        let mut r = rig(LocalSchedulerConfig::default());
        let dep = TaskId::driver_root(DriverId::from_index(0))
            .child(99)
            .return_object(0);
        let blocked = spec_with(vec![ArgSpec::ObjectRef(dep)], 0);
        let runnable = spec_with(vec![], 1);
        r.handle
            .submit_batch(vec![blocked.clone(), runnable.clone()]);
        // The dependency-free task dispatches; the gated one waits.
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, runnable.task_id);
        assert!(r.worker_rx.recv_timeout(Duration::from_millis(80)).is_err());
        // Free the worker, then seal the dependency.
        r.handle
            .sender()
            .send(LocalMsg::WorkerDone {
                worker: r.worker_id,
                task: runnable.task_id,
            })
            .unwrap();
        r.services.store.put(dep, Bytes::from_static(b"v")).unwrap();
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, blocked.task_id);
        r.handle.shutdown();
    }

    #[test]
    fn batch_spillover_travels_as_one_frame() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(1.0),
            spill: SpillMode::Hybrid { queue_threshold: 1 },
            ..LocalSchedulerConfig::default()
        });
        let specs: Vec<TaskSpec> = (0..8).map(|i| spec_with(vec![], i)).collect();
        r.handle.submit_batch(specs);
        // The overflow beyond the threshold arrives as one SpillBatch.
        let spilled = loop {
            let d = r
                .global_endpoint
                .receiver()
                .recv_timeout(Duration::from_secs(5))
                .expect("spill batch");
            match decode_from_slice::<SchedWire>(&d.payload).unwrap() {
                SchedWire::SpillBatch(specs) => break specs,
                _ => continue, // loads, node-up
            }
        };
        assert!(spilled.len() > 1, "expected a multi-task spill batch");
        for spec in &spilled {
            assert_eq!(
                r.services.tasks.get_state(spec.task_id),
                Some(TaskState::Spilled)
            );
        }
        r.handle.shutdown();
    }

    #[test]
    fn place_batch_from_global_does_not_respill() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(1.0),
            spill: SpillMode::AlwaysSpill,
            ..LocalSchedulerConfig::default()
        });
        let specs: Vec<TaskSpec> = (0..3).map(|i| spec_with(vec![], i)).collect();
        let place = SchedWire::PlaceBatch {
            specs: specs.clone(),
            hops: 1,
        };
        r.services
            .fabric
            .send(
                r.global_endpoint.address(),
                r.handle.address(),
                encode_to_bytes(&place),
            )
            .unwrap();
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, specs[0].task_id);
        r.handle.shutdown();
    }

    #[test]
    fn dependent_task_waits_for_local_seal() {
        let mut r = rig(LocalSchedulerConfig::default());
        let dep = TaskId::driver_root(DriverId::from_index(0))
            .child(99)
            .return_object(0);
        let spec = spec_with(vec![ArgSpec::ObjectRef(dep)], 0);
        r.handle.submit(spec.clone());
        // Not dispatched while the dependency is missing.
        assert!(r.worker_rx.recv_timeout(Duration::from_millis(80)).is_err());
        // Seal the dependency locally; the seal listener wakes the
        // scheduler.
        r.services.store.put(dep, Bytes::from_static(b"v")).unwrap();
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        r.handle.shutdown();
    }

    #[test]
    fn worker_done_frees_resources_for_next_task() {
        // One worker, 1 CPU: two tasks must run strictly in sequence.
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(1.0),
            ..LocalSchedulerConfig::default()
        });
        let a = spec_with(vec![], 0);
        let b = spec_with(vec![], 1);
        r.handle.submit(a.clone());
        r.handle.submit(b.clone());
        let first = recv_run(&r.worker_rx);
        assert_eq!(first.task_id, a.task_id);
        // Second task must not arrive while the first runs.
        assert!(r.worker_rx.recv_timeout(Duration::from_millis(80)).is_err());
        r.handle
            .sender()
            .send(LocalMsg::WorkerDone {
                worker: r.worker_id,
                task: a.task_id,
            })
            .unwrap();
        let second = recv_run(&r.worker_rx);
        assert_eq!(second.task_id, b.task_id);
        r.handle.shutdown();
    }

    #[test]
    fn infeasible_task_spills_to_global() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(4.0), // no GPU
            ..LocalSchedulerConfig::default()
        });
        let mut spec = spec_with(vec![], 0);
        spec.resources = Resources::gpu(1.0);
        r.handle.submit(spec.clone());
        // The fake global receives the spill.
        let spilled = loop {
            let d = r
                .global_endpoint
                .receiver()
                .recv_timeout(Duration::from_secs(5))
                .expect("spill");
            match decode_from_slice::<SchedWire>(&d.payload).unwrap() {
                SchedWire::Spill(s) => break s,
                _ => continue, // loads, node-up
            }
        };
        assert_eq!(spilled.task_id, spec.task_id);
        assert_eq!(
            r.services.tasks.get_state(spec.task_id),
            Some(TaskState::Spilled)
        );
        r.handle.shutdown();
    }

    #[test]
    fn backlog_past_threshold_spills() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(1.0),
            spill: SpillMode::Hybrid { queue_threshold: 2 },
            ..LocalSchedulerConfig::default()
        });
        // Worker takes the first task; then ready backlog builds.
        for i in 0..8 {
            r.handle.submit(spec_with(vec![], i));
        }
        let mut spills = 0;
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline && spills == 0 {
            if let Ok(d) = r
                .global_endpoint
                .receiver()
                .recv_timeout(Duration::from_millis(200))
            {
                if matches!(
                    decode_from_slice::<SchedWire>(&d.payload),
                    Ok(SchedWire::Spill(_))
                ) {
                    spills += 1;
                }
            }
        }
        assert!(spills > 0, "expected at least one spill");
        r.handle.shutdown();
    }

    #[test]
    fn placement_from_global_does_not_respill() {
        let mut r = rig(LocalSchedulerConfig {
            total_resources: Resources::cpu(1.0),
            spill: SpillMode::AlwaysSpill,
            ..LocalSchedulerConfig::default()
        });
        let spec = spec_with(vec![], 0);
        // Deliver a placement as the global scheduler would.
        let place = SchedWire::Place {
            spec: spec.clone(),
            hops: 1,
        };
        r.services
            .fabric
            .send(
                r.global_endpoint.address(),
                r.handle.address(),
                encode_to_bytes(&place),
            )
            .unwrap();
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        r.handle.shutdown();
    }

    #[test]
    fn first_fit_lets_small_tasks_overtake() {
        let mut r = rig_with_workers(
            LocalSchedulerConfig {
                total_resources: Resources::new(2.0, 0.0).with_custom("slot", 1.0),
                spill: SpillMode::NeverSpill,
                ..LocalSchedulerConfig::default()
            },
            2,
        );
        // Task A consumes the only "slot"; task B (also slot) must wait;
        // task C (cpu only) overtakes B.
        let mut a = spec_with(vec![], 0);
        a.resources = Resources::cpu(1.0).with_custom("slot", 1.0);
        let mut b = spec_with(vec![], 1);
        b.resources = Resources::cpu(1.0).with_custom("slot", 1.0);
        let mut c = spec_with(vec![], 2);
        c.resources = Resources::cpu(1.0);
        r.handle.submit(a.clone());
        // Wait until A occupies the slot (worker 0 receives it).
        let first = recv_run(&r.worker_rx);
        assert_eq!(first.task_id, a.task_id);
        r.handle.submit(b.clone());
        r.handle.submit(c.clone());
        // C dispatches (to the discard worker) even though B is ahead.
        // Give the scheduler a moment, then check the task table.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let b_state = r.services.tasks.get_state(b.task_id);
            let c_queued = r.services.tasks.get_state(c.task_id).is_some();
            if c_queued && matches!(b_state, Some(TaskState::Queued(_))) {
                break;
            }
            assert!(Instant::now() < deadline, "timed out waiting for states");
            std::thread::sleep(Duration::from_millis(5));
        }
        r.handle.shutdown();
    }

    #[test]
    fn remove_worker_marks_running_task_lost() {
        let mut r = rig(LocalSchedulerConfig::default());
        let spec = spec_with(vec![], 0);
        r.handle.submit(spec.clone());
        let _ = recv_run(&r.worker_rx);
        r.handle
            .sender()
            .send(LocalMsg::RemoveWorker(r.worker_id))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if r.services.tasks.get_state(spec.task_id) == Some(TaskState::Lost) {
                break;
            }
            assert!(Instant::now() < deadline, "task never marked lost");
            std::thread::sleep(Duration::from_millis(5));
        }
        r.handle.shutdown();
    }

    #[test]
    fn load_report_published_to_kv() {
        let mut r = rig(LocalSchedulerConfig::default());
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(bytes) = r.services.kv.get(&load_key(NodeId(0))) {
                let report: LoadReport = decode_from_slice(&bytes).unwrap();
                assert_eq!(report.node, NodeId(0));
                assert_eq!(report.total, Resources::cpu(4.0));
                break;
            }
            assert!(Instant::now() < deadline, "no load report");
            std::thread::sleep(Duration::from_millis(5));
        }
        r.handle.shutdown();
    }

    #[test]
    fn resolver_fetches_remote_dependency() {
        // Node 0 scheduler; dependency lives on node 7's store.
        let kv = KvStore::new(2);
        let fabric = Fabric::new(FabricConfig::default());
        let directory = TransferDirectory::new();
        let store0 = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let store7 = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(7),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let _t0 = TransferService::spawn(fabric.clone(), store0.clone(), &directory);
        let _t7 = TransferService::spawn(fabric.clone(), store7.clone(), &directory);
        let agent = Arc::new(FetchAgent::spawn(
            fabric.clone(),
            store0.clone(),
            directory.clone(),
        ));
        let global = fabric.register(NodeId(1000), "fake-global");
        let objects = ObjectTable::new(kv.clone());
        let services = SchedServices {
            kv: kv.clone(),
            objects: objects.clone(),
            tasks: TaskTable::new(kv.clone()),
            events: EventLog::new(kv.clone()),
            fabric,
            directory,
            store: store0.clone(),
            agent,
            global_address: global.address(),
            reconstruct: Arc::new(|_| {}),
            request_worker: Arc::new(|| {}),
            replicate_hint: Arc::new(|_, _| {}),
        };
        let (worker_tx, worker_rx) = unbounded();
        let mut handle = LocalScheduler::spawn(
            LocalSchedulerConfig::default(),
            services,
            vec![WorkerHandle {
                id: WorkerId::new(NodeId(0), 0),
                tx: worker_tx,
            }],
        );

        let dep = TaskId::driver_root(DriverId::from_index(0))
            .child(50)
            .return_object(0);
        store7.put(dep, Bytes::from_static(b"remote")).unwrap();
        objects.add_location(dep, NodeId(7), 6);

        let spec = spec_with(vec![ArgSpec::ObjectRef(dep)], 0);
        handle.submit(spec.clone());
        let got = recv_run(&worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        // The object must now be local and the table updated.
        assert!(store0.contains(dep));
        let info = objects.get(dep).unwrap();
        assert!(info.locations.contains(&NodeId(0)));
        handle.shutdown();
    }

    struct RemoteDepRig {
        services: SchedServices,
        store_local: Arc<ObjectStore>,
        store_remote: Arc<ObjectStore>,
        remote_service: TransferService,
        worker_rx: Receiver<WorkerCommand>,
        worker_id: WorkerId,
        handle: LocalSchedulerHandle,
        _local_service: TransferService,
        _global: rtml_net::Endpoint,
    }

    /// A node-0 scheduler plus a remote node-7 store holding
    /// dependencies, with configurable prefetch and local capacity.
    fn remote_dep_rig(prefetch: bool, local_capacity: u64) -> RemoteDepRig {
        let kv = KvStore::new(2);
        let fabric = Fabric::new(FabricConfig::default());
        let directory = TransferDirectory::new();
        let store_local = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: local_capacity,
            ..StoreConfig::default()
        }));
        let store_remote = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(7),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let local_service = TransferService::spawn(fabric.clone(), store_local.clone(), &directory);
        let remote_service =
            TransferService::spawn(fabric.clone(), store_remote.clone(), &directory);
        let agent = Arc::new(FetchAgent::spawn(
            fabric.clone(),
            store_local.clone(),
            directory.clone(),
        ));
        let global = fabric.register(NodeId(1000), "fake-global");
        let services = SchedServices {
            kv: kv.clone(),
            objects: ObjectTable::new(kv.clone()),
            tasks: TaskTable::new(kv.clone()),
            events: EventLog::new(kv.clone()),
            fabric,
            directory,
            store: store_local.clone(),
            agent,
            global_address: global.address(),
            reconstruct: Arc::new(|_| {}),
            request_worker: Arc::new(|| {}),
            replicate_hint: Arc::new(|_, _| {}),
        };
        let (worker_tx, worker_rx) = unbounded();
        let worker_id = WorkerId::new(NodeId(0), 0);
        let handle = LocalScheduler::spawn(
            LocalSchedulerConfig {
                prefetch,
                ..LocalSchedulerConfig::default()
            },
            services.clone(),
            vec![WorkerHandle {
                id: worker_id,
                tx: worker_tx,
            }],
        );
        RemoteDepRig {
            services,
            store_local,
            store_remote,
            remote_service,
            worker_rx,
            worker_id,
            handle,
            _local_service: local_service,
            _global: global,
        }
    }

    #[test]
    fn prefetch_coalesces_batch_dependencies_into_one_request() {
        let mut r = remote_dep_rig(true, 1 << 20);
        let deps: Vec<ObjectId> = (0..8)
            .map(|i| {
                TaskId::driver_root(DriverId::from_index(0))
                    .child(100 + i)
                    .return_object(0)
            })
            .collect();
        for (i, &dep) in deps.iter().enumerate() {
            r.store_remote
                .put(dep, Bytes::from(vec![i as u8; 32]))
                .unwrap();
            r.services.objects.add_location(dep, NodeId(7), 32);
        }
        let args: Vec<ArgSpec> = deps.iter().map(|d| ArgSpec::ObjectRef(*d)).collect();
        let spec = spec_with(args, 0);
        r.handle.submit(spec.clone());
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        // All 8 dependencies crossed as ONE coalesced request frame.
        assert_eq!(r.remote_service.stats().requests.get(), 1);
        assert_eq!(r.remote_service.stats().objects_served.get(), 8);
        for dep in &deps {
            assert!(r.store_local.contains(*dep));
        }
        r.handle.shutdown();
    }

    #[test]
    fn prefetch_off_falls_back_to_per_object_watchers() {
        let mut r = remote_dep_rig(false, 1 << 20);
        let deps: Vec<ObjectId> = (0..4)
            .map(|i| {
                TaskId::driver_root(DriverId::from_index(0))
                    .child(200 + i)
                    .return_object(0)
            })
            .collect();
        for &dep in &deps {
            r.store_remote.put(dep, Bytes::from(vec![1u8; 16])).unwrap();
            r.services.objects.add_location(dep, NodeId(7), 16);
        }
        let args: Vec<ArgSpec> = deps.iter().map(|d| ArgSpec::ObjectRef(*d)).collect();
        let spec = spec_with(args, 0);
        r.handle.submit(spec.clone());
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        // The reactive baseline pays one request frame per object.
        assert_eq!(r.remote_service.stats().requests.get(), 4);
        r.handle.shutdown();
    }

    #[test]
    fn prefetch_admission_guard_skips_objects_beyond_unpinned_capacity() {
        // Store: 256 bytes, 200 of them pinned (a running task's
        // argument). A 64-byte remote dependency does not fit in the
        // 56-byte unpinned headroom: prefetch must skip it (counted),
        // and the reactive watcher must still deliver the task once the
        // pin releases — the guard defers bytes, never work.
        let mut r = remote_dep_rig(true, 256);
        let resident = TaskId::driver_root(DriverId::from_index(0))
            .child(400)
            .return_object(0);
        r.store_local
            .put(resident, Bytes::from(vec![1u8; 200]))
            .unwrap();
        assert!(r.store_local.pin(resident));

        let dep = TaskId::driver_root(DriverId::from_index(0))
            .child(401)
            .return_object(0);
        r.store_remote.put(dep, Bytes::from(vec![9u8; 64])).unwrap();
        r.services.objects.add_location(dep, NodeId(7), 64);
        let spec = spec_with(vec![ArgSpec::ObjectRef(dep)], 0);
        r.handle.submit(spec.clone());

        let deadline = Instant::now() + Duration::from_secs(5);
        while r.handle.stats().prefetch_skipped_capacity.get() == 0 {
            assert!(Instant::now() < deadline, "skip never counted");
            std::thread::sleep(Duration::from_millis(2));
        }
        // No PrefetchIssued event for the skipped object.
        let issued = r
            .services
            .events
            .read_all()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PrefetchIssued { .. }))
            .count();
        assert_eq!(issued, 0);
        // While the headroom is missing, no bytes move at all: the
        // watcher waits instead of fetch-and-fail-the-put hammering.
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(r.remote_service.stats().requests.get(), 0);
        // Free the headroom: the watcher path resolves and the task runs.
        r.store_local.unpin(resident);
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        assert!(r.store_local.contains(dep));
        // Exactly one transfer crossed the wire for the dependency.
        assert_eq!(r.remote_service.stats().requests.get(), 1);
        r.handle.shutdown();
    }

    #[test]
    fn arrived_dependencies_stay_pinned_until_task_completes() {
        // Local store fits ~4 x 64B. The fetched dependency must survive
        // eviction pressure while its task is queued/running, and become
        // evictable once the task completes.
        let mut r = remote_dep_rig(true, 256);
        let dep = TaskId::driver_root(DriverId::from_index(0))
            .child(300)
            .return_object(0);
        r.store_remote.put(dep, Bytes::from(vec![9u8; 64])).unwrap();
        r.services.objects.add_location(dep, NodeId(7), 64);
        let spec = spec_with(vec![ArgSpec::ObjectRef(dep)], 0);
        r.handle.submit(spec.clone());
        let got = recv_run(&r.worker_rx);
        assert_eq!(got.task_id, spec.task_id);
        // The task is running; its argument is pinned. A put that would
        // need the whole store must fail rather than evict it.
        let filler = |i: u64| {
            TaskId::driver_root(DriverId::from_index(9))
                .child(i)
                .return_object(0)
        };
        let err = r
            .store_local
            .put(filler(0), Bytes::from(vec![0u8; 250]))
            .unwrap_err();
        assert!(matches!(err, rtml_common::error::Error::StoreFull { .. }));
        assert!(r.store_local.contains(dep), "pinned argument was evicted");
        // Completion releases the pin; now the same put evicts it.
        r.handle
            .sender()
            .send(LocalMsg::WorkerDone {
                worker: r.worker_id,
                task: spec.task_id,
            })
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if r.store_local
                .put(filler(1), Bytes::from(vec![0u8; 250]))
                .is_ok()
            {
                break;
            }
            assert!(Instant::now() < deadline, "pin never released");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!r.store_local.contains(dep));
        r.handle.shutdown();
    }

    #[test]
    fn resolver_triggers_reconstruction_for_lost_object() {
        let kv = KvStore::new(2);
        let fabric = Fabric::new(FabricConfig::default());
        let directory = TransferDirectory::new();
        let store = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let _t = TransferService::spawn(fabric.clone(), store.clone(), &directory);
        let agent = Arc::new(FetchAgent::spawn(
            fabric.clone(),
            store.clone(),
            directory.clone(),
        ));
        let global = fabric.register(NodeId(1000), "fake-global");
        let objects = ObjectTable::new(kv.clone());
        let (hook_tx, hook_rx) = unbounded();
        let services = SchedServices {
            kv: kv.clone(),
            objects: objects.clone(),
            tasks: TaskTable::new(kv.clone()),
            events: EventLog::new(kv.clone()),
            fabric,
            directory,
            store,
            agent,
            global_address: global.address(),
            reconstruct: Arc::new(move |obj| {
                let _ = hook_tx.send(obj);
            }),
            request_worker: Arc::new(|| {}),
            replicate_hint: Arc::new(|_, _| {}),
        };
        let (worker_tx, _worker_rx) = unbounded();
        let mut handle = LocalScheduler::spawn(
            LocalSchedulerConfig::default(),
            services,
            vec![WorkerHandle {
                id: WorkerId::new(NodeId(0), 0),
                tx: worker_tx,
            }],
        );

        // A dependency whose producer is known but which has no copies.
        let root = TaskId::driver_root(DriverId::from_index(0));
        let producer = root.child(77);
        let dep = producer.return_object(0);
        objects.declare(dep, Some(producer));

        handle.submit(spec_with(vec![ArgSpec::ObjectRef(dep)], 0));
        let asked = hook_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(asked, dep);
        handle.shutdown();
    }
}
