//! Spillover policies: when does a local scheduler hand a task to the
//! global scheduler?
//!
//! The paper (§3.2.2): "Workers submit tasks to their local schedulers
//! which decide to either assign the tasks to other workers on the same
//! physical node or to 'spill over' the tasks to a global scheduler."
//! The decision rule is the knob experiment E8 turns: always spilling
//! recovers a fully-centralized scheduler (the Dask/CIEL architecture the
//! paper critiques); never spilling is pure node-local execution; the
//! hybrid threshold is the paper's proposal.

use rtml_common::resources::Resources;
use rtml_common::task::TaskSpec;

/// The spillover decision rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpillMode {
    /// Spill when the local backlog of runnable tasks exceeds
    /// `queue_threshold` (the paper's hybrid design).
    Hybrid {
        /// Maximum runnable backlog kept locally.
        queue_threshold: usize,
    },
    /// Spill every task: a fully-centralized scheduler (baseline for E8).
    AlwaysSpill,
    /// Keep every feasible task local: no load sharing (baseline for E8).
    NeverSpill,
}

impl Default for SpillMode {
    fn default() -> Self {
        SpillMode::Hybrid { queue_threshold: 8 }
    }
}

impl SpillMode {
    /// Decides whether `spec` should spill to the global scheduler.
    ///
    /// Regardless of mode, a task whose demand can **never** be satisfied
    /// by this node (demand exceeds total capacity, e.g. a GPU task on a
    /// CPU-only node) must spill — only the global scheduler can see a
    /// node that fits it (R4 heterogeneity).
    pub fn should_spill(
        &self,
        spec: &TaskSpec,
        ready_backlog: usize,
        node_total: &Resources,
    ) -> bool {
        if !node_total.fits(&spec.resources) {
            return true;
        }
        match self {
            SpillMode::Hybrid { queue_threshold } => ready_backlog > *queue_threshold,
            SpillMode::AlwaysSpill => true,
            SpillMode::NeverSpill => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::ids::{DriverId, FunctionId, TaskId};

    fn spec(resources: Resources) -> TaskSpec {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let mut s = TaskSpec::simple(root.child(0), FunctionId::from_name("f"), vec![]);
        s.resources = resources;
        s
    }

    #[test]
    fn infeasible_always_spills() {
        let node = Resources::cpu(4.0); // no GPU
        let gpu_task = spec(Resources::gpu(1.0));
        for mode in [
            SpillMode::Hybrid {
                queue_threshold: 100,
            },
            SpillMode::AlwaysSpill,
            SpillMode::NeverSpill,
        ] {
            assert!(mode.should_spill(&gpu_task, 0, &node), "{mode:?}");
        }
    }

    #[test]
    fn hybrid_spills_past_threshold() {
        let node = Resources::cpu(4.0);
        let task = spec(Resources::cpu(1.0));
        let mode = SpillMode::Hybrid { queue_threshold: 3 };
        assert!(!mode.should_spill(&task, 0, &node));
        assert!(!mode.should_spill(&task, 3, &node));
        assert!(mode.should_spill(&task, 4, &node));
    }

    #[test]
    fn always_spill_spills_feasible_tasks() {
        let node = Resources::cpu(4.0);
        let task = spec(Resources::cpu(1.0));
        assert!(SpillMode::AlwaysSpill.should_spill(&task, 0, &node));
    }

    #[test]
    fn never_spill_keeps_feasible_tasks() {
        let node = Resources::cpu(4.0);
        let task = spec(Resources::cpu(1.0));
        assert!(!SpillMode::NeverSpill.should_spill(&task, 10_000, &node));
    }

    #[test]
    fn default_is_hybrid() {
        assert_eq!(
            SpillMode::default(),
            SpillMode::Hybrid { queue_threshold: 8 }
        );
    }
}
