//! The per-node in-memory object store (paper Figure 3, "Object Store /
//! Shared Memory").
//!
//! Every node runs one store. Workers on the node share it through an
//! `Arc`, and because sealed objects are immutable [`bytes::Bytes`],
//! handing an object to a worker is a reference-count bump — the
//! in-process equivalent of the paper's shared-memory segment.
//!
//! Semantics:
//!
//! - Objects are **immutable once sealed** ([`ObjectStore::put`] inserts a
//!   sealed object; double-puts of identical bytes are idempotent, which
//!   is exactly what lineage replay produces).
//! - Blocked readers ([`ObjectStore::wait_local`]) are woken by seals.
//! - The store is **capacity-bounded**; puts evict least-recently-used,
//!   unpinned objects. Evicted objects are not gone from the system: the
//!   object table keeps their lineage so they can be reconstructed
//!   (`rtml-runtime`) — the paper's answer to bounded memory.
//! - Arguments of running tasks are **pinned** so the scheduler's
//!   placement decisions stay valid while the task runs.
//!
//! Cross-node movement lives in [`transfer`]: a per-node
//! [`transfer::TransferService`] answers object requests over the
//! simulated fabric — chunking large objects into size-capped frames
//! ([`StoreConfig::chunk_bytes`]) and coalescing multi-object requests
//! into one reply stream — while a per-node [`transfer::FetchAgent`]
//! issues requests from one persistent endpoint, reassembles chunks,
//! and single-flights concurrent fetches of the same object. The
//! standalone [`transfer::fetch_object`] remains for one-shot use.
//!
//! Hot objects are handled by [`replicate`], the replication plane: the
//! transfer service counts per-object remote-read demand, and a
//! per-node [`replicate::ReplicationAgent`] pulls objects past a
//! configurable threshold onto additional holders so reads spread
//! instead of funnelling to the producer. Replica copies are
//! second-class for eviction ([`ObjectStore::mark_replica`]): dropped
//! before sole copies, never preferentially dropped when they are the
//! last sealed copy ([`ObjectStore::set_replica_probe`]).

pub mod replicate;
pub mod store;
pub mod transfer;

pub use replicate::{
    ReplicaView, ReplicationAgent, ReplicationHooks, ReplicationPolicy, ReplicationStats,
    SweepReport,
};
pub use store::{
    ObjectStore, PutOutcome, ReplicaProbe, StoreConfig, StoreStats, DEFAULT_CHUNK_BYTES,
};
pub use transfer::{
    fetch_object, FetchAgent, FetchStats, TransferDirectory, TransferService, TransferStats,
};
