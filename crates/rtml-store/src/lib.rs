//! The per-node in-memory object store (paper Figure 3, "Object Store /
//! Shared Memory").
//!
//! Every node runs one store. Workers on the node share it through an
//! `Arc`, and because sealed objects are immutable [`bytes::Bytes`],
//! handing an object to a worker is a reference-count bump — the
//! in-process equivalent of the paper's shared-memory segment.
//!
//! Semantics:
//!
//! - Objects are **immutable once sealed** ([`ObjectStore::put`] inserts a
//!   sealed object; double-puts of identical bytes are idempotent, which
//!   is exactly what lineage replay produces).
//! - Blocked readers ([`ObjectStore::wait_local`]) are woken by seals.
//! - The store is **capacity-bounded**; puts evict least-recently-used,
//!   unpinned objects. Evicted objects are not gone from the system: the
//!   object table keeps their lineage so they can be reconstructed
//!   (`rtml-runtime`) — the paper's answer to bounded memory.
//! - Arguments of running tasks are **pinned** so the scheduler's
//!   placement decisions stay valid while the task runs.
//!
//! Cross-node movement lives in [`transfer`]: a per-node
//! [`transfer::TransferService`] answers object requests over the
//! simulated fabric, and [`transfer::fetch_object`] pulls a remote object
//! into the local store, paying the fabric's latency/bandwidth costs.

pub mod store;
pub mod transfer;

pub use store::{ObjectStore, PutOutcome, StoreConfig, StoreStats};
pub use transfer::{fetch_object, TransferDirectory, TransferService};
