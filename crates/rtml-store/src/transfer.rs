//! Cross-node object transfer over the simulated fabric — the batched,
//! pipelined data plane.
//!
//! Each node runs two persistent components:
//!
//! - a [`TransferService`] (server side) that answers object requests
//!   from its local store, **chunking** large objects into size-capped
//!   frames ([`crate::StoreConfig::chunk_bytes`]) streamed through the
//!   fabric's bandwidth model, and **coalescing** a request for K
//!   objects into one reply stream;
//! - a [`FetchAgent`] (client side) with one persistent reply endpoint
//!   for the node's entire lifetime. [`FetchAgent::fetch_many`] groups K
//!   objects into a single request frame per holder and
//!   **single-flights** concurrent fetches of the same object: the
//!   second caller waits on the in-flight transfer instead of issuing a
//!   duplicate.
//!
//! The wire protocol is three message types, encoded with the rtml
//! codec: `Request { objects, reply_to }`, `Chunk { object, index,
//! total, payload }`, and `Missing { object }`. A response to a
//! K-object request is one [`rtml_net::Fabric::send_chunks`] stream:
//! a single propagation-delay sample plus the bandwidth term for the
//! total size, delivered as ⌈size/chunk⌉ frames per object and
//! reassembled at the receiver.
//!
//! [`fetch_object`] remains as the standalone one-shot form (tests,
//! benches): it registers an ephemeral reply endpoint whose
//! registration is scoped to an RAII guard, so it cannot leak on any
//! exit path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};

use rtml_common::codec::{decode_from_slice, encode_to_bytes, Codec, Reader, Writer};
use rtml_common::error::{Error, Result};
use rtml_common::ids::{NodeId, ObjectId};
use rtml_common::metrics::Counter;
use rtml_net::{Fabric, NetAddress};

use crate::store::{ObjectStore, PutOutcome};

/// Transfer wire messages.
#[derive(Clone, Debug, PartialEq, Eq)]
enum TransferMsg {
    /// "Send me these objects; reply to this address." K objects from
    /// one holder travel as one request frame.
    Request {
        objects: Vec<ObjectId>,
        reply_to: u64,
    },
    /// One size-capped piece of an object's payload. `total` is the
    /// number of chunks the object was split into; the receiver
    /// reassembles once all have arrived.
    Chunk {
        object: ObjectId,
        index: u32,
        total: u32,
        payload: Bytes,
    },
    /// The holder no longer has the object (evicted or crashed between
    /// lookup and request).
    Missing { object: ObjectId },
}

impl Codec for TransferMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            TransferMsg::Request { objects, reply_to } => {
                w.put_u8(0);
                objects.encode(w);
                w.put_u64(*reply_to);
            }
            TransferMsg::Chunk {
                object,
                index,
                total,
                payload,
            } => {
                w.put_u8(1);
                object.encode(w);
                w.put_u32(*index);
                w.put_u32(*total);
                payload.encode(w);
            }
            TransferMsg::Missing { object } => {
                w.put_u8(2);
                object.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            0 => TransferMsg::Request {
                objects: Vec::<ObjectId>::decode(r)?,
                reply_to: r.take_u64()?,
            },
            1 => TransferMsg::Chunk {
                object: ObjectId::decode(r)?,
                index: r.take_u32()?,
                total: r.take_u32()?,
                payload: Bytes::decode(r)?,
            },
            2 => TransferMsg::Missing {
                object: ObjectId::decode(r)?,
            },
            other => return Err(Error::Codec(format!("invalid TransferMsg tag {other}"))),
        })
    }
}

/// Encodes a `TransferMsg::Chunk` frame directly from a payload slice,
/// skipping the intermediate `Bytes` a literal `TransferMsg` value would
/// force (one memcpy instead of two on the serving hot path). Must stay
/// byte-identical to `TransferMsg::Chunk`'s `Codec::encode`; a test
/// asserts the equivalence.
fn encode_chunk_frame(object: ObjectId, index: u32, total: u32, payload: &[u8]) -> Bytes {
    // Tag + object id + two u32s + varint length prefix.
    let mut w = Writer::with_capacity(1 + 16 + 4 + 4 + 10 + payload.len());
    w.put_u8(1);
    object.encode(&mut w);
    w.put_u32(index);
    w.put_u32(total);
    w.put_bytes(payload);
    w.into_bytes()
}

/// Maps each node to its transfer-service fabric address. Shared by all
/// nodes; populated during cluster construction.
#[derive(Default)]
pub struct TransferDirectory {
    map: RwLock<HashMap<NodeId, NetAddress>>,
}

impl TransferDirectory {
    /// Creates an empty directory.
    pub fn new() -> Arc<Self> {
        Arc::new(TransferDirectory::default())
    }

    /// Records `node`'s transfer service address.
    pub fn insert(&self, node: NodeId, address: NetAddress) {
        self.map.write().insert(node, address);
    }

    /// Looks up `node`'s transfer service address.
    pub fn lookup(&self, node: NodeId) -> Option<NetAddress> {
        self.map.read().get(&node).copied()
    }

    /// Removes a node (when it is killed).
    pub fn remove(&self, node: NodeId) {
        self.map.write().remove(&node);
    }
}

/// Server-side transfer counters, one set per [`TransferService`].
#[derive(Debug, Default)]
pub struct TransferStats {
    /// Request frames served (each may name many objects).
    pub requests: Counter,
    /// Objects served (payload found and streamed back).
    pub objects_served: Counter,
    /// Requested objects the store no longer had.
    pub misses: Counter,
    /// Undecodable or misrouted frames received.
    pub decode_errors: Counter,
    /// Reply streams the fabric refused (requester gone).
    pub send_failures: Counter,
    /// Chunk frames emitted.
    pub chunks_sent: Counter,
    /// Whether per-object demand tracking is on. Enabled by the
    /// replication plane; off by default so nodes without a
    /// [`crate::replicate::ReplicationAgent`] never grow the map.
    demand_enabled: std::sync::atomic::AtomicBool,
    /// Per-object remote-read demand accumulated since the last
    /// [`TransferStats::drain_demand`]. Fed by the serve loop (one unit
    /// per object served) and by scheduler hints that restore the
    /// fan-in a coalesced/single-flighted request hides.
    demand: Mutex<HashMap<ObjectId, u64>>,
}

impl TransferStats {
    /// Turns on per-object demand tracking (idempotent).
    pub fn enable_demand_tracking(&self) {
        self.demand_enabled
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether demand tracking is currently on.
    pub fn demand_tracking_enabled(&self) -> bool {
        self.demand_enabled
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// Records one remote read of `object` (serve-loop path).
    fn record_read(&self, object: ObjectId) {
        self.record_demand(object, 1);
    }

    /// Adds `weight` units of remote-read demand for `object`. Weights
    /// above one come from the scheduler: a coalesced prefetch issues
    /// one request frame on behalf of many waiting tasks, so the hint
    /// restores the fan-in the wire no longer shows.
    pub fn record_demand(&self, object: ObjectId, weight: u64) {
        if weight == 0 || !self.demand_tracking_enabled() {
            return;
        }
        *self.demand.lock().entry(object).or_insert(0) += weight;
    }

    /// Takes and clears the accumulated per-object demand, sorted by
    /// object id for deterministic sweep order.
    pub fn drain_demand(&self) -> Vec<(ObjectId, u64)> {
        let drained: HashMap<ObjectId, u64> = std::mem::take(&mut *self.demand.lock());
        let mut out: Vec<(ObjectId, u64)> = drained.into_iter().collect();
        out.sort();
        out
    }

    /// Current (undrained) demand for one object; test and tooling aid.
    pub fn demand_of(&self, object: ObjectId) -> u64 {
        self.demand.lock().get(&object).copied().unwrap_or(0)
    }
}

/// Per-node server answering transfer requests from the local store.
pub struct TransferService {
    handle: Option<std::thread::JoinHandle<()>>,
    address: NetAddress,
    fabric: Arc<Fabric>,
    stats: Arc<TransferStats>,
}

impl TransferService {
    /// Spawns the service thread for `store` and registers it in
    /// `directory`.
    pub fn spawn(
        fabric: Arc<Fabric>,
        store: Arc<ObjectStore>,
        directory: &TransferDirectory,
    ) -> TransferService {
        let node = store.node();
        let endpoint = fabric.register(node, "transfer");
        let address = endpoint.address();
        directory.insert(node, address);
        let stats = Arc::new(TransferStats::default());
        let stats2 = stats.clone();
        let fabric2 = fabric.clone();
        let handle = std::thread::Builder::new()
            .name(format!("rtml-transfer-{node}"))
            .spawn(move || {
                while let Ok(delivery) = endpoint.receiver().recv() {
                    let msg = match decode_from_slice::<TransferMsg>(&delivery.payload) {
                        Ok(msg) => msg,
                        Err(_) => {
                            stats2.decode_errors.inc();
                            continue;
                        }
                    };
                    let TransferMsg::Request { objects, reply_to } = msg else {
                        // Chunk/Missing frames belong to agents, not
                        // services; count the misroute rather than
                        // dropping it silently.
                        stats2.decode_errors.inc();
                        continue;
                    };
                    stats2.requests.inc();
                    let chunk_bytes = store.chunk_bytes() as usize;
                    // One reply stream for the whole request: all chunks
                    // of all objects share a single propagation-delay
                    // sample and pay bandwidth on their total size.
                    let mut frames = Vec::new();
                    for object in objects {
                        // Pin across lookup + snapshot so a concurrent
                        // put's LRU sweep cannot evict the object
                        // between "decide to serve" and "copy bytes".
                        let pinned = store.pin(object);
                        match store.get(object) {
                            Some(data) => {
                                stats2.objects_served.inc();
                                stats2.record_read(object);
                                let data = data.as_slice();
                                let total = (data.len().div_ceil(chunk_bytes)).max(1) as u32;
                                for index in 0..total {
                                    let a = index as usize * chunk_bytes;
                                    let b = (a + chunk_bytes).min(data.len());
                                    frames.push(encode_chunk_frame(
                                        object,
                                        index,
                                        total,
                                        &data[a..b],
                                    ));
                                    stats2.chunks_sent.inc();
                                }
                            }
                            None => {
                                stats2.misses.inc();
                                frames.push(encode_to_bytes(&TransferMsg::Missing { object }));
                            }
                        }
                        if pinned {
                            store.unpin(object);
                        }
                    }
                    if fabric2
                        .send_chunks(address, NetAddress::from_u64(reply_to), frames)
                        .is_err()
                    {
                        stats2.send_failures.inc();
                    }
                }
            })
            .expect("spawn transfer service");
        TransferService {
            handle: Some(handle),
            address,
            fabric,
            stats,
        }
    }

    /// The service's fabric address.
    pub fn address(&self) -> NetAddress {
        self.address
    }

    /// The service's counters (shared with its thread).
    pub fn stats(&self) -> &Arc<TransferStats> {
        &self.stats
    }

    /// Stops the service (unregisters its endpoint; the thread exits when
    /// its mailbox closes).
    pub fn shutdown(&mut self) {
        self.fabric.unregister(self.address);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TransferService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Client-side transfer counters, one set per [`FetchAgent`].
#[derive(Debug, Default)]
pub struct FetchStats {
    /// Distinct transfers started (one per object actually requested).
    pub transfers: Counter,
    /// Request frames sent (each may name many objects).
    pub requests_sent: Counter,
    /// Fetches answered by joining an in-flight transfer instead of
    /// issuing a duplicate request.
    pub duplicates_suppressed: Counter,
    /// Chunk frames received.
    pub chunks_received: Counter,
    /// Objects fully reassembled and sealed locally.
    pub objects_fetched: Counter,
    /// `Missing` answers (holder no longer had the object).
    pub misses: Counter,
    /// Waits that gave up before the transfer completed.
    pub timeouts: Counter,
    /// Undecodable or misrouted frames received.
    pub decode_errors: Counter,
}

/// How long an unsolicited (orphan) reassembly buffer is retained.
const ORPHAN_TTL: Duration = Duration::from_secs(5);

struct InFlight {
    waiters: Vec<Sender<Result<(Bytes, PutOutcome)>>>,
    chunks: Vec<Option<Bytes>>,
    received: u32,
    expires_at: Instant,
}

struct AgentInner {
    fabric: Arc<Fabric>,
    store: Arc<ObjectStore>,
    directory: Arc<TransferDirectory>,
    address: NetAddress,
    in_flight: Mutex<HashMap<ObjectId, InFlight>>,
    stats: FetchStats,
}

/// Per-node fetch client: one persistent reply endpoint, coalesced
/// multi-object requests, chunk reassembly, and single-flighted
/// concurrent fetches. This replaces the ephemeral-endpoint-per-fetch
/// protocol: steady-state fetching registers **zero** new fabric
/// endpoints.
pub struct FetchAgent {
    inner: Arc<AgentInner>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl FetchAgent {
    /// Spawns the agent's receive thread for `store`.
    pub fn spawn(
        fabric: Arc<Fabric>,
        store: Arc<ObjectStore>,
        directory: Arc<TransferDirectory>,
    ) -> FetchAgent {
        let node = store.node();
        let endpoint = fabric.register(node, "fetch-agent");
        let inner = Arc::new(AgentInner {
            address: endpoint.address(),
            fabric,
            store,
            directory,
            in_flight: Mutex::new(HashMap::new()),
            stats: FetchStats::default(),
        });
        let inner2 = inner.clone();
        let handle = std::thread::Builder::new()
            .name(format!("rtml-fetch-{node}"))
            .spawn(move || agent_loop(inner2, endpoint))
            .expect("spawn fetch agent");
        FetchAgent {
            inner,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// The agent's counters.
    pub fn stats(&self) -> &FetchStats {
        &self.inner.stats
    }

    /// The agent's persistent reply address.
    pub fn address(&self) -> NetAddress {
        self.inner.address
    }

    /// Number of transfers currently tracked (in flight, or stranded and
    /// awaiting the reap in the next `fetch_many`).
    pub fn in_flight_len(&self) -> usize {
        self.inner.in_flight.lock().len()
    }

    /// Pulls one object from `holder` into the local store; see
    /// [`FetchAgent::fetch_many`].
    pub fn fetch_one(
        &self,
        object: ObjectId,
        holder: NodeId,
        timeout: Duration,
    ) -> Result<(Bytes, PutOutcome)> {
        self.fetch_many(&[object], holder, timeout)
            .pop()
            .expect("one object in, one result out")
    }

    /// Pulls `objects` from `holder` into the local store, blocking up
    /// to `timeout`. Returns one result per input position, in order.
    ///
    /// All objects that actually need requesting travel as **one**
    /// request frame; the holder answers with one chunked reply stream.
    /// Objects already local resolve immediately; objects already in
    /// flight (from any caller on this node) join the existing transfer
    /// instead of issuing a duplicate.
    pub fn fetch_many(
        &self,
        objects: &[ObjectId],
        holder: NodeId,
        timeout: Duration,
    ) -> Vec<Result<(Bytes, PutOutcome)>> {
        let inner = &self.inner;
        let Some(remote) = inner.directory.lookup(holder) else {
            return objects
                .iter()
                .map(|_| Err(Error::NodeDown(holder)))
                .collect();
        };
        let deadline = Instant::now() + timeout;
        let mut results: Vec<Option<Result<(Bytes, PutOutcome)>>> = vec![None; objects.len()];
        let mut receivers: Vec<Option<Receiver<Result<(Bytes, PutOutcome)>>>> =
            Vec::with_capacity(objects.len());
        receivers.resize_with(objects.len(), || None);
        let mut to_request: Vec<ObjectId> = Vec::new();
        let mut requested: HashSet<ObjectId> = HashSet::new();
        {
            let mut fl = inner.in_flight.lock();
            let now = Instant::now();
            // Reap transfers that died without an answer (holder gone
            // mid-stream, dropped partition traffic): entries past their
            // deadline plus a grace period will never complete, and
            // nothing else removes them once their waiters time out.
            fl.retain(|_, entry| now < entry.expires_at + ORPHAN_TTL);
            for (i, &object) in objects.iter().enumerate() {
                if let Some(bytes) = inner.store.get(object) {
                    results[i] = Some(Ok((
                        bytes,
                        PutOutcome {
                            inserted: false,
                            evicted: Vec::new(),
                        },
                    )));
                    continue;
                }
                let (tx, rx) = unbounded();
                match fl.get_mut(&object) {
                    Some(entry) if entry.expires_at > now => {
                        // Single flight: join the in-flight transfer.
                        entry.waiters.push(tx);
                        inner.stats.duplicates_suppressed.inc();
                    }
                    Some(entry) => {
                        // The previous request apparently got lost
                        // (partition, dead holder): refresh and
                        // re-request, keeping earlier waiters attached.
                        entry.waiters.push(tx);
                        entry.expires_at = deadline;
                        if requested.insert(object) {
                            to_request.push(object);
                        }
                    }
                    None => {
                        fl.insert(
                            object,
                            InFlight {
                                waiters: vec![tx],
                                chunks: Vec::new(),
                                received: 0,
                                expires_at: deadline,
                            },
                        );
                        if requested.insert(object) {
                            to_request.push(object);
                        }
                        inner.stats.transfers.inc();
                    }
                }
                receivers[i] = Some(rx);
            }
        }

        if !to_request.is_empty() {
            inner.stats.requests_sent.inc();
            let request = TransferMsg::Request {
                objects: to_request.clone(),
                reply_to: inner.address.as_u64(),
            };
            if inner
                .fabric
                .send(inner.address, remote, encode_to_bytes(&request))
                .is_err()
            {
                // The holder's endpoint is gone: fail everything we just
                // put in flight toward it.
                let mut fl = inner.in_flight.lock();
                for object in to_request {
                    if let Some(entry) = fl.remove(&object) {
                        for w in entry.waiters {
                            let _ = w.send(Err(Error::NodeDown(holder)));
                        }
                    }
                }
            }
        }

        for (i, rx) in receivers.into_iter().enumerate() {
            let Some(rx) = rx else { continue };
            let remaining = deadline.saturating_duration_since(Instant::now());
            results[i] = Some(match rx.recv_timeout(remaining) {
                Ok(result) => result,
                Err(_) => {
                    inner.stats.timeouts.inc();
                    Err(Error::Timeout)
                }
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("every position filled"))
            .collect()
    }

    /// Stops the agent (unregisters its endpoint and joins the thread).
    pub fn shutdown(&self) {
        self.inner.fabric.unregister(self.inner.address);
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FetchAgent {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn agent_loop(inner: Arc<AgentInner>, endpoint: rtml_net::Endpoint) {
    while let Ok(delivery) = endpoint.receiver().recv() {
        let msg = match decode_from_slice::<TransferMsg>(&delivery.payload) {
            Ok(msg) => msg,
            Err(_) => {
                inner.stats.decode_errors.inc();
                continue;
            }
        };
        match msg {
            TransferMsg::Chunk {
                object,
                index,
                total,
                payload,
            } => {
                inner.stats.chunks_received.inc();
                let total = total.max(1) as usize;
                let index = index as usize;
                if index >= total {
                    inner.stats.decode_errors.inc();
                    continue;
                }
                let mut fl = inner.in_flight.lock();
                let entry = fl.entry(object).or_insert_with(|| InFlight {
                    // Unsolicited data (a request we gave up on): still
                    // reassemble — sealing the bytes is useful work.
                    waiters: Vec::new(),
                    chunks: Vec::new(),
                    received: 0,
                    expires_at: Instant::now() + ORPHAN_TTL,
                });
                if entry.chunks.len() != total {
                    entry.chunks = vec![None; total];
                    entry.received = 0;
                }
                if entry.chunks[index].is_none() {
                    entry.chunks[index] = Some(payload);
                    entry.received += 1;
                }
                if entry.received as usize == total {
                    let entry = fl.remove(&object).expect("entry present");
                    // Seal while still holding the in-flight lock: a
                    // concurrent fetch_many either finds this entry or
                    // finds the object in the store — never neither.
                    let size = entry
                        .chunks
                        .iter()
                        .map(|c| c.as_ref().expect("all chunks received").len())
                        .sum();
                    let mut buf = Vec::with_capacity(size);
                    for chunk in &entry.chunks {
                        buf.extend_from_slice(chunk.as_ref().expect("all chunks received"));
                    }
                    let bytes = Bytes::from(buf);
                    match inner.store.put(object, bytes.clone()) {
                        Ok(outcome) => {
                            inner.stats.objects_fetched.inc();
                            for w in &entry.waiters {
                                let _ = w.send(Ok((bytes.clone(), outcome.clone())));
                            }
                        }
                        Err(err) => {
                            for w in &entry.waiters {
                                let _ = w.send(Err(err.clone()));
                            }
                        }
                    }
                }
            }
            TransferMsg::Missing { object } => {
                inner.stats.misses.inc();
                if let Some(entry) = inner.in_flight.lock().remove(&object) {
                    for w in entry.waiters {
                        let _ = w.send(Err(Error::ObjectNotFound(object)));
                    }
                }
            }
            TransferMsg::Request { .. } => inner.stats.decode_errors.inc(),
        }
    }
}

/// Pulls `object` from one of `holders` into `local`, blocking up to
/// `timeout` per attempted holder.
///
/// The standalone one-shot form of the protocol (tests, benches): it
/// registers an **ephemeral** reply endpoint scoped to an RAII guard —
/// unregistration is unconditional on every exit path, so repeated
/// calls leave the fabric's endpoint table exactly as they found it.
/// Runtime components use the per-node [`FetchAgent`] instead, which
/// keeps one persistent endpoint and single-flights duplicates.
///
/// Holder choice uses the same deterministic rendezvous ranking of
/// `(object, reader)` as the agent paths — not simply the first listed
/// location — so one-shot readers of a replicated object spread across
/// holders too, and remaining holders are retried in rank order when
/// one is unreachable.
///
/// On success the object is sealed into `local`; the outcome reports any
/// evictions the insertion caused. Fails with the **last** holder's
/// error: [`Error::ObjectNotFound`] if no holder had the object and
/// [`Error::Timeout`] if the request or response was lost (e.g. a
/// partition) or too slow.
pub fn fetch_object(
    fabric: &Arc<Fabric>,
    directory: &TransferDirectory,
    local: &ObjectStore,
    object: ObjectId,
    holders: &[NodeId],
    timeout: Duration,
) -> Result<(Bytes, PutOutcome)> {
    let me = local.node();
    let ranked = rtml_common::ids::rendezvous_rank(
        object,
        me.0 as u64,
        holders.iter().copied().filter(|n| *n != me),
    );
    let mut last_err = Error::ObjectNotFound(object);
    for holder in ranked {
        match fetch_object_from(fabric, directory, local, object, holder, timeout) {
            Ok(done) => return Ok(done),
            Err(err) => last_err = err,
        }
    }
    Err(last_err)
}

/// One attempt of [`fetch_object`] against a specific holder.
fn fetch_object_from(
    fabric: &Arc<Fabric>,
    directory: &TransferDirectory,
    local: &ObjectStore,
    object: ObjectId,
    holder: NodeId,
    timeout: Duration,
) -> Result<(Bytes, PutOutcome)> {
    let remote = directory.lookup(holder).ok_or(Error::NodeDown(holder))?;
    // Ephemeral reply endpoint for this fetch; the guard unregisters it
    // no matter how this function returns.
    let reply = fabric.register_guarded(local.node(), "fetch-reply");
    let request = TransferMsg::Request {
        objects: vec![object],
        reply_to: reply.address().as_u64(),
    };
    fabric.send(reply.address(), remote, encode_to_bytes(&request))?;

    let deadline = Instant::now() + timeout;
    let mut chunks: Vec<Option<Bytes>> = Vec::new();
    let mut received = 0usize;
    let data = loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(Error::Timeout);
        }
        let Ok(delivery) = reply.receiver().recv_timeout(deadline - now) else {
            return Err(Error::Timeout);
        };
        match decode_from_slice::<TransferMsg>(&delivery.payload) {
            Ok(TransferMsg::Chunk {
                object: got,
                index,
                total,
                payload,
            }) if got == object => {
                let total = total.max(1) as usize;
                let index = index as usize;
                if index >= total {
                    continue;
                }
                if chunks.len() != total {
                    chunks = vec![None; total];
                    received = 0;
                }
                if chunks[index].is_none() {
                    chunks[index] = Some(payload);
                    received += 1;
                }
                if received == total {
                    let mut buf =
                        Vec::with_capacity(chunks.iter().map(|c| c.as_ref().unwrap().len()).sum());
                    for chunk in &chunks {
                        buf.extend_from_slice(chunk.as_ref().unwrap());
                    }
                    break Bytes::from(buf);
                }
            }
            Ok(TransferMsg::Missing { object: got }) if got == object => {
                return Err(Error::ObjectNotFound(object));
            }
            // Stale or foreign frame; keep waiting.
            _ => continue,
        }
    };

    let outcome = local.put(object, data.clone())?;
    Ok((data, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use rtml_common::ids::{DriverId, TaskId};
    use rtml_net::{FabricConfig, LatencyModel};

    fn obj(i: u64) -> ObjectId {
        TaskId::driver_root(DriverId::from_index(0))
            .child(i)
            .return_object(0)
    }

    fn setup(
        latency_micros: u64,
    ) -> (
        Arc<Fabric>,
        Arc<TransferDirectory>,
        Arc<ObjectStore>,
        Arc<ObjectStore>,
        TransferService,
        TransferService,
    ) {
        setup_chunked(latency_micros, crate::store::DEFAULT_CHUNK_BYTES)
    }

    fn setup_chunked(
        latency_micros: u64,
        chunk_bytes: u64,
    ) -> (
        Arc<Fabric>,
        Arc<TransferDirectory>,
        Arc<ObjectStore>,
        Arc<ObjectStore>,
        TransferService,
        TransferService,
    ) {
        let fabric = Fabric::new(FabricConfig {
            latency: LatencyModel::Constant(Duration::from_micros(latency_micros)),
            ..FabricConfig::default()
        });
        let directory = TransferDirectory::new();
        let store0 = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: 1 << 20,
            chunk_bytes,
        }));
        let store1 = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(1),
            capacity_bytes: 1 << 20,
            chunk_bytes,
        }));
        let svc0 = TransferService::spawn(fabric.clone(), store0.clone(), &directory);
        let svc1 = TransferService::spawn(fabric.clone(), store1.clone(), &directory);
        (fabric, directory, store0, store1, svc0, svc1)
    }

    #[test]
    fn transfer_msg_round_trips() {
        let msgs = vec![
            TransferMsg::Request {
                objects: vec![obj(1), obj(2), obj(3)],
                reply_to: 42,
            },
            TransferMsg::Chunk {
                object: obj(1),
                index: 2,
                total: 7,
                payload: Bytes::from_static(b"data"),
            },
            TransferMsg::Missing { object: obj(2) },
        ];
        for msg in msgs {
            let bytes = encode_to_bytes(&msg);
            let back: TransferMsg = decode_from_slice(&bytes).unwrap();
            assert_eq!(msg, back);
        }
    }

    #[test]
    fn fetch_moves_object() {
        let (fabric, directory, store0, store1, _s0, _s1) = setup(100);
        store0.put(obj(1), Bytes::from_static(b"payload")).unwrap();
        let (data, outcome) = fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(1),
            &[NodeId(0)],
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(&data[..], b"payload");
        assert!(outcome.inserted);
        assert!(store1.contains(obj(1)));
        // Source still has it (copy, not move).
        assert!(store0.contains(obj(1)));
    }

    #[test]
    fn fetch_missing_object_errors() {
        let (fabric, directory, _store0, store1, s0, _s1) = setup(0);
        let err = fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(9),
            &[NodeId(0)],
            Duration::from_secs(5),
        )
        .unwrap_err();
        assert_eq!(err, Error::ObjectNotFound(obj(9)));
        assert_eq!(s0.stats().misses.get(), 1);
    }

    #[test]
    fn fetch_from_unknown_node_errors() {
        let (fabric, directory, _store0, store1, _s0, _s1) = setup(0);
        let err = fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(1),
            &[NodeId(7)],
            Duration::from_secs(1),
        )
        .unwrap_err();
        assert_eq!(err, Error::NodeDown(NodeId(7)));
    }

    #[test]
    fn fetch_times_out_under_partition() {
        let (fabric, directory, store0, store1, _s0, _s1) = setup(0);
        store0.put(obj(1), Bytes::from_static(b"x")).unwrap();
        fabric.partition(NodeId(0), NodeId(1));
        let err = fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(1),
            &[NodeId(0)],
            Duration::from_millis(50),
        )
        .unwrap_err();
        assert_eq!(err, Error::Timeout);
    }

    #[test]
    fn fetch_pays_fabric_latency() {
        let (fabric, directory, store0, store1, _s0, _s1) = setup(5_000); // 5 ms per hop
        store0.put(obj(1), Bytes::from_static(b"x")).unwrap();
        let start = std::time::Instant::now();
        fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(1),
            &[NodeId(0)],
            Duration::from_secs(5),
        )
        .unwrap();
        // Request + response = 2 hops ≥ 10 ms.
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn ephemeral_fetch_endpoints_never_leak() {
        // Regression for the fetch-reply endpoint leak: success, miss,
        // and timeout paths must all leave the endpoint table unchanged.
        let (fabric, directory, store0, store1, _s0, _s1) = setup(0);
        store0.put(obj(1), Bytes::from_static(b"x")).unwrap();
        let base = fabric.endpoint_count();
        for _ in 0..16 {
            fetch_object(
                &fabric,
                &directory,
                &store1,
                obj(1),
                &[NodeId(0)],
                Duration::from_secs(5),
            )
            .unwrap();
            store1.delete(obj(1));
            let _ = fetch_object(
                &fabric,
                &directory,
                &store1,
                obj(9),
                &[NodeId(0)],
                Duration::from_secs(5),
            )
            .unwrap_err();
        }
        fabric.partition(NodeId(0), NodeId(1));
        let _ = fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(1),
            &[NodeId(0)],
            Duration::from_millis(20),
        )
        .unwrap_err();
        assert_eq!(fabric.endpoint_count(), base);
    }

    #[test]
    fn large_object_moves_as_ceil_size_over_chunk_frames() {
        // 1000 bytes at 256-byte chunks = 4 frames.
        let (fabric, directory, store0, store1, s0, _s1) = setup_chunked(100, 256);
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        store0.put(obj(1), Bytes::from(payload.clone())).unwrap();
        let agent = FetchAgent::spawn(fabric.clone(), store1.clone(), directory.clone());
        let (data, _) = agent
            .fetch_one(obj(1), NodeId(0), Duration::from_secs(5))
            .unwrap();
        assert_eq!(data.as_slice(), &payload[..]);
        assert_eq!(s0.stats().chunks_sent.get(), 4);
        assert_eq!(agent.stats().chunks_received.get(), 4);
        assert_eq!(fabric.stats.chunk_frames.get(), 4);
    }

    #[test]
    fn fetch_many_coalesces_one_request_frame_per_holder() {
        let (fabric, directory, store0, store1, s0, _s1) = setup(100);
        let objects: Vec<ObjectId> = (0..16).map(obj).collect();
        for (i, &o) in objects.iter().enumerate() {
            store0.put(o, Bytes::from(vec![i as u8; 64])).unwrap();
        }
        let agent = FetchAgent::spawn(fabric.clone(), store1.clone(), directory.clone());
        let results = agent.fetch_many(&objects, NodeId(0), Duration::from_secs(5));
        for (i, result) in results.iter().enumerate() {
            let (data, _) = result.as_ref().unwrap();
            assert_eq!(data.as_slice(), &[i as u8; 64][..]);
        }
        // 16 objects, one request frame, one reply stream.
        assert_eq!(s0.stats().requests.get(), 1);
        assert_eq!(agent.stats().requests_sent.get(), 1);
        assert_eq!(s0.stats().objects_served.get(), 16);
    }

    #[test]
    fn concurrent_fetches_of_same_object_single_flight() {
        let (fabric, directory, store0, store1, s0, _s1) = setup(2_000);
        store0.put(obj(1), Bytes::from(vec![7u8; 256])).unwrap();
        let agent = Arc::new(FetchAgent::spawn(
            fabric.clone(),
            store1.clone(),
            directory.clone(),
        ));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let agent = agent.clone();
            handles.push(std::thread::spawn(move || {
                agent
                    .fetch_one(obj(1), NodeId(0), Duration::from_secs(5))
                    .map(|(data, _)| data.len())
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap().unwrap(), 256);
        }
        assert!(store1.contains(obj(1)));
        // Exactly one transfer crossed the wire; callers beyond the
        // first either joined it or hit the store.
        assert_eq!(s0.stats().requests.get(), 1);
        assert_eq!(s0.stats().objects_served.get(), 1);
        assert_eq!(agent.stats().transfers.get(), 1);
    }

    #[test]
    fn fetch_many_with_duplicates_issues_one_transfer_per_distinct_object() {
        let (fabric, directory, store0, store1, s0, _s1) = setup(100);
        store0.put(obj(1), Bytes::from_static(b"a")).unwrap();
        store0.put(obj(2), Bytes::from_static(b"bb")).unwrap();
        let agent = FetchAgent::spawn(fabric.clone(), store1.clone(), directory.clone());
        let ids = vec![obj(1), obj(2), obj(1), obj(2), obj(1)];
        let results = agent.fetch_many(&ids, NodeId(0), Duration::from_secs(5));
        let lens: Vec<usize> = results
            .iter()
            .map(|r| r.as_ref().unwrap().0.len())
            .collect();
        assert_eq!(lens, vec![1, 2, 1, 2, 1]);
        assert_eq!(agent.stats().transfers.get(), 2);
        assert_eq!(agent.stats().duplicates_suppressed.get(), 3);
        assert_eq!(s0.stats().objects_served.get(), 2);
    }

    #[test]
    fn agent_fetch_of_local_object_is_immediate() {
        let (fabric, directory, _store0, store1, s0, _s1) = setup(50_000);
        store1.put(obj(1), Bytes::from_static(b"here")).unwrap();
        let agent = FetchAgent::spawn(fabric.clone(), store1.clone(), directory.clone());
        let start = Instant::now();
        let (data, outcome) = agent
            .fetch_one(obj(1), NodeId(0), Duration::from_secs(5))
            .unwrap();
        assert_eq!(&data[..], b"here");
        assert!(!outcome.inserted);
        assert!(start.elapsed() < Duration::from_millis(40));
        assert_eq!(s0.stats().requests.get(), 0);
    }

    #[test]
    fn agent_reports_missing_and_unknown_holder() {
        let (fabric, directory, _store0, store1, _s0, _s1) = setup(0);
        let agent = FetchAgent::spawn(fabric.clone(), store1.clone(), directory.clone());
        assert_eq!(
            agent
                .fetch_one(obj(9), NodeId(0), Duration::from_secs(5))
                .unwrap_err(),
            Error::ObjectNotFound(obj(9))
        );
        assert_eq!(agent.stats().misses.get(), 1);
        assert_eq!(
            agent
                .fetch_one(obj(9), NodeId(42), Duration::from_secs(1))
                .unwrap_err(),
            Error::NodeDown(NodeId(42))
        );
    }

    #[test]
    fn agent_times_out_under_partition_then_recovers() {
        let (fabric, directory, store0, store1, _s0, _s1) = setup(0);
        store0.put(obj(1), Bytes::from_static(b"x")).unwrap();
        let agent = FetchAgent::spawn(fabric.clone(), store1.clone(), directory.clone());
        fabric.partition(NodeId(0), NodeId(1));
        assert_eq!(
            agent
                .fetch_one(obj(1), NodeId(0), Duration::from_millis(40))
                .unwrap_err(),
            Error::Timeout
        );
        assert_eq!(agent.stats().timeouts.get(), 1);
        // The dead transfer stays tracked until completion or reap.
        assert_eq!(agent.in_flight_len(), 1);
        fabric.heal(NodeId(0), NodeId(1));
        // The expired in-flight entry must be re-requested, not joined.
        let (data, _) = agent
            .fetch_one(obj(1), NodeId(0), Duration::from_secs(5))
            .unwrap();
        assert_eq!(&data[..], b"x");
        // Completion removes the entry; nothing lingers.
        assert_eq!(agent.in_flight_len(), 0);
    }

    #[test]
    fn chunk_frame_encoding_matches_codec() {
        let payload: Vec<u8> = (0..300u32).map(|i| (i % 256) as u8).collect();
        let direct = encode_chunk_frame(obj(3), 2, 7, &payload);
        let via_codec = encode_to_bytes(&TransferMsg::Chunk {
            object: obj(3),
            index: 2,
            total: 7,
            payload: Bytes::from(payload),
        });
        assert_eq!(direct, via_codec);
    }

    #[test]
    fn agent_uses_one_persistent_endpoint_across_fetches() {
        let (fabric, directory, store0, store1, _s0, _s1) = setup(0);
        let agent = FetchAgent::spawn(fabric.clone(), store1.clone(), directory.clone());
        let base = fabric.endpoint_count();
        for i in 0..32 {
            store0.put(obj(i), Bytes::from_static(b"x")).unwrap();
            agent
                .fetch_one(obj(i), NodeId(0), Duration::from_secs(5))
                .unwrap();
        }
        assert_eq!(fabric.endpoint_count(), base);
        agent.shutdown();
        assert_eq!(fabric.endpoint_count(), base - 1);
    }

    #[test]
    fn service_counts_decode_errors_and_stays_alive() {
        let (fabric, directory, store0, store1, s0, _s1) = setup(0);
        store0.put(obj(1), Bytes::from_static(b"x")).unwrap();
        let remote = directory.lookup(NodeId(0)).unwrap();
        let probe = fabric.register_guarded(NodeId(1), "probe");
        fabric
            .send(probe.address(), remote, Bytes::from_static(b"\xff garbage"))
            .unwrap();
        // The service must survive garbage and keep serving.
        let (data, _) = fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(1),
            &[NodeId(0)],
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(&data[..], b"x");
        assert_eq!(s0.stats().decode_errors.get(), 1);
    }

    #[test]
    fn holder_pins_object_while_serving() {
        // A store at capacity: serving a request must not let the served
        // object be evicted out from under the snapshot. We exercise the
        // pin bracket directly through a serve while the store is full.
        let (fabric, directory, store0, store1, _s0, _s1) = setup_chunked(0, 64);
        let payload = Bytes::from(vec![9u8; 512]);
        store0.put(obj(1), payload.clone()).unwrap();
        let (data, _) = fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(1),
            &[NodeId(0)],
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(data, payload);
        // The pin was released after the serve: the object is evictable
        // again under pressure.
        store0.put(obj(2), Bytes::from(vec![1u8; 1 << 20])).unwrap();
        assert!(!store0.contains(obj(1)));
    }
}
