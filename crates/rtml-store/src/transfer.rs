//! Cross-node object transfer over the simulated fabric.
//!
//! Each node runs a [`TransferService`] thread that answers object
//! requests from its local store. A consumer missing an object calls
//! [`fetch_object`], which sends a request to the holder's service and
//! blocks until the payload arrives (paying the fabric's latency and
//! bandwidth costs), then seals the object into the local store.
//!
//! The wire protocol is two message types, encoded with the rtml codec:
//! `Request { object, reply_to }` and `Response { object, payload? }`.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;

use rtml_common::codec::{decode_from_slice, encode_to_bytes, Codec, Reader, Writer};
use rtml_common::error::{Error, Result};
use rtml_common::ids::{NodeId, ObjectId};
use rtml_net::{Fabric, NetAddress};

use crate::store::{ObjectStore, PutOutcome};

/// Transfer wire messages.
#[derive(Clone, Debug, PartialEq, Eq)]
enum TransferMsg {
    /// "Send me `object`; reply to this address."
    Request { object: ObjectId, reply_to: u64 },
    /// The payload, or `None` if the holder no longer has the object
    /// (evicted or crashed between lookup and request).
    Response {
        object: ObjectId,
        payload: Option<Bytes>,
    },
}

impl Codec for TransferMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            TransferMsg::Request { object, reply_to } => {
                w.put_u8(0);
                object.encode(w);
                w.put_u64(*reply_to);
            }
            TransferMsg::Response { object, payload } => {
                w.put_u8(1);
                object.encode(w);
                payload.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            0 => TransferMsg::Request {
                object: ObjectId::decode(r)?,
                reply_to: r.take_u64()?,
            },
            1 => TransferMsg::Response {
                object: ObjectId::decode(r)?,
                payload: Option::<Bytes>::decode(r)?,
            },
            other => return Err(Error::Codec(format!("invalid TransferMsg tag {other}"))),
        })
    }
}

/// Maps each node to its transfer-service fabric address. Shared by all
/// nodes; populated during cluster construction.
#[derive(Default)]
pub struct TransferDirectory {
    map: RwLock<HashMap<NodeId, NetAddress>>,
}

impl TransferDirectory {
    /// Creates an empty directory.
    pub fn new() -> Arc<Self> {
        Arc::new(TransferDirectory::default())
    }

    /// Records `node`'s transfer service address.
    pub fn insert(&self, node: NodeId, address: NetAddress) {
        self.map.write().insert(node, address);
    }

    /// Looks up `node`'s transfer service address.
    pub fn lookup(&self, node: NodeId) -> Option<NetAddress> {
        self.map.read().get(&node).copied()
    }

    /// Removes a node (when it is killed).
    pub fn remove(&self, node: NodeId) {
        self.map.write().remove(&node);
    }
}

/// Per-node server answering transfer requests from the local store.
pub struct TransferService {
    handle: Option<std::thread::JoinHandle<()>>,
    address: NetAddress,
    fabric: Arc<Fabric>,
}

impl TransferService {
    /// Spawns the service thread for `store` and registers it in
    /// `directory`.
    pub fn spawn(
        fabric: Arc<Fabric>,
        store: Arc<ObjectStore>,
        directory: &TransferDirectory,
    ) -> TransferService {
        let node = store.node();
        let endpoint = fabric.register(node, "transfer");
        let address = endpoint.address();
        directory.insert(node, address);
        let fabric2 = fabric.clone();
        let handle = std::thread::Builder::new()
            .name(format!("rtml-transfer-{node}"))
            .spawn(move || {
                while let Ok(delivery) = endpoint.receiver().recv() {
                    let Ok(msg) = decode_from_slice::<TransferMsg>(&delivery.payload) else {
                        continue;
                    };
                    if let TransferMsg::Request { object, reply_to } = msg {
                        let payload = store.get(object);
                        let response = TransferMsg::Response { object, payload };
                        // Best-effort: the requester may have timed out.
                        let _ = fabric2.send(
                            address,
                            NetAddress::from_u64(reply_to),
                            encode_to_bytes(&response),
                        );
                    }
                }
            })
            .expect("spawn transfer service");
        TransferService {
            handle: Some(handle),
            address,
            fabric,
        }
    }

    /// The service's fabric address.
    pub fn address(&self) -> NetAddress {
        self.address
    }

    /// Stops the service (unregisters its endpoint; the thread exits when
    /// its mailbox closes).
    pub fn shutdown(&mut self) {
        self.fabric.unregister(self.address);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TransferService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pulls `object` from `holder` into `local`, blocking up to `timeout`.
///
/// On success the object is sealed into `local`; the outcome reports any
/// evictions the insertion caused. Fails with [`Error::ObjectNotFound`] if
/// the holder no longer has the object and [`Error::Timeout`] if the
/// request or response is lost (e.g. a partition) or too slow.
pub fn fetch_object(
    fabric: &Arc<Fabric>,
    directory: &TransferDirectory,
    local: &ObjectStore,
    object: ObjectId,
    holder: NodeId,
    timeout: Duration,
) -> Result<(Bytes, PutOutcome)> {
    let remote = directory.lookup(holder).ok_or(Error::NodeDown(holder))?;
    // Ephemeral reply endpoint for this fetch.
    let reply = fabric.register(local.node(), "fetch-reply");
    let request = TransferMsg::Request {
        object,
        reply_to: reply.address().as_u64(),
    };
    fabric.send(reply.address(), remote, encode_to_bytes(&request))?;

    let deadline = std::time::Instant::now() + timeout;
    let result = loop {
        let now = std::time::Instant::now();
        if now >= deadline {
            break Err(Error::Timeout);
        }
        match reply.receiver().recv_timeout(deadline - now) {
            Ok(delivery) => {
                match decode_from_slice::<TransferMsg>(&delivery.payload) {
                    Ok(TransferMsg::Response {
                        object: got,
                        payload,
                    }) if got == object => match payload {
                        Some(data) => break Ok(data),
                        None => break Err(Error::ObjectNotFound(object)),
                    },
                    // Stale or foreign frame; keep waiting.
                    _ => continue,
                }
            }
            Err(_) => break Err(Error::Timeout),
        }
    };
    fabric.unregister(reply.address());

    let data = result?;
    let outcome = local.put(object, data.clone())?;
    Ok((data, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use rtml_common::ids::{DriverId, TaskId};
    use rtml_net::{FabricConfig, LatencyModel};

    fn obj(i: u64) -> ObjectId {
        TaskId::driver_root(DriverId::from_index(0))
            .child(i)
            .return_object(0)
    }

    fn setup(
        latency_micros: u64,
    ) -> (
        Arc<Fabric>,
        Arc<TransferDirectory>,
        Arc<ObjectStore>,
        Arc<ObjectStore>,
        TransferService,
        TransferService,
    ) {
        let fabric = Fabric::new(FabricConfig {
            latency: LatencyModel::Constant(Duration::from_micros(latency_micros)),
            ..FabricConfig::default()
        });
        let directory = TransferDirectory::new();
        let store0 = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: 1 << 20,
        }));
        let store1 = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(1),
            capacity_bytes: 1 << 20,
        }));
        let svc0 = TransferService::spawn(fabric.clone(), store0.clone(), &directory);
        let svc1 = TransferService::spawn(fabric.clone(), store1.clone(), &directory);
        (fabric, directory, store0, store1, svc0, svc1)
    }

    #[test]
    fn transfer_msg_round_trips() {
        let msgs = vec![
            TransferMsg::Request {
                object: obj(1),
                reply_to: 42,
            },
            TransferMsg::Response {
                object: obj(1),
                payload: Some(Bytes::from_static(b"data")),
            },
            TransferMsg::Response {
                object: obj(2),
                payload: None,
            },
        ];
        for msg in msgs {
            let bytes = encode_to_bytes(&msg);
            let back: TransferMsg = decode_from_slice(&bytes).unwrap();
            assert_eq!(msg, back);
        }
    }

    #[test]
    fn fetch_moves_object() {
        let (fabric, directory, store0, store1, _s0, _s1) = setup(100);
        store0.put(obj(1), Bytes::from_static(b"payload")).unwrap();
        let (data, outcome) = fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(1),
            NodeId(0),
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(&data[..], b"payload");
        assert!(outcome.inserted);
        assert!(store1.contains(obj(1)));
        // Source still has it (copy, not move).
        assert!(store0.contains(obj(1)));
    }

    #[test]
    fn fetch_missing_object_errors() {
        let (fabric, directory, _store0, store1, _s0, _s1) = setup(0);
        let err = fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(9),
            NodeId(0),
            Duration::from_secs(5),
        )
        .unwrap_err();
        assert_eq!(err, Error::ObjectNotFound(obj(9)));
    }

    #[test]
    fn fetch_from_unknown_node_errors() {
        let (fabric, directory, _store0, store1, _s0, _s1) = setup(0);
        let err = fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(1),
            NodeId(7),
            Duration::from_secs(1),
        )
        .unwrap_err();
        assert_eq!(err, Error::NodeDown(NodeId(7)));
    }

    #[test]
    fn fetch_times_out_under_partition() {
        let (fabric, directory, store0, store1, _s0, _s1) = setup(0);
        store0.put(obj(1), Bytes::from_static(b"x")).unwrap();
        fabric.partition(NodeId(0), NodeId(1));
        let err = fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(1),
            NodeId(0),
            Duration::from_millis(50),
        )
        .unwrap_err();
        assert_eq!(err, Error::Timeout);
    }

    #[test]
    fn fetch_pays_fabric_latency() {
        let (fabric, directory, store0, store1, _s0, _s1) = setup(5_000); // 5 ms per hop
        store0.put(obj(1), Bytes::from_static(b"x")).unwrap();
        let start = std::time::Instant::now();
        fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(1),
            NodeId(0),
            Duration::from_secs(5),
        )
        .unwrap();
        // Request + response = 2 hops ≥ 10 ms.
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn concurrent_fetches_of_same_object() {
        let (fabric, directory, store0, store1, _s0, _s1) = setup(100);
        store0.put(obj(1), Bytes::from(vec![7u8; 256])).unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let fabric = fabric.clone();
            let directory = directory.clone();
            let store1 = store1.clone();
            handles.push(std::thread::spawn(move || {
                fetch_object(
                    &fabric,
                    &directory,
                    &store1,
                    obj(1),
                    NodeId(0),
                    Duration::from_secs(5),
                )
                .map(|(data, _)| data.len())
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap().unwrap(), 256);
        }
        assert!(store1.contains(obj(1)));
    }
}
