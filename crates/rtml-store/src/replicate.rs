//! The replication plane: demand-driven replica placement for hot
//! objects — the third per-node plane, after the control plane (batched
//! submission) and the transfer plane (chunked, coalesced fetches).
//!
//! The paper's object store assumes reads scale with the cluster, but a
//! popular immutable object (a broadcast policy, shared weights) is
//! produced on one node, and every remote read funnels to that node's
//! egress link — the exact hot-spot the multi-holder
//! `ObjectInfo::locations` set exists to avoid. This module closes the
//! loop:
//!
//! - the node's [`crate::TransferService`] counts **per-object remote
//!   read demand** ([`crate::TransferStats::record_demand`]), including
//!   scheduler hints that restore the fan-in coalesced prefetches hide;
//! - a per-node [`ReplicationAgent`] sweeps that demand on an interval,
//!   and when an object it holds crosses
//!   [`ReplicationPolicy::read_threshold`], pulls it onto up to
//!   [`ReplicationPolicy::max_replicas`] additional holders (rendezvous-
//!   ranked, so different hot objects land on different nodes) through
//!   the runtime-supplied [`ReplicationHooks::pull`] — the existing
//!   chunked `FetchMany` path plus a group-committed
//!   `add_location_many`;
//! - readers then spread across the enlarged holder set via the shared
//!   rendezvous ranking (`ObjectInfo::holders_ranked`), and replica
//!   copies are **second-class for eviction**
//!   ([`crate::ObjectStore::mark_replica`]): dropped before sole
//!   copies, never preferentially dropped when they *are* the last
//!   sealed copy.
//!
//! This crate cannot see the control-plane tables (`rtml-kv` sits above
//! it), so the agent's view of the world arrives through
//! [`ReplicationHooks`]: the runtime wires `lookup` to the object
//! table, `alive_nodes` to the cluster routing map, and `pull` to the
//! target node's `FetchAgent`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};

use rtml_common::ids::{rendezvous_rank, NodeId, ObjectId, REPLICA_PLACEMENT_SALT};
use rtml_common::metrics::Counter;

use crate::transfer::TransferStats;

/// When (and how far) a node replicates the hot objects it serves.
#[derive(Clone, Debug)]
pub struct ReplicationPolicy {
    /// Master switch. Off: no agent runs, no demand is tracked, and
    /// behavior is identical to a build without the replication plane.
    pub enabled: bool,
    /// Remote reads of one object that make it hot. Accumulated demand
    /// is **halved every sweep** it fails to cross the threshold, so
    /// this is effectively a rate: sustained demand compounds past the
    /// threshold, while a trickle of occasional reads decays away (and
    /// the agent's demand memory stays bounded).
    pub read_threshold: u64,
    /// Maximum *additional* holders beyond the copies that already
    /// exist; total holders are also capped by the cluster size.
    pub max_replicas: usize,
    /// How often the agent drains demand counters and acts.
    pub sweep_interval: Duration,
    /// Reclamation: a replica copy this node holds is *cold* in a sweep
    /// when its observed read demand sits below this. Cold replicas are
    /// proactively dropped (store evict + group-committed
    /// `remove_location_many`), returning capacity before eviction
    /// pressure forces it. `0` keeps every replica warm forever.
    pub release_threshold: u64,
    /// How many **consecutive** cold sweeps a replica survives before
    /// release — hysteresis, so one quiet interval does not throw away
    /// a copy the next burst would have used.
    pub release_after_sweeps: u32,
}

impl Default for ReplicationPolicy {
    fn default() -> Self {
        ReplicationPolicy {
            enabled: true,
            read_threshold: 16,
            max_replicas: 2,
            sweep_interval: Duration::from_millis(10),
            release_threshold: 1,
            release_after_sweeps: 8,
        }
    }
}

impl ReplicationPolicy {
    /// Disabled policy (for ablations and PR-3-identical behavior).
    pub fn disabled() -> Self {
        ReplicationPolicy {
            enabled: false,
            ..ReplicationPolicy::default()
        }
    }

    /// How many new replicas to create for an object with
    /// `current_holders` copies in an `alive`-node cluster: enough to
    /// reach `1 + max_replicas` total holders, never exceeding the
    /// cluster.
    pub fn replicas_needed(&self, current_holders: usize, alive: usize) -> usize {
        let want_total = (1 + self.max_replicas).min(alive);
        want_total.saturating_sub(current_holders)
    }

    /// Deterministic placement: the top `n` rendezvous-ranked
    /// candidates for `object`. Different hot objects hash to different
    /// candidate orders, so replicas spread over the cluster instead of
    /// piling onto one favorite node.
    pub fn choose_targets(
        &self,
        object: ObjectId,
        candidates: impl IntoIterator<Item = NodeId>,
        n: usize,
    ) -> Vec<NodeId> {
        let mut ranked = rendezvous_rank(object, REPLICA_PLACEMENT_SALT, candidates);
        ranked.truncate(n);
        ranked
    }
}

/// What the control plane knows about one object, as supplied by
/// [`ReplicationHooks::lookup`] (this crate cannot read the object
/// table itself).
#[derive(Clone, Debug)]
pub struct ReplicaView {
    /// Whether the object has been sealed anywhere.
    pub sealed: bool,
    /// Nodes currently holding a sealed copy.
    pub locations: Vec<NodeId>,
}

/// Runtime-supplied capabilities the agent acts through.
#[derive(Clone)]
pub struct ReplicationHooks {
    /// Reads the object's control-plane record (object table).
    pub lookup: Arc<dyn Fn(ObjectId) -> Option<ReplicaView> + Send + Sync>,
    /// Nodes currently routable (replica placement candidates).
    pub alive_nodes: Arc<dyn Fn() -> Vec<NodeId> + Send + Sync>,
    /// Pulls `object` from `from` onto `target` — the runtime drives
    /// the target's `FetchAgent` through the chunked `FetchMany` path,
    /// group-commits the new location, and marks the copy as a replica
    /// in the target's store. Returns whether the replica now exists.
    pub pull: Arc<dyn Fn(ObjectId, NodeId, NodeId) -> bool + Send + Sync>,
    /// Replica-marked entries currently in this node's own store — the
    /// reclamation candidate set ([`crate::ObjectStore::list_replicas`]).
    pub list_replicas: Arc<dyn Fn() -> Vec<ObjectId> + Send + Sync>,
    /// Drops the listed replica copies from this node: store evict plus
    /// one group-committed `remove_location_many`. The runtime must
    /// re-verify per object that the copy is still replica-marked,
    /// unpinned, and that another sealed holder exists (reclamation
    /// never eats the last copy) — and, because that check-then-delete
    /// is not atomic across nodes, apply a deterministic tiebreak (the
    /// rendezvous anchor holder never releases) so two concurrently
    /// cold holders cannot both drop the last copies. Returns how many
    /// were actually dropped.
    pub release: Arc<dyn Fn(&[ObjectId]) -> usize + Send + Sync>,
    /// Called at the end of every sweep with its summary — the runtime
    /// turns this into a `ReplicationSweep` span event. `None` keeps
    /// the agent free of any event-log dependency.
    pub observe_sweep: Option<Arc<dyn Fn(SweepReport) + Send + Sync>>,
}

/// Summary of one demand sweep, handed to
/// [`ReplicationHooks::observe_sweep`].
#[derive(Clone, Copy, Debug)]
pub struct SweepReport {
    /// Objects whose demand crossed the threshold this sweep.
    pub hot: u32,
    /// Replica copies created this sweep.
    pub placed: u32,
    /// Cold replica copies reclaimed this sweep.
    pub released: u32,
    /// Wall time of the sweep.
    pub micros: u64,
}

/// Counters for one node's replication agent.
#[derive(Debug, Default)]
pub struct ReplicationStats {
    /// Sweeps executed.
    pub sweeps: Counter,
    /// Objects whose demand crossed the threshold.
    pub hot_objects: Counter,
    /// Replica copies successfully placed.
    pub replicas_created: Counter,
    /// Replica copies proactively dropped by the demand-decay
    /// reclamation sweep (read demand collapsed below
    /// [`ReplicationPolicy::release_threshold`]).
    pub replicas_released: Counter,
    /// Pull attempts that failed (target died, store pressure, ...).
    pub failures: Counter,
}

/// Per-node background agent: watches the demand its node's transfer
/// service observes and replicates hot objects outward. Spawn one per
/// node when the policy is enabled; [`ReplicationAgent::shutdown`] (or
/// drop) stops it.
pub struct ReplicationAgent {
    stats: Arc<ReplicationStats>,
    stop: Sender<()>,
    /// Checked between individual pulls too, so a shutdown (or node
    /// kill) interrupts a sweep mid-way instead of waiting out one
    /// fetch timeout per remaining target.
    stopping: Arc<std::sync::atomic::AtomicBool>,
    handle: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ReplicationAgent {
    /// Spawns the sweep thread for `node`. Demand tracking on `demand`
    /// is enabled as a side effect — without an agent the counters stay
    /// off and cost nothing.
    pub fn spawn(
        node: NodeId,
        policy: ReplicationPolicy,
        demand: Arc<TransferStats>,
        hooks: ReplicationHooks,
    ) -> ReplicationAgent {
        demand.enable_demand_tracking();
        let stats = Arc::new(ReplicationStats::default());
        let stats2 = stats.clone();
        let stopping = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stopping2 = stopping.clone();
        let (stop_tx, stop_rx) = unbounded::<()>();
        let handle = std::thread::Builder::new()
            .name(format!("rtml-replicate-{node}"))
            .spawn(move || {
                let mut pending: HashMap<ObjectId, u64> = HashMap::new();
                let mut cold_streaks: HashMap<ObjectId, u32> = HashMap::new();
                loop {
                    match stop_rx.recv_timeout(policy.sweep_interval) {
                        Ok(()) => break,
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    }
                    sweep(
                        node,
                        &policy,
                        &demand,
                        &hooks,
                        &stats2,
                        &mut pending,
                        &mut cold_streaks,
                        || stopping2.load(std::sync::atomic::Ordering::Acquire),
                    );
                }
            })
            .expect("spawn replication agent");
        ReplicationAgent {
            stats,
            stop: stop_tx,
            stopping,
            handle: parking_lot::Mutex::new(Some(handle)),
        }
    }

    /// The agent's counters.
    pub fn stats(&self) -> &Arc<ReplicationStats> {
        &self.stats
    }

    /// Stops the sweep thread and joins it. A sweep in the middle of
    /// replica pulls notices the flag between pulls, so the join is
    /// bounded by one fetch timeout, not one per target.
    pub fn shutdown(&self) {
        self.stopping
            .store(true, std::sync::atomic::Ordering::Release);
        let _ = self.stop.send(());
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ReplicationAgent {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One sweep: drain fresh demand, merge into `pending`, reclaim the
/// cold replica copies this node holds, and replicate every object
/// that crossed the threshold. Hot objects are processed in id order
/// (the drain is sorted) so placement is reproducible. Entries that
/// stay below the threshold are halved (and dropped at zero) so
/// `pending` tracks a demand *rate* with bounded memory, not a
/// lifetime total.
#[allow(clippy::too_many_arguments)]
fn sweep(
    me: NodeId,
    policy: &ReplicationPolicy,
    demand: &TransferStats,
    hooks: &ReplicationHooks,
    stats: &ReplicationStats,
    pending: &mut HashMap<ObjectId, u64>,
    cold_streaks: &mut HashMap<ObjectId, u32>,
    stopping: impl Fn() -> bool,
) {
    let started = std::time::Instant::now();
    let mut hot_seen: u32 = 0;
    let mut placed: u32 = 0;
    let mut released: u32 = 0;
    stats.sweeps.inc();
    let drained = demand.drain_demand();
    for (object, reads) in &drained {
        *pending.entry(*object).or_insert(0) += reads;
    }
    let mut hot: Vec<ObjectId> = pending
        .iter()
        .filter(|(_, reads)| **reads >= policy.read_threshold)
        .map(|(object, _)| *object)
        .collect();
    hot.sort();
    // Reclamation (demand decay on replica *copies*): judged against
    // the merged, pre-decay demand, so a replica serving even one read
    // per sweep stays warm. Cold streaks accrue hysteresis; only a
    // replica cold for `release_after_sweeps` consecutive sweeps is
    // dropped, through the runtime's release hook (which re-verifies
    // that another sealed holder exists — never the last copy).
    if policy.release_after_sweeps > 0 && policy.release_threshold > 0 {
        let mut replicas = (hooks.list_replicas)();
        replicas.sort();
        let replica_set: std::collections::HashSet<ObjectId> = replicas.iter().copied().collect();
        // Entries that stopped being replicas (evicted, demoted to the
        // last copy) forget their streak.
        cold_streaks.retain(|object, _| replica_set.contains(object));
        let mut release: Vec<ObjectId> = Vec::new();
        for object in replicas {
            if pending.get(&object).copied().unwrap_or(0) >= policy.release_threshold {
                cold_streaks.remove(&object);
                continue;
            }
            let streak = cold_streaks.entry(object).or_insert(0);
            *streak += 1;
            if *streak >= policy.release_after_sweeps {
                cold_streaks.remove(&object);
                release.push(object);
            }
        }
        if !release.is_empty() {
            let dropped = (hooks.release)(&release);
            stats.replicas_released.add(dropped as u64);
            released = dropped as u32;
        }
    }
    // Exponential decay for everything that stayed cold: a one-off
    // burst fades in a few sweeps instead of counting toward hotness
    // forever, and the map cannot grow without bound on a node that
    // serves many barely-read objects.
    pending.retain(|_, reads| {
        *reads /= 2;
        *reads > 0
    });
    'hot: for object in hot {
        // Processed (or abandoned) either way: the counter re-arms from
        // zero, so sustained demand re-triggers on later sweeps while a
        // one-off burst does not keep replicating forever.
        pending.remove(&object);
        let Some(view) = (hooks.lookup)(object) else {
            continue;
        };
        // Only sealed objects this node still holds are candidates: an
        // evicted object cannot be pushed from here, and an unsealed
        // record is a table race.
        if !view.sealed || !view.locations.contains(&me) {
            continue;
        }
        stats.hot_objects.inc();
        hot_seen += 1;
        let alive = (hooks.alive_nodes)();
        let needed = policy.replicas_needed(view.locations.len(), alive.len());
        if needed == 0 {
            continue;
        }
        let candidates = alive.into_iter().filter(|n| !view.locations.contains(n));
        for target in policy.choose_targets(object, candidates, needed) {
            // Shutdown/kill must not wait out one fetch timeout per
            // remaining target: abandon the sweep between pulls (the
            // observer still sees the partial sweep's summary).
            if stopping() {
                break 'hot;
            }
            if (hooks.pull)(object, target, me) {
                stats.replicas_created.inc();
                placed += 1;
            } else {
                stats.failures.inc();
            }
        }
    }
    if let Some(observe) = &hooks.observe_sweep {
        observe(SweepReport {
            hot: hot_seen,
            placed,
            released,
            micros: started.elapsed().as_micros() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ObjectStore, StoreConfig};
    use crate::transfer::{TransferDirectory, TransferService};
    use bytes::Bytes;
    use parking_lot::Mutex;
    use rtml_common::ids::{DriverId, TaskId};
    use rtml_net::{Fabric, FabricConfig, LatencyModel};
    use std::time::Instant;

    fn obj(i: u64) -> ObjectId {
        TaskId::driver_root(DriverId::from_index(3))
            .child(i)
            .return_object(0)
    }

    #[test]
    fn replicas_needed_caps_at_cluster_size() {
        let policy = ReplicationPolicy {
            max_replicas: 3,
            ..ReplicationPolicy::default()
        };
        assert_eq!(policy.replicas_needed(1, 8), 3);
        assert_eq!(policy.replicas_needed(2, 8), 2);
        assert_eq!(policy.replicas_needed(4, 8), 0);
        // Two-node cluster: at most one replica can exist.
        assert_eq!(policy.replicas_needed(1, 2), 1);
        assert_eq!(policy.replicas_needed(1, 1), 0);
    }

    #[test]
    fn choose_targets_is_deterministic_and_object_dependent() {
        let policy = ReplicationPolicy::default();
        let candidates: Vec<NodeId> = (0..8).map(NodeId).collect();
        let a = policy.choose_targets(obj(1), candidates.clone(), 2);
        let b = policy.choose_targets(obj(1), candidates.clone(), 2);
        assert_eq!(a, b, "placement must be a pure function");
        assert_eq!(a.len(), 2);
        // Across many objects, placement must not pile onto one node.
        let mut distinct = std::collections::HashSet::new();
        for i in 0..32 {
            distinct.extend(policy.choose_targets(obj(i), candidates.clone(), 2));
        }
        assert!(
            distinct.len() >= 4,
            "placement too concentrated: {distinct:?}"
        );
    }

    #[test]
    fn agent_replicates_objects_past_threshold() {
        // A real serve records demand (node 0 holds the object, a
        // one-shot reader on node 1 fetches it), then a scheduler-style
        // hint pushes the counter over the threshold in one atomic
        // batch (trickled reads are subject to per-sweep decay by
        // design): the agent must pull the object onto its two chosen
        // targets through the hook.
        let fabric = Fabric::new(FabricConfig {
            latency: LatencyModel::Zero,
            ..FabricConfig::default()
        });
        let directory = TransferDirectory::new();
        let store0 = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let store1 = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(1),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let svc0 = TransferService::spawn(fabric.clone(), store0.clone(), &directory);
        let _svc1 = TransferService::spawn(fabric.clone(), store1.clone(), &directory);
        store0.put(obj(7), Bytes::from_static(b"hot")).unwrap();

        let pulls: Arc<Mutex<Vec<(ObjectId, NodeId, NodeId)>>> = Arc::new(Mutex::new(Vec::new()));
        let pulls2 = pulls.clone();
        let hooks = ReplicationHooks {
            lookup: Arc::new(|object| {
                Some(ReplicaView {
                    sealed: true,
                    locations: vec![NodeId(0)],
                })
                .filter(|_| object == obj(7))
            }),
            alive_nodes: Arc::new(|| vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]),
            pull: Arc::new(move |object, target, from| {
                pulls2.lock().push((object, target, from));
                true
            }),
            list_replicas: Arc::new(Vec::new),
            release: Arc::new(|_| 0),
            observe_sweep: None,
        };
        let policy = ReplicationPolicy {
            enabled: true,
            read_threshold: 4,
            max_replicas: 2,
            sweep_interval: Duration::from_millis(2),
            ..ReplicationPolicy::default()
        };
        // Serve-loop demand recording, checked before the agent exists
        // (an agent's sweeps would drain the counter underneath us).
        svc0.stats().enable_demand_tracking();
        crate::transfer::fetch_object(
            &fabric,
            &directory,
            &store1,
            obj(7),
            &[NodeId(0)],
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(svc0.stats().demand_of(obj(7)), 1);

        let agent = ReplicationAgent::spawn(NodeId(0), policy, svc0.stats().clone(), hooks);
        // The coalesced-prefetch hint: threshold's worth of fan-in in
        // one batch, crossed atomically on the next sweep.
        svc0.stats().record_demand(obj(7), 4);
        let deadline = Instant::now() + Duration::from_secs(5);
        while pulls.lock().len() < 2 {
            assert!(Instant::now() < deadline, "agent never replicated");
            std::thread::sleep(Duration::from_millis(2));
        }
        let got = pulls.lock().clone();
        assert_eq!(got.len(), 2, "exactly max_replicas pulls: {got:?}");
        for (object, target, from) in &got {
            assert_eq!(*object, obj(7));
            assert_eq!(*from, NodeId(0));
            assert!(*target != NodeId(0), "never replicates onto a holder");
        }
        assert_eq!(agent.stats().replicas_created.get(), 2);
        assert_eq!(agent.stats().hot_objects.get(), 1);
        agent.shutdown();
    }

    #[test]
    fn agent_skips_objects_below_threshold_and_already_replicated() {
        let stats = Arc::new(TransferStats::default());
        stats.enable_demand_tracking();
        let pulls = Arc::new(Mutex::new(Vec::<ObjectId>::new()));
        let pulls2 = pulls.clone();
        let hooks = ReplicationHooks {
            // Every object already has a full holder set.
            lookup: Arc::new(|_| {
                Some(ReplicaView {
                    sealed: true,
                    locations: vec![NodeId(0), NodeId(1), NodeId(2)],
                })
            }),
            alive_nodes: Arc::new(|| vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]),
            pull: Arc::new(move |object, _, _| {
                pulls2.lock().push(object);
                true
            }),
            list_replicas: Arc::new(Vec::new),
            release: Arc::new(|_| 0),
            observe_sweep: None,
        };
        let policy = ReplicationPolicy {
            enabled: true,
            read_threshold: 10,
            max_replicas: 2,
            sweep_interval: Duration::from_millis(1),
            ..ReplicationPolicy::default()
        };
        let mut pending = HashMap::new();
        let mut cold = HashMap::new();
        let agent_stats = ReplicationStats::default();
        // Below threshold: nothing happens; demand carries over with
        // decay (6 -> 3), so a cold trickle fades instead of counting
        // toward hotness forever.
        stats.record_demand(obj(1), 6);
        sweep(
            NodeId(0),
            &policy,
            &stats,
            &hooks,
            &agent_stats,
            &mut pending,
            &mut cold,
            || false,
        );
        assert!(pulls.lock().is_empty());
        assert_eq!(pending.get(&obj(1)), Some(&3));
        // Crosses threshold across sweeps (3 + 7 = 10), but the holder
        // set is full: hot is noted, no pull is issued, and the counter
        // re-arms.
        stats.record_demand(obj(1), 7);
        sweep(
            NodeId(0),
            &policy,
            &stats,
            &hooks,
            &agent_stats,
            &mut pending,
            &mut cold,
            || false,
        );
        assert!(pulls.lock().is_empty());
        assert_eq!(agent_stats.hot_objects.get(), 1);
        assert!(!pending.contains_key(&obj(1)), "counter re-armed");
        // A cold entry left alone decays to nothing: bounded memory.
        stats.record_demand(obj(2), 3);
        for _ in 0..3 {
            sweep(
                NodeId(0),
                &policy,
                &stats,
                &hooks,
                &agent_stats,
                &mut pending,
                &mut cold,
                || false,
            );
        }
        assert!(pending.is_empty(), "cold demand must decay away");
    }

    #[test]
    fn cold_replicas_are_released_after_the_streak() {
        // A replica-marked copy with no read demand must be dropped
        // after exactly `release_after_sweeps` consecutive cold sweeps
        // — and a single warm sweep must reset the streak.
        let stats = Arc::new(TransferStats::default());
        stats.enable_demand_tracking();
        let released: Arc<Mutex<Vec<ObjectId>>> = Arc::new(Mutex::new(Vec::new()));
        let released2 = released.clone();
        let hooks = ReplicationHooks {
            lookup: Arc::new(|_| None),
            alive_nodes: Arc::new(Vec::new),
            pull: Arc::new(|_, _, _| true),
            list_replicas: Arc::new(move || vec![obj(4)]),
            release: Arc::new(move |objects| {
                released2.lock().extend_from_slice(objects);
                objects.len()
            }),
            observe_sweep: None,
        };
        let policy = ReplicationPolicy {
            enabled: true,
            read_threshold: 100,
            release_threshold: 1,
            release_after_sweeps: 3,
            ..ReplicationPolicy::default()
        };
        let mut pending = HashMap::new();
        let mut cold = HashMap::new();
        let agent_stats = ReplicationStats::default();
        let run = |pending: &mut HashMap<ObjectId, u64>, cold: &mut HashMap<ObjectId, u32>| {
            sweep(
                NodeId(1),
                &policy,
                &stats,
                &hooks,
                &agent_stats,
                pending,
                cold,
                || false,
            )
        };
        // Two cold sweeps: streak builds, nothing released yet.
        run(&mut pending, &mut cold);
        run(&mut pending, &mut cold);
        assert!(released.lock().is_empty());
        // A read arrives: the warm sweep resets the streak.
        stats.record_demand(obj(4), 1);
        run(&mut pending, &mut cold);
        assert!(released.lock().is_empty());
        assert!(cold.is_empty(), "warm replica must not carry a streak");
        // Three consecutive cold sweeps: released exactly once.
        run(&mut pending, &mut cold);
        run(&mut pending, &mut cold);
        run(&mut pending, &mut cold);
        assert_eq!(released.lock().clone(), vec![obj(4)]);
        assert_eq!(agent_stats.replicas_released.get(), 1);
    }

    #[test]
    fn reclamation_is_off_when_thresholds_are_zero() {
        let stats = Arc::new(TransferStats::default());
        stats.enable_demand_tracking();
        let released = Arc::new(Mutex::new(0usize));
        let released2 = released.clone();
        let hooks = ReplicationHooks {
            lookup: Arc::new(|_| None),
            alive_nodes: Arc::new(Vec::new),
            pull: Arc::new(|_, _, _| true),
            list_replicas: Arc::new(move || vec![obj(5)]),
            release: Arc::new(move |objects| {
                *released2.lock() += objects.len();
                objects.len()
            }),
            observe_sweep: None,
        };
        let policy = ReplicationPolicy {
            enabled: true,
            read_threshold: 100,
            release_threshold: 0,
            release_after_sweeps: 1,
            ..ReplicationPolicy::default()
        };
        let mut pending = HashMap::new();
        let mut cold = HashMap::new();
        let agent_stats = ReplicationStats::default();
        for _ in 0..4 {
            sweep(
                NodeId(1),
                &policy,
                &stats,
                &hooks,
                &agent_stats,
                &mut pending,
                &mut cold,
                || false,
            );
        }
        assert_eq!(*released.lock(), 0, "threshold 0 disables reclamation");
        assert_eq!(agent_stats.replicas_released.get(), 0);
    }
}
