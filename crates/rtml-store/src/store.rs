//! The object store proper: entries, waiters, pinning, LRU eviction.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

use rtml_common::error::{Error, Result};
use rtml_common::ids::{NodeId, ObjectId};
use rtml_common::metrics::Counter;

/// Configuration for one node's store.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Node this store belongs to.
    pub node: NodeId,
    /// Capacity in bytes; puts beyond this evict or fail.
    pub capacity_bytes: u64,
    /// Maximum payload bytes per transfer frame: objects larger than
    /// this leave the node's [`crate::TransferService`] as
    /// ⌈size/chunk⌉ frames streamed through the fabric's bandwidth
    /// model instead of one monolithic message. Clamped to ≥ 1.
    pub chunk_bytes: u64,
}

/// Default transfer chunk size (256 KiB).
pub const DEFAULT_CHUNK_BYTES: u64 = 256 * 1024;

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            node: NodeId(0),
            capacity_bytes: 512 * 1024 * 1024,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
        }
    }
}

struct Entry {
    data: Bytes,
    pin_count: u32,
    last_access: u64,
    /// Marked by the replication plane: this copy exists to spread read
    /// load, not because anything local asked for it. Replica entries
    /// are second-class for eviction — dropped before sole copies.
    replica: bool,
}

#[derive(Default)]
struct StoreState {
    objects: HashMap<ObjectId, Entry>,
    used_bytes: u64,
    /// Bytes held by entries with at least one pin (maintained
    /// incrementally on pin/unpin transitions). The store's admission
    /// headroom is `capacity - pinned_bytes`: everything unpinned is
    /// evictable on demand.
    pinned_bytes: u64,
    access_clock: u64,
    waiters: HashMap<ObjectId, Vec<Sender<()>>>,
    seal_listeners: Vec<Sender<ObjectId>>,
}

/// Asks the control plane whether `object` has a sealed copy on some
/// *other* node, i.e. whether this store's copy is safe to drop early.
/// Installed by the runtime ([`ObjectStore::set_replica_probe`]); called
/// with the store lock held, so implementations must not call back into
/// this store.
pub type ReplicaProbe = Arc<dyn Fn(ObjectId) -> bool + Send + Sync>;

/// Operation counters for one store.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Successful puts (new objects sealed).
    pub puts: Counter,
    /// Get hits.
    pub hits: Counter,
    /// Get misses.
    pub misses: Counter,
    /// Objects evicted under capacity pressure.
    pub evictions: Counter,
}

/// Result of a [`ObjectStore::put`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutOutcome {
    /// Whether the object was newly inserted (false: idempotent re-put).
    pub inserted: bool,
    /// Objects evicted to make room; the caller must drop their locations
    /// from the object table.
    pub evicted: Vec<ObjectId>,
}

/// A single node's in-memory object store. See the crate docs for
/// semantics.
pub struct ObjectStore {
    config: StoreConfig,
    state: Mutex<StoreState>,
    sealed_cv: Condvar,
    replica_probe: RwLock<Option<ReplicaProbe>>,
    /// Operation counters.
    pub stats: StoreStats,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new(config: StoreConfig) -> Self {
        ObjectStore {
            config,
            state: Mutex::new(StoreState::default()),
            sealed_cv: Condvar::new(),
            replica_probe: RwLock::new(None),
            stats: StoreStats::default(),
        }
    }

    /// Installs the never-evict-the-last-sealed-copy guard: before a
    /// replica-marked entry is evicted preferentially, the probe is
    /// asked whether another sealed holder exists. If not, the entry is
    /// demoted to first-class and competes under plain LRU instead —
    /// capacity still wins eventually (lineage replay is the backstop),
    /// but the last copy is never dropped *because* it was once a
    /// replica. Without a probe installed, the replica mark is trusted.
    pub fn set_replica_probe(&self, probe: ReplicaProbe) {
        *self.replica_probe.write() = Some(probe);
    }

    /// The node this store serves.
    pub fn node(&self) -> NodeId {
        self.config.node
    }

    /// Store capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.config.capacity_bytes
    }

    /// Transfer chunk size for objects leaving this store (≥ 1).
    pub fn chunk_bytes(&self) -> u64 {
        self.config.chunk_bytes.max(1)
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> u64 {
        self.state.lock().used_bytes
    }

    /// Number of objects currently held.
    pub fn len(&self) -> usize {
        self.state.lock().objects.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers a channel that receives the ID of every object sealed
    /// into this store. Used by the local scheduler to wake tasks whose
    /// dependencies just arrived.
    pub fn add_seal_listener(&self, tx: Sender<ObjectId>) {
        self.state.lock().seal_listeners.push(tx);
    }

    /// Inserts a sealed, immutable object.
    ///
    /// Idempotent for identical re-puts (lineage replay regenerates the
    /// same object IDs and bytes). Returns [`Error::StoreFull`] only when
    /// even after evicting every unpinned object the value cannot fit.
    pub fn put(&self, object: ObjectId, data: Bytes) -> Result<PutOutcome> {
        let size = data.len() as u64;
        let mut st = self.state.lock();

        if let Some(existing) = st.objects.get(&object) {
            debug_assert_eq!(
                existing.data.len(),
                data.len(),
                "object {object} re-put with different size"
            );
            return Ok(PutOutcome {
                inserted: false,
                evicted: Vec::new(),
            });
        }

        if size > self.config.capacity_bytes {
            return Err(Error::StoreFull {
                requested: size,
                available: self.config.capacity_bytes,
            });
        }

        // Evict until the new object fits. Replica-marked entries are
        // second-class: they go first (LRU among themselves), because
        // their bytes exist to spread read load and — per the probe —
        // live elsewhere too. Only when no safe replica remains does
        // plain LRU over first-class entries run.
        let probe = self.replica_probe.read().clone();
        let mut evicted = Vec::new();
        while st.used_bytes + size > self.config.capacity_bytes {
            let victim = loop {
                let replica = st
                    .objects
                    .iter()
                    .filter(|(_, e)| e.pin_count == 0 && e.replica)
                    .min_by_key(|(_, e)| e.last_access)
                    .map(|(id, _)| *id);
                let Some(id) = replica else { break None };
                if probe.as_ref().map_or(true, |p| p(id)) {
                    break Some(id);
                }
                // Last sealed copy: never evicted *as a replica*. Demote
                // to first-class so it competes under plain LRU below.
                st.objects.get_mut(&id).expect("candidate exists").replica = false;
            }
            .or_else(|| {
                st.objects
                    .iter()
                    .filter(|(_, e)| e.pin_count == 0)
                    .min_by_key(|(_, e)| e.last_access)
                    .map(|(id, _)| *id)
            });
            match victim {
                Some(id) => {
                    let entry = st.objects.remove(&id).expect("victim exists");
                    st.used_bytes -= entry.data.len() as u64;
                    evicted.push(id);
                    self.stats.evictions.inc();
                }
                None => {
                    let available = self.config.capacity_bytes - st.used_bytes;
                    return Err(Error::StoreFull {
                        requested: size,
                        available,
                    });
                }
            }
        }

        st.access_clock += 1;
        let clock = st.access_clock;
        st.objects.insert(
            object,
            Entry {
                data,
                pin_count: 0,
                last_access: clock,
                replica: false,
            },
        );
        st.used_bytes += size;
        self.stats.puts.inc();

        // Wake blocked readers and notify seal listeners.
        if let Some(waiters) = st.waiters.remove(&object) {
            for tx in waiters {
                let _ = tx.send(());
            }
        }
        st.seal_listeners.retain(|tx| tx.send(object).is_ok());
        drop(st);
        self.sealed_cv.notify_all();
        Ok(PutOutcome {
            inserted: true,
            evicted,
        })
    }

    /// Fetches an object if present, bumping its recency.
    pub fn get(&self, object: ObjectId) -> Option<Bytes> {
        let mut st = self.state.lock();
        st.access_clock += 1;
        let clock = st.access_clock;
        match st.objects.get_mut(&object) {
            Some(entry) => {
                entry.last_access = clock;
                self.stats.hits.inc();
                Some(entry.data.clone())
            }
            None => {
                self.stats.misses.inc();
                None
            }
        }
    }

    /// Whether the object is present.
    pub fn contains(&self, object: ObjectId) -> bool {
        self.state.lock().objects.contains_key(&object)
    }

    /// Blocks until `object` is sealed locally or `timeout` elapses.
    pub fn wait_local(&self, object: ObjectId, timeout: std::time::Duration) -> Result<Bytes> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let Some(entry) = st.objects.get_mut(&object) {
                self.stats.hits.inc();
                return Ok(entry.data.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(Error::Timeout);
            }
            if self.sealed_cv.wait_for(&mut st, deadline - now).timed_out() {
                // Re-check once after timeout (the object may have sealed
                // exactly at the deadline).
                if let Some(entry) = st.objects.get_mut(&object) {
                    return Ok(entry.data.clone());
                }
                return Err(Error::Timeout);
            }
        }
    }

    /// Returns a channel signalled once when `object` seals locally. If it
    /// is already present the channel fires immediately.
    pub fn subscribe_local(&self, object: ObjectId) -> Receiver<()> {
        let (tx, rx) = unbounded();
        let mut st = self.state.lock();
        if st.objects.contains_key(&object) {
            let _ = tx.send(());
        } else {
            st.waiters.entry(object).or_default().push(tx);
        }
        rx
    }

    /// Pins an object, excluding it from eviction while pinned. Returns
    /// whether the object was present.
    pub fn pin(&self, object: ObjectId) -> bool {
        let mut st = self.state.lock();
        let mut newly_pinned = 0u64;
        let present = match st.objects.get_mut(&object) {
            Some(entry) => {
                entry.pin_count += 1;
                if entry.pin_count == 1 {
                    newly_pinned = entry.data.len() as u64;
                }
                true
            }
            None => false,
        };
        st.pinned_bytes += newly_pinned;
        present
    }

    /// Releases one pin.
    pub fn unpin(&self, object: ObjectId) {
        let mut st = self.state.lock();
        let mut released = 0u64;
        if let Some(entry) = st.objects.get_mut(&object) {
            if entry.pin_count == 1 {
                released = entry.data.len() as u64;
            }
            entry.pin_count = entry.pin_count.saturating_sub(1);
        }
        st.pinned_bytes -= released;
    }

    /// Atomically drops a replica-marked, **unpinned** entry — the
    /// reclamation path. Unlike [`ObjectStore::delete`] (failure
    /// injection, ignores pins), the replica/pin checks and the removal
    /// happen under one lock, so a pin landing concurrently (a task's
    /// argument arriving) can never lose its bytes to a sweep. Returns
    /// whether the entry was dropped.
    pub fn release_replica(&self, object: ObjectId) -> bool {
        let mut st = self.state.lock();
        let droppable = st
            .objects
            .get(&object)
            .is_some_and(|e| e.replica && e.pin_count == 0);
        if droppable {
            let entry = st.objects.remove(&object).expect("checked above");
            st.used_bytes -= entry.data.len() as u64;
        }
        droppable
    }

    /// Bytes currently held by pinned entries. `capacity - pinned` is
    /// the store's admission headroom: how much could be made resident
    /// by evicting everything evictable — the budget the scheduler's
    /// prefetch admission guard checks against.
    pub fn pinned_bytes(&self) -> u64 {
        self.state.lock().pinned_bytes
    }

    /// Marks an existing entry as a replication-plane copy (second-class
    /// for eviction). Returns whether the object was present.
    pub fn mark_replica(&self, object: ObjectId) -> bool {
        let mut st = self.state.lock();
        match st.objects.get_mut(&object) {
            Some(entry) => {
                entry.replica = true;
                true
            }
            None => false,
        }
    }

    /// Whether the entry is currently marked as a replica copy.
    pub fn is_replica(&self, object: ObjectId) -> bool {
        self.state
            .lock()
            .objects
            .get(&object)
            .is_some_and(|e| e.replica)
    }

    /// IDs of every entry currently marked as a replication-plane copy
    /// — the candidate set for the demand-decay reclamation sweep.
    pub fn list_replicas(&self) -> Vec<ObjectId> {
        self.state
            .lock()
            .objects
            .iter()
            .filter(|(_, e)| e.replica)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Deletes an object regardless of pins (used by failure injection).
    /// Returns whether it was present.
    pub fn delete(&self, object: ObjectId) -> bool {
        let mut st = self.state.lock();
        if let Some(entry) = st.objects.remove(&object) {
            st.used_bytes -= entry.data.len() as u64;
            if entry.pin_count > 0 {
                st.pinned_bytes -= entry.data.len() as u64;
            }
            true
        } else {
            false
        }
    }

    /// Drops every object (node crash), returning the IDs that were held
    /// so the caller can erase their locations from the object table.
    pub fn clear(&self) -> Vec<ObjectId> {
        let mut st = self.state.lock();
        let ids: Vec<ObjectId> = st.objects.keys().copied().collect();
        st.objects.clear();
        st.used_bytes = 0;
        st.pinned_bytes = 0;
        st.waiters.clear();
        ids
    }

    /// IDs of all objects currently held.
    pub fn list(&self) -> Vec<ObjectId> {
        self.state.lock().objects.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::ids::{DriverId, TaskId};
    use std::sync::Arc;
    use std::time::Duration;

    fn obj(i: u64) -> ObjectId {
        TaskId::driver_root(DriverId::from_index(0))
            .child(i)
            .return_object(0)
    }

    fn store(capacity: u64) -> ObjectStore {
        ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: capacity,
            ..StoreConfig::default()
        })
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store(1024);
        let outcome = s.put(obj(1), Bytes::from_static(b"hello")).unwrap();
        assert!(outcome.inserted);
        assert!(outcome.evicted.is_empty());
        assert_eq!(s.get(obj(1)).unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(s.used_bytes(), 5);
        assert_eq!(s.len(), 1);
        assert!(s.contains(obj(1)));
        assert!(!s.contains(obj(2)));
        assert!(s.get(obj(2)).is_none());
    }

    #[test]
    fn double_put_is_idempotent() {
        let s = store(1024);
        assert!(s.put(obj(1), Bytes::from_static(b"data")).unwrap().inserted);
        assert!(!s.put(obj(1), Bytes::from_static(b"data")).unwrap().inserted);
        assert_eq!(s.used_bytes(), 4);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let s = store(100);
        s.put(obj(1), Bytes::from(vec![1u8; 40])).unwrap();
        s.put(obj(2), Bytes::from(vec![2u8; 40])).unwrap();
        // Touch obj(1) so obj(2) becomes LRU.
        let _ = s.get(obj(1));
        let outcome = s.put(obj(3), Bytes::from(vec![3u8; 40])).unwrap();
        assert_eq!(outcome.evicted, vec![obj(2)]);
        assert!(s.contains(obj(1)));
        assert!(!s.contains(obj(2)));
        assert!(s.contains(obj(3)));
        assert_eq!(s.stats.evictions.get(), 1);
    }

    #[test]
    fn pinned_objects_survive_eviction() {
        let s = store(100);
        s.put(obj(1), Bytes::from(vec![1u8; 60])).unwrap();
        assert!(s.pin(obj(1)));
        // obj(1) is LRU but pinned; put must fail: nothing evictable.
        let err = s.put(obj(2), Bytes::from(vec![2u8; 60])).unwrap_err();
        assert!(matches!(err, Error::StoreFull { .. }));
        s.unpin(obj(1));
        let outcome = s.put(obj(2), Bytes::from(vec![2u8; 60])).unwrap();
        assert_eq!(outcome.evicted, vec![obj(1)]);
    }

    #[test]
    fn replicas_are_evicted_before_sole_copies() {
        let s = store(100);
        s.put(obj(1), Bytes::from(vec![1u8; 40])).unwrap();
        s.put(obj(2), Bytes::from(vec![2u8; 40])).unwrap();
        // obj(1) is LRU, but obj(2) is a second-class replica: it goes
        // first even though it was touched more recently.
        assert!(s.mark_replica(obj(2)));
        assert!(s.is_replica(obj(2)));
        let outcome = s.put(obj(3), Bytes::from(vec![3u8; 40])).unwrap();
        assert_eq!(outcome.evicted, vec![obj(2)]);
        assert!(s.contains(obj(1)));
    }

    #[test]
    fn last_copy_replica_is_demoted_not_preferentially_evicted() {
        let s = store(100);
        // The probe says no other sealed holder exists: the replica is
        // the last copy, so it must not be evicted *as* a replica.
        s.set_replica_probe(Arc::new(|_| false));
        s.put(obj(1), Bytes::from(vec![1u8; 40])).unwrap();
        s.put(obj(2), Bytes::from(vec![2u8; 40])).unwrap();
        s.mark_replica(obj(2));
        let outcome = s.put(obj(3), Bytes::from(vec![3u8; 40])).unwrap();
        // Plain LRU ran instead: the older first-class entry went.
        assert_eq!(outcome.evicted, vec![obj(1)]);
        assert!(s.contains(obj(2)));
        assert!(!s.is_replica(obj(2)), "last copy demoted to first-class");
    }

    #[test]
    fn probe_allows_eviction_of_safe_replicas() {
        let s = store(100);
        s.set_replica_probe(Arc::new(|_| true));
        s.put(obj(1), Bytes::from(vec![1u8; 40])).unwrap();
        s.put(obj(2), Bytes::from(vec![2u8; 40])).unwrap();
        s.mark_replica(obj(2));
        let outcome = s.put(obj(3), Bytes::from(vec![3u8; 40])).unwrap();
        assert_eq!(outcome.evicted, vec![obj(2)]);
    }

    #[test]
    fn release_replica_only_drops_unpinned_replicas() {
        let s = store(1024);
        s.put(obj(1), Bytes::from(vec![1u8; 40])).unwrap();
        // Not a replica: refused.
        assert!(!s.release_replica(obj(1)));
        s.mark_replica(obj(1));
        // Pinned replica: refused — a task argument is never reclaimed.
        assert!(s.pin(obj(1)));
        assert!(!s.release_replica(obj(1)));
        assert!(s.contains(obj(1)));
        // Unpinned replica: dropped, bytes accounted.
        s.unpin(obj(1));
        assert!(s.release_replica(obj(1)));
        assert!(!s.contains(obj(1)));
        assert_eq!(s.used_bytes(), 0);
        // Missing object: refused, no panic.
        assert!(!s.release_replica(obj(1)));
    }

    #[test]
    fn pinned_bytes_track_pin_transitions() {
        let s = store(1024);
        s.put(obj(1), Bytes::from(vec![0u8; 100])).unwrap();
        s.put(obj(2), Bytes::from(vec![0u8; 50])).unwrap();
        assert_eq!(s.pinned_bytes(), 0);
        s.pin(obj(1));
        s.pin(obj(1)); // second pin of the same entry adds nothing
        assert_eq!(s.pinned_bytes(), 100);
        s.pin(obj(2));
        assert_eq!(s.pinned_bytes(), 150);
        s.unpin(obj(1));
        assert_eq!(s.pinned_bytes(), 150, "still one pin outstanding");
        s.unpin(obj(1));
        assert_eq!(s.pinned_bytes(), 50);
        s.delete(obj(2));
        assert_eq!(s.pinned_bytes(), 0, "deleting a pinned entry releases it");
    }

    #[test]
    fn pin_missing_object_returns_false() {
        let s = store(100);
        assert!(!s.pin(obj(9)));
        s.unpin(obj(9)); // Must not panic.
    }

    #[test]
    fn oversized_put_fails_fast() {
        let s = store(10);
        let err = s.put(obj(1), Bytes::from(vec![0u8; 11])).unwrap_err();
        assert_eq!(
            err,
            Error::StoreFull {
                requested: 11,
                available: 10
            }
        );
    }

    #[test]
    fn wait_local_blocks_until_seal() {
        let s = Arc::new(store(1024));
        let s2 = s.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            s2.put(obj(1), Bytes::from_static(b"late")).unwrap();
        });
        let data = s.wait_local(obj(1), Duration::from_secs(5)).unwrap();
        assert_eq!(&data[..], b"late");
        t.join().unwrap();
    }

    #[test]
    fn wait_local_times_out() {
        let s = store(1024);
        let err = s.wait_local(obj(1), Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, Error::Timeout);
    }

    #[test]
    fn subscribe_local_fires_immediately_if_present() {
        let s = store(1024);
        s.put(obj(1), Bytes::from_static(b"x")).unwrap();
        let rx = s.subscribe_local(obj(1));
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_ok());
    }

    #[test]
    fn subscribe_local_fires_on_seal() {
        let s = store(1024);
        let rx = s.subscribe_local(obj(1));
        s.put(obj(1), Bytes::from_static(b"x")).unwrap();
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_ok());
    }

    #[test]
    fn seal_listener_streams_ids() {
        let s = store(1024);
        let (tx, rx) = unbounded();
        s.add_seal_listener(tx);
        s.put(obj(1), Bytes::from_static(b"a")).unwrap();
        s.put(obj(2), Bytes::from_static(b"b")).unwrap();
        assert_eq!(rx.recv().unwrap(), obj(1));
        assert_eq!(rx.recv().unwrap(), obj(2));
    }

    #[test]
    fn clear_reports_contents() {
        let s = store(1024);
        s.put(obj(1), Bytes::from_static(b"a")).unwrap();
        s.put(obj(2), Bytes::from_static(b"b")).unwrap();
        let mut ids = s.clear();
        ids.sort();
        let mut expect = vec![obj(1), obj(2)];
        expect.sort();
        assert_eq!(ids, expect);
        assert_eq!(s.used_bytes(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn delete_frees_bytes() {
        let s = store(1024);
        s.put(obj(1), Bytes::from(vec![0u8; 100])).unwrap();
        assert!(s.delete(obj(1)));
        assert!(!s.delete(obj(1)));
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let s = Arc::new(store(1 << 20));
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let id = obj(t * 1000 + i);
                    s.put(id, Bytes::from(vec![0u8; 16])).unwrap();
                    assert!(s.get(id).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 400);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let s = store(1024);
        s.put(obj(1), Bytes::from_static(b"x")).unwrap();
        let _ = s.get(obj(1));
        let _ = s.get(obj(2));
        assert_eq!(s.stats.hits.get(), 1);
        assert_eq!(s.stats.misses.get(), 1);
        assert_eq!(s.stats.puts.get(), 1);
    }
}
