//! Append-only spec segments: group-committed batches of task specs with
//! a lazily built per-task-id index.
//!
//! The submit hot path used to pay one kv point-insert per spec (~0.3–0.6
//! µs each — the dominant ingest cost at batch 4096). A *segment* instead
//! commits the whole encoded batch as one immutable record appended to a
//! single kv log: one shard-lock acquisition per batch, all-or-nothing by
//! construction (the append happens entirely inside one lock hold, and
//! snapshots capture logs record-atomically). The per-task-id index over
//! segment contents is built lazily — on the first lookup that misses, or
//! on a recovery scan — so ingest pays nothing for it.
//!
//! Readers must preserve the spec-read precedence: an explicit point
//! `tspec:` key (written by [`crate::tables::task_table::TaskTable::put_spec`],
//! e.g. a resubmission with a bumped attempt counter) always shadows the
//! segment copy; the segment index itself resolves duplicate ids to the
//! latest segment.

use bytes::Bytes;
use parking_lot::Mutex;

use rtml_common::codec::{Codec, Reader, Writer};
use rtml_common::collections::FastMap;
use rtml_common::ids::{TaskId, UniqueId};
use rtml_common::task::TaskSpec;

use crate::store::KvStore;

/// The kv log key under which every spec segment is appended. The `!`
/// keeps it outside the `tspec:`/`tstate:` point-key prefixes.
pub const SEGMENT_LOG_KEY: &[u8] = b"tseg!";

fn log_key() -> Bytes {
    Bytes::from_static(SEGMENT_LOG_KEY)
}

/// Encodes a batch of specs as one immutable segment payload:
/// `varint(count)` followed by each spec's self-delimiting encoding.
pub fn encode_segment(specs: &[TaskSpec]) -> Bytes {
    let mut w = Writer::with_capacity(16 + specs.len() * 96);
    w.put_varint(specs.len() as u64);
    for spec in specs {
        spec.encode(&mut w);
    }
    w.into_bytes()
}

/// Group-commits `specs` as one segment: a single log append, hence a
/// single shard-lock acquisition, for the entire batch. The commit is
/// atomic — concurrent readers (and snapshots) observe either the whole
/// batch's specs or none of them.
pub fn commit(kv: &KvStore, specs: &[TaskSpec]) {
    if specs.is_empty() {
        return;
    }
    kv.append(log_key(), encode_segment(specs));
}

struct IndexInner {
    /// task unique id → zero-copy slice of the owning segment payload.
    entries: FastMap<UniqueId, Bytes>,
    /// How many segment records have been folded into `entries`.
    consumed: usize,
}

/// A lazily built index from task id to its encoded spec inside the
/// segment log. Cheap to share ([`crate::TaskTable`] clones share one via
/// `Arc`) and correct to rebuild from scratch: segments are immutable and
/// append-only, so a fresh index over the same kv converges to the same
/// entries.
pub struct SegmentIndex {
    inner: Mutex<IndexInner>,
}

impl Default for SegmentIndex {
    fn default() -> Self {
        SegmentIndex {
            inner: Mutex::new(IndexInner {
                entries: FastMap::default(),
                consumed: 0,
            }),
        }
    }
}

impl SegmentIndex {
    /// Creates an empty index; entries materialize on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds any segments appended since the last refresh into the
    /// index. If the log shrank underneath us (a snapshot/restore of an
    /// older kv image), the index is discarded and rebuilt from scratch
    /// — stale entries must not survive a restore.
    fn refresh(&self, kv: &KvStore, inner: &mut IndexInner) {
        let (mut records, total) = kv.read_log_range(SEGMENT_LOG_KEY, inner.consumed);
        if total < inner.consumed {
            inner.entries.clear();
            inner.consumed = 0;
            let (all, all_total) = kv.read_log_range(SEGMENT_LOG_KEY, 0);
            records = all;
            inner.consumed = all_total;
        } else {
            inner.consumed = total;
        }
        for segment in records {
            Self::fold_segment(&segment, &mut inner.entries);
        }
    }

    /// Decodes one segment payload, inserting zero-copy spec slices.
    /// Later segments win on duplicate ids when folded. A handle that
    /// already cached an earlier copy keeps serving it without
    /// re-reading the log — safe because every production re-record
    /// (e.g. the steal plane re-committing granted tasks) carries a
    /// content-identical spec, and attempt-bumped resubmissions shadow
    /// the segment copy via the `tspec:` point key.
    fn fold_segment(segment: &Bytes, entries: &mut FastMap<UniqueId, Bytes>) {
        let mut r = Reader::new(segment);
        let Ok(count) = r.take_varint() else {
            return;
        };
        for _ in 0..count {
            let before = segment.len() - r.remaining();
            let Ok(spec) = TaskSpec::decode(&mut r) else {
                // Torn or corrupt segment: drop its unread remainder
                // rather than index garbage.
                return;
            };
            let after = segment.len() - r.remaining();
            entries.insert(spec.task_id.unique(), segment.slice(before..after));
        }
    }

    /// The encoded spec for `task`, if any segment holds it.
    pub fn lookup_bytes(&self, kv: &KvStore, task: TaskId) -> Option<Bytes> {
        let mut inner = self.inner.lock();
        if let Some(bytes) = inner.entries.get(&task.unique()) {
            return Some(bytes.clone());
        }
        self.refresh(kv, &mut inner);
        inner.entries.get(&task.unique()).cloned()
    }

    /// The decoded spec for `task`, if any segment holds it.
    pub fn lookup(&self, kv: &KvStore, task: TaskId) -> Option<TaskSpec> {
        let bytes = self.lookup_bytes(kv, task)?;
        let mut r = Reader::new(&bytes);
        TaskSpec::decode(&mut r).ok()
    }

    /// Whether any segment holds a spec for `task`.
    pub fn contains(&self, kv: &KvStore, task: TaskId) -> bool {
        self.lookup_bytes(kv, task).is_some()
    }

    /// Positional membership for a batch, refreshing the index at most
    /// once (the batched implicit-`Submitted` read path).
    pub fn contains_many(&self, kv: &KvStore, tasks: &[TaskId]) -> Vec<bool> {
        let mut inner = self.inner.lock();
        let mut out: Vec<bool> = tasks
            .iter()
            .map(|t| inner.entries.contains_key(&t.unique()))
            .collect();
        if out.iter().any(|hit| !hit) {
            self.refresh(kv, &mut inner);
            for (slot, task) in out.iter_mut().zip(tasks) {
                if !*slot {
                    *slot = inner.entries.contains_key(&task.unique());
                }
            }
        }
        out
    }

    /// Every task id recorded in any segment (recovery/tooling scan).
    pub fn task_ids(&self, kv: &KvStore) -> Vec<TaskId> {
        let mut inner = self.inner.lock();
        self.refresh(kv, &mut inner);
        inner
            .entries
            .keys()
            .map(|&id| TaskId::from_unique(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::codec::encode_to_bytes;
    use rtml_common::ids::{DriverId, FunctionId};
    use std::sync::Arc;

    fn specs(base: u64, n: u64) -> Vec<TaskSpec> {
        let root = TaskId::driver_root(DriverId::from_index(7));
        (0..n)
            .map(|i| TaskSpec::simple(root.child(base + i), FunctionId::from_name("f"), vec![]))
            .collect()
    }

    #[test]
    fn commit_is_one_lock_per_batch() {
        let kv = KvStore::new(4);
        let before = kv.stats().total_locks();
        commit(&kv, &specs(0, 100));
        assert_eq!(kv.stats().total_locks() - before, 1);
    }

    #[test]
    fn lazy_index_returns_bit_identical_specs() {
        let kv = KvStore::new(4);
        let batch = specs(0, 16);
        commit(&kv, &batch);
        let index = SegmentIndex::new();
        for spec in &batch {
            assert_eq!(
                index.lookup_bytes(&kv, spec.task_id),
                Some(encode_to_bytes(spec))
            );
            assert_eq!(index.lookup(&kv, spec.task_id), Some(spec.clone()));
        }
        let root = TaskId::driver_root(DriverId::from_index(7));
        assert_eq!(index.lookup(&kv, root.child(999)), None);
    }

    #[test]
    fn index_catches_up_across_segments_and_prefers_latest() {
        let kv = KvStore::new(4);
        let first = specs(0, 4);
        commit(&kv, &first);
        // A later segment re-records the same task with a bumped attempt.
        let mut bumped = first[1].clone();
        bumped.attempt += 1;
        commit(&kv, std::slice::from_ref(&bumped));
        commit(&kv, &specs(100, 4));
        // Folding all three segments resolves the duplicate to the
        // latest copy.
        let index = SegmentIndex::new();
        assert_eq!(index.lookup(&kv, bumped.task_id), Some(bumped));
        let root = TaskId::driver_root(DriverId::from_index(7));
        assert!(index.contains(&kv, root.child(103)));
        assert_eq!(index.task_ids(&kv).len(), 8);
        // An index that is already caught up folds only the new tail.
        commit(&kv, &specs(200, 2));
        assert!(index.contains(&kv, root.child(201)));
        assert_eq!(index.task_ids(&kv).len(), 10);
    }

    #[test]
    fn contains_many_is_positional_and_refreshes_once() {
        let kv = KvStore::new(4);
        let batch = specs(0, 3);
        commit(&kv, &batch);
        let index = SegmentIndex::new();
        let root = TaskId::driver_root(DriverId::from_index(7));
        let hits = index.contains_many(&kv, &[batch[2].task_id, root.child(999), batch[0].task_id]);
        assert_eq!(hits, vec![true, false, true]);
    }

    #[test]
    fn restore_to_shorter_log_rebuilds_index() {
        let kv = Arc::new(KvStore::new(2));
        commit(&kv, &specs(0, 2));
        let snapshot = kv.full_snapshot();
        commit(&kv, &specs(2, 2));
        let index = SegmentIndex::new();
        let root = TaskId::driver_root(DriverId::from_index(7));
        assert!(index.contains(&kv, root.child(3)));
        // Roll the kv back to the first segment only: the next miss
        // triggers a refresh, which detects the shrunken log and
        // rebuilds the index rather than serving entries from the
        // discarded tail.
        kv.restore_snapshot(snapshot);
        assert!(!index.contains(&kv, root.child(50)));
        assert!(!index.contains(&kv, root.child(3)));
        assert!(index.contains(&kv, root.child(0)));
    }

    #[test]
    fn corrupt_segment_is_skipped() {
        let kv = KvStore::new(2);
        let mut w = Writer::with_capacity(8);
        w.put_varint(3); // claims 3 specs, carries none
        kv.append(Bytes::from_static(SEGMENT_LOG_KEY), w.into_bytes());
        let good = specs(0, 2);
        commit(&kv, &good);
        let index = SegmentIndex::new();
        assert_eq!(index.lookup(&kv, good[0].task_id), Some(good[0].clone()));
        assert_eq!(index.task_ids(&kv).len(), 2);
    }
}
