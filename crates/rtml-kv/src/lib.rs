//! The logically-centralized control plane for rtml (paper §3.2.1).
//!
//! The paper stores **all** system control state — the object table, task
//! table, function table, and event logs — in a sharded key-value store
//! with publish-subscribe, so that every other component is stateless and
//! recoverable by restart. The paper's prototype used Redis; this crate is
//! a from-scratch replacement providing exactly the operations the paper
//! requires:
//!
//! - exact-match get/set/delete on hashed keys,
//! - atomic read-modify-write (for location sets and state transitions),
//! - append-only logs (for lineage-ordered event streams),
//! - per-key publish-subscribe with *current value + subsequent updates*
//!   semantics (no lost-update window), and
//! - hash sharding for horizontal throughput scaling (requirement R2;
//!   experiment E7 measures ops/s against the shard count).
//!
//! # Examples
//!
//! ```
//! use rtml_kv::KvStore;
//! use bytes::Bytes;
//!
//! let kv = KvStore::new(4);
//! kv.set(Bytes::from_static(b"k"), Bytes::from_static(b"v1"));
//! let (current, updates) = kv.subscribe(Bytes::from_static(b"k"));
//! assert_eq!(current.as_deref(), Some(&b"v1"[..]));
//! kv.set(Bytes::from_static(b"k"), Bytes::from_static(b"v2"));
//! assert_eq!(&updates.recv().unwrap()[..], b"v2");
//! ```

pub mod replica;
pub mod segment;
pub mod shard;
pub mod store;
pub mod tables;

pub use replica::ReplicatedKv;
pub use segment::SegmentIndex;
pub use store::{KvStats, KvStore};
pub use tables::event_log::EventLog;
pub use tables::function_table::{FunctionInfo, FunctionTable};
pub use tables::load_digest::{DigestEntry, LoadDigest, LoadDigestTable};
pub use tables::object_table::{ObjectInfo, ObjectTable};
pub use tables::task_table::TaskTable;
pub use tables::telemetry::{TelemetryRecord, TelemetryTable};
