//! The sharded key-value façade: routes every key to a shard by hash.

use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Receiver;

use crate::shard::{fnv1a_64, Shard, FNV_OFFSET};

/// A hash-sharded, in-memory control-plane store with pub-sub.
///
/// Cloning the handle is cheap; all clones see the same store. See the
/// crate docs for the design rationale.
pub struct KvStore {
    shards: Vec<Arc<Shard>>,
}

/// Aggregate operation statistics across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvStats {
    /// Per-shard operation counts, indexed by shard.
    pub ops_per_shard: Vec<u64>,
    /// Per-shard lock acquisitions. Group-committed batches acquire
    /// once per shard per batch, so `total_ops / total_locks` is the
    /// effective commit batch size.
    pub locks_per_shard: Vec<u64>,
}

impl KvStats {
    /// Total operations across all shards.
    pub fn total_ops(&self) -> u64 {
        self.ops_per_shard.iter().sum()
    }

    /// Total lock acquisitions across all shards.
    pub fn total_locks(&self) -> u64 {
        self.locks_per_shard.iter().sum()
    }

    /// Ratio of the busiest shard to the mean — 1.0 is perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 || self.ops_per_shard.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.ops_per_shard.len() as f64;
        let max = *self.ops_per_shard.iter().max().unwrap() as f64;
        max / mean
    }
}

impl KvStore {
    /// Creates a store with `num_shards` independent shards (≥ 1).
    pub fn new(num_shards: usize) -> Arc<Self> {
        let num_shards = num_shards.max(1);
        Arc::new(KvStore {
            shards: (0..num_shards).map(|_| Arc::new(Shard::new())).collect(),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: &[u8]) -> &Shard {
        &self.shards[self.shard_index(key)]
    }

    /// Shard index a key routes to (exposed for balance diagnostics).
    /// FNV-1a/64 (shared with the shard-interior maps): a cheap 64-bit
    /// mix routes the fixed-format control-plane keys uniformly at a
    /// fraction of a 128-bit hash's cost, once per operation on the
    /// submit hot path.
    pub fn shard_index(&self, key: &[u8]) -> usize {
        (fnv1a_64(FNV_OFFSET, key) % self.shards.len() as u64) as usize
    }

    /// Point read.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.shard_for(key).get(key)
    }

    /// Point write with subscriber notification.
    pub fn set(&self, key: Bytes, value: Bytes) {
        self.shard_for(&key).set(key.clone(), value);
    }

    /// Group-committed point writes. Entries are routed to their shards
    /// and each shard's portion lands under a single lock acquisition —
    /// a batch of N writes costs at most `num_shards` lock round trips
    /// instead of N.
    pub fn set_many(&self, entries: Vec<(Bytes, Bytes)>) {
        if entries.len() <= 1 {
            for (key, value) in entries {
                self.set(key, value);
            }
            return;
        }
        let mut buckets: Vec<Vec<(Bytes, Bytes)>> = vec![Vec::new(); self.shards.len()];
        for (key, value) in entries {
            buckets[self.shard_index(&key)].push((key, value));
        }
        for (idx, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                self.shards[idx].set_many(bucket);
            }
        }
    }

    /// Batched point reads, one lock acquisition per touched shard.
    /// Results are positional: `out[i]` corresponds to `keys[i]`.
    pub fn get_many(&self, keys: &[Bytes]) -> Vec<Option<Bytes>> {
        if keys.len() <= 1 {
            return keys.iter().map(|k| self.get(k)).collect();
        }
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, key) in keys.iter().enumerate() {
            buckets[self.shard_index(key)].push(i);
        }
        let mut out = vec![None; keys.len()];
        for (idx, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let shard_keys: Vec<Bytes> = bucket.iter().map(|i| keys[*i].clone()).collect();
            for (i, value) in bucket
                .into_iter()
                .zip(self.shards[idx].get_many(&shard_keys))
            {
                out[i] = value;
            }
        }
        out
    }

    /// Batched read-modify-writes, one lock acquisition per touched
    /// shard. Per-entry semantics match [`KvStore::update`].
    pub fn update_many<F>(&self, entries: Vec<(Bytes, F)>)
    where
        F: FnOnce(Option<&Bytes>) -> Option<Bytes>,
    {
        let mut buckets: Vec<Vec<(Bytes, F)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (key, f) in entries {
            buckets[self.shard_index(&key)].push((key, f));
        }
        for (idx, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                self.shards[idx].update_many(bucket);
            }
        }
    }

    /// Writes only if vacant; returns whether the write happened.
    pub fn set_if_absent(&self, key: Bytes, value: Bytes) -> bool {
        self.shard_for(&key).set_if_absent(key.clone(), value)
    }

    /// Atomic read-modify-write (see [`Shard::update`]).
    pub fn update<F>(&self, key: Bytes, f: F) -> Option<Bytes>
    where
        F: FnOnce(Option<&Bytes>) -> Option<Bytes>,
    {
        self.shard_for(&key).update(key.clone(), f)
    }

    /// Deletes a key; returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.shard_for(key).delete(key)
    }

    /// Appends to the log at `key`.
    pub fn append(&self, key: Bytes, record: Bytes) {
        self.shard_for(&key).append(key.clone(), record);
    }

    /// Group-committed log appends: all records land on `key`'s log
    /// under one shard lock acquisition. With `retention` set the log is
    /// a ring buffer bounded to that many records; the records dropped
    /// from the front to enforce the cap are returned.
    pub fn append_many(
        &self,
        key: Bytes,
        records: Vec<Bytes>,
        retention: Option<usize>,
    ) -> Vec<Bytes> {
        self.shard_for(&key)
            .append_many(key.clone(), records, retention)
    }

    /// Reads the full log at `key`.
    pub fn read_log(&self, key: &[u8]) -> Vec<Bytes> {
        self.shard_for(key).read_log(key)
    }

    /// Length of the log at `key`.
    pub fn log_len(&self, key: &[u8]) -> usize {
        self.shard_for(key).log_len(key)
    }

    /// Reads the records of the log at `key` from position `start`
    /// onward, plus the log's total length, under one shard lock (see
    /// [`Shard::read_log_range`]).
    pub fn read_log_range(&self, key: &[u8], start: usize) -> (Vec<Bytes>, usize) {
        self.shard_for(key).read_log_range(key, start)
    }

    /// Subscribes to a key: current value plus a stream of updates.
    pub fn subscribe(&self, key: Bytes) -> (Option<Bytes>, Receiver<Bytes>) {
        self.shard_for(&key).subscribe(key.clone())
    }

    /// All point entries whose key starts with `prefix` (tooling path;
    /// scans every shard).
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Bytes, Bytes)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.scan_prefix(prefix));
        }
        out
    }

    /// All logs whose key starts with `prefix` (tooling path).
    pub fn scan_logs_prefix(&self, prefix: &[u8]) -> Vec<(Bytes, Vec<Bytes>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.scan_logs_prefix(prefix));
        }
        out
    }

    /// Total number of point keys across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether no point keys exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation statistics for throughput experiments (E7).
    pub fn stats(&self) -> KvStats {
        KvStats {
            ops_per_shard: self.shards.iter().map(|s| s.ops.get()).collect(),
            locks_per_shard: self.shards.iter().map(|s| s.locks.get()).collect(),
        }
    }

    /// Snapshot of every shard, for replication.
    pub(crate) fn full_snapshot(&self) -> Vec<(Vec<(Bytes, Bytes)>, Vec<(Bytes, Vec<Bytes>)>)> {
        self.shards.iter().map(|s| s.snapshot()).collect()
    }

    /// Restores every shard from a snapshot taken on an identically-sharded
    /// store.
    pub(crate) fn restore_snapshot(
        &self,
        snap: Vec<(Vec<(Bytes, Bytes)>, Vec<(Bytes, Vec<Bytes>)>)>,
    ) {
        assert_eq!(snap.len(), self.shards.len(), "shard count mismatch");
        for (shard, (map, logs)) in self.shards.iter().zip(snap) {
            shard.restore(map, logs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Bytes {
        Bytes::from(format!("key:{i}"))
    }

    #[test]
    fn routes_consistently() {
        let kv = KvStore::new(8);
        for i in 0..100 {
            let k = key(i);
            assert_eq!(kv.shard_index(&k), kv.shard_index(&k));
        }
    }

    #[test]
    fn spreads_keys_across_shards() {
        let kv = KvStore::new(8);
        for i in 0..1000 {
            kv.set(key(i), Bytes::from_static(b"v"));
        }
        let stats = kv.stats();
        assert!(stats.ops_per_shard.iter().all(|&n| n > 0));
        assert!(stats.imbalance() < 2.0, "imbalance {}", stats.imbalance());
    }

    #[test]
    fn get_set_roundtrip_across_shards() {
        let kv = KvStore::new(4);
        for i in 0..100 {
            kv.set(key(i), Bytes::from(format!("v{i}")));
        }
        for i in 0..100 {
            assert_eq!(kv.get(&key(i)), Some(Bytes::from(format!("v{i}"))));
        }
        assert_eq!(kv.len(), 100);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let kv = KvStore::new(0);
        assert_eq!(kv.num_shards(), 1);
        kv.set(key(1), Bytes::from_static(b"v"));
        assert!(kv.get(&key(1)).is_some());
    }

    #[test]
    fn scan_prefix_spans_shards() {
        let kv = KvStore::new(4);
        for i in 0..50 {
            kv.set(Bytes::from(format!("pfx:{i}")), Bytes::from_static(b"v"));
            kv.set(Bytes::from(format!("other:{i}")), Bytes::from_static(b"v"));
        }
        assert_eq!(kv.scan_prefix(b"pfx:").len(), 50);
    }

    #[test]
    fn concurrent_updates_are_atomic() {
        let kv = KvStore::new(4);
        let k = Bytes::from_static(b"counter");
        kv.set(k.clone(), Bytes::from(0u64.to_le_bytes().to_vec()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let kv = kv.clone();
            let k = k.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    kv.update(k.clone(), |cur| {
                        let mut a = [0u8; 8];
                        a.copy_from_slice(cur.unwrap());
                        let n = u64::from_le_bytes(a) + 1;
                        Some(Bytes::from(n.to_le_bytes().to_vec()))
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut a = [0u8; 8];
        a.copy_from_slice(&kv.get(&k).unwrap());
        assert_eq!(u64::from_le_bytes(a), 8000);
    }

    #[test]
    fn set_many_and_get_many_round_trip_across_shards() {
        let kv = KvStore::new(4);
        let entries: Vec<(Bytes, Bytes)> = (0..100)
            .map(|i| (key(i), Bytes::from(format!("v{i}"))))
            .collect();
        kv.set_many(entries);
        let keys: Vec<Bytes> = (0..110).map(key).collect();
        let got = kv.get_many(&keys);
        for (i, value) in got.iter().enumerate() {
            if i < 100 {
                assert_eq!(value.as_deref(), Some(format!("v{i}").as_bytes()));
            } else {
                assert!(value.is_none());
            }
        }
    }

    #[test]
    fn update_many_spans_shards() {
        let kv = KvStore::new(4);
        for i in 0..20 {
            kv.set(key(i), Bytes::from(vec![i as u8]));
        }
        let entries: Vec<(Bytes, _)> = (0..20)
            .map(|i| {
                (key(i), move |cur: Option<&Bytes>| {
                    let mut v = cur.unwrap().to_vec();
                    v[0] += 1;
                    Some(Bytes::from(v))
                })
            })
            .collect();
        kv.update_many(entries);
        for i in 0..20 {
            assert_eq!(kv.get(&key(i)), Some(Bytes::from(vec![i as u8 + 1])));
        }
    }

    #[test]
    fn append_many_with_retention_through_facade() {
        let kv = KvStore::new(4);
        let k = Bytes::from_static(b"log");
        let records: Vec<Bytes> = (0..10u8).map(|i| Bytes::from(vec![i])).collect();
        let dropped = kv.append_many(k.clone(), records, Some(6));
        assert_eq!(dropped.len(), 4);
        assert_eq!(&dropped[0][..], &[0u8]);
        let log = kv.read_log(&k);
        assert_eq!(log.len(), 6);
        assert_eq!(&log[0][..], &[4u8]);
    }

    #[test]
    fn subscriptions_work_through_facade() {
        let kv = KvStore::new(4);
        let (cur, rx) = kv.subscribe(Bytes::from_static(b"s"));
        assert!(cur.is_none());
        kv.set(Bytes::from_static(b"s"), Bytes::from_static(b"x"));
        assert_eq!(&rx.recv().unwrap()[..], b"x");
    }

    #[test]
    fn logs_work_through_facade() {
        let kv = KvStore::new(4);
        kv.append(Bytes::from_static(b"l"), Bytes::from_static(b"a"));
        kv.append(Bytes::from_static(b"l"), Bytes::from_static(b"b"));
        assert_eq!(kv.log_len(b"l"), 2);
        assert_eq!(kv.read_log(b"l").len(), 2);
    }
}
