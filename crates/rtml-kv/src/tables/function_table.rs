//! The function table: function ID → name and arity.
//!
//! In a multi-process deployment this table would carry serialized
//! closures; in-process we keep the callable in each worker's registry
//! (`rtml-runtime`) and store only metadata here. The metadata is still
//! load-bearing: reconstruction validates that a replayed spec's function
//! is registered, and the profiler resolves IDs back to names.

use std::sync::Arc;

use bytes::Bytes;

use rtml_common::codec::{decode_from_slice, encode_to_bytes, Codec, Reader, Writer};
use rtml_common::error::Result;
use rtml_common::ids::FunctionId;

use crate::store::KvStore;

const PREFIX: &[u8] = b"fn:";

/// Metadata for one registered remote function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionInfo {
    /// Stable ID (hash of the name).
    pub id: FunctionId,
    /// Human-readable registered name.
    pub name: String,
    /// Number of arguments the function takes.
    pub arity: u32,
}

impl Codec for FunctionInfo {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.name.encode(w);
        w.put_u32(self.arity);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(FunctionInfo {
            id: FunctionId::decode(r)?,
            name: String::decode(r)?,
            arity: r.take_u32()?,
        })
    }
}

/// Typed function-table handle.
#[derive(Clone)]
pub struct FunctionTable {
    kv: Arc<KvStore>,
}

impl FunctionTable {
    /// Creates a handle over `kv`.
    pub fn new(kv: Arc<KvStore>) -> Self {
        FunctionTable { kv }
    }

    fn key(id: FunctionId) -> Bytes {
        super::id_key(PREFIX, id.unique())
    }

    /// Registers function metadata (idempotent).
    pub fn register(&self, info: &FunctionInfo) {
        self.kv.set(Self::key(info.id), encode_to_bytes(info));
    }

    /// Looks up metadata by ID.
    pub fn get(&self, id: FunctionId) -> Option<FunctionInfo> {
        let bytes = self.kv.get(&Self::key(id))?;
        decode_from_slice(&bytes).ok()
    }

    /// Resolves an ID to its registered name (for diagnostics).
    pub fn name_of(&self, id: FunctionId) -> Option<String> {
        self.get(id).map(|info| info.name)
    }

    /// Lists all registered functions (tooling path).
    pub fn list(&self) -> Vec<FunctionInfo> {
        self.kv
            .scan_prefix(PREFIX)
            .into_iter()
            .filter_map(|(_k, v)| decode_from_slice(&v).ok())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let kv = KvStore::new(2);
        let table = FunctionTable::new(kv);
        let info = FunctionInfo {
            id: FunctionId::from_name("simulate"),
            name: "simulate".into(),
            arity: 2,
        };
        table.register(&info);
        assert_eq!(table.get(info.id), Some(info.clone()));
        assert_eq!(table.name_of(info.id).as_deref(), Some("simulate"));
        assert!(table.get(FunctionId::from_name("other")).is_none());
    }

    #[test]
    fn list_returns_all() {
        let kv = KvStore::new(2);
        let table = FunctionTable::new(kv);
        for name in ["a", "b", "c"] {
            table.register(&FunctionInfo {
                id: FunctionId::from_name(name),
                name: name.into(),
                arity: 0,
            });
        }
        let mut names: Vec<_> = table.list().into_iter().map(|f| f.name).collect();
        names.sort();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn reregistration_is_idempotent() {
        let kv = KvStore::new(2);
        let table = FunctionTable::new(kv);
        let info = FunctionInfo {
            id: FunctionId::from_name("f"),
            name: "f".into(),
            arity: 1,
        };
        table.register(&info);
        table.register(&info);
        assert_eq!(table.list().len(), 1);
    }
}
