//! Load-digest table: how sharded global schedulers keep a consistent
//! view of node capacity without cross-shard locks.
//!
//! Each global-scheduler shard places its own slice of the task keyspace
//! against node load reports that arrive on a period. Between reports a
//! shard only sees *its own* placements; work placed by sibling shards is
//! invisible, so every shard would over-place onto the node that was
//! least loaded at the last report. The digest closes that gap: after
//! every placement batch a shard group-commits its placements-since-report
//! counters to one kv key (`gsd:<shard>`), and peers fold all digests in
//! with a single [`crate::store::KvStore::get_many`] sweep. Entries are
//! versioned by the load report's `at_nanos`; a digest entry only counts
//! while its version matches the reader's current report (a fresh report
//! already includes those placements in the queue it observed).
//!
//! This is deliberately *eventually* consistent — a shard may act on a
//! digest one batch stale. Placement stays deterministic because a
//! shard's decisions are a pure function of the load view it read, and
//! load correctness is self-healing: the next report supersedes every
//! digest entry for that node.

use std::sync::Arc;

use bytes::Bytes;

use rtml_common::codec::{decode_from_slice, encode_to_bytes};
use rtml_common::ids::NodeId;
use rtml_common::impl_codec_struct;

use crate::store::KvStore;

/// Placements one shard has made onto one node since that node's load
/// report at `version`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestEntry {
    /// The node placed onto.
    pub node: NodeId,
    /// `at_nanos` of the load report the placements were decided against.
    pub version: u64,
    /// Tasks placed onto `node` since that report.
    pub placed: u64,
}

impl_codec_struct!(DigestEntry {
    node,
    version,
    placed
});

/// One shard's full digest: its placements-since-report for every node it
/// has recently placed onto.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoadDigest {
    /// Per-node counters; at most one entry per node.
    pub entries: Vec<DigestEntry>,
}

impl_codec_struct!(LoadDigest { entries });

/// Typed handle for publishing and sweeping shard load digests.
#[derive(Clone)]
pub struct LoadDigestTable {
    kv: Arc<KvStore>,
}

impl LoadDigestTable {
    /// Creates a handle over `kv`.
    pub fn new(kv: Arc<KvStore>) -> Self {
        LoadDigestTable { kv }
    }

    fn key(shard: u32) -> Bytes {
        let mut buf = [0u8; 8];
        buf[..4].copy_from_slice(b"gsd:");
        buf[4..].copy_from_slice(&shard.to_le_bytes());
        Bytes::copy_from_slice(&buf)
    }

    /// Publishes `shard`'s digest as one group-committed write.
    pub fn publish(&self, shard: u32, digest: &LoadDigest) {
        self.kv.set(Self::key(shard), encode_to_bytes(digest));
    }

    /// Reads every sibling digest (all shards except `self_shard`) in one
    /// group-committed sweep. Positions with no published digest yet are
    /// skipped.
    pub fn sweep(&self, self_shard: u32, num_shards: u32) -> Vec<LoadDigest> {
        let keys: Vec<Bytes> = (0..num_shards)
            .filter(|s| *s != self_shard)
            .map(Self::key)
            .collect();
        if keys.is_empty() {
            return Vec::new();
        }
        self.kv
            .get_many(&keys)
            .into_iter()
            .flatten()
            .filter_map(|b| decode_from_slice(&b).ok())
            .collect()
    }

    /// Clears a shard's digest (on shard shutdown or report rollover).
    pub fn clear(&self, shard: u32) {
        self.kv.delete(&Self::key(shard));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(node: u32, version: u64, placed: u64) -> LoadDigest {
        LoadDigest {
            entries: vec![DigestEntry {
                node: NodeId(node),
                version,
                placed,
            }],
        }
    }

    #[test]
    fn publish_then_sweep_sees_siblings_only() {
        let kv = KvStore::new(4);
        let table = LoadDigestTable::new(kv);
        table.publish(0, &digest(1, 100, 7));
        table.publish(1, &digest(2, 100, 3));
        table.publish(2, &digest(1, 90, 1));

        let seen = table.sweep(0, 3);
        assert_eq!(seen.len(), 2);
        assert!(seen.contains(&digest(2, 100, 3)));
        assert!(seen.contains(&digest(1, 90, 1)));
        assert!(!seen.contains(&digest(1, 100, 7)));
    }

    #[test]
    fn sweep_skips_unpublished_and_single_shard() {
        let kv = KvStore::new(2);
        let table = LoadDigestTable::new(kv);
        assert!(table.sweep(0, 4).is_empty());
        // K = 1 has no siblings: the sweep is free.
        table.publish(0, &digest(1, 1, 1));
        assert!(table.sweep(0, 1).is_empty());
    }

    #[test]
    fn clear_removes_digest() {
        let kv = KvStore::new(2);
        let table = LoadDigestTable::new(kv);
        table.publish(3, &digest(5, 1, 2));
        assert_eq!(table.sweep(0, 4).len(), 1);
        table.clear(3);
        assert!(table.sweep(0, 4).is_empty());
    }

    #[test]
    fn digest_codec_round_trips() {
        let d = LoadDigest {
            entries: vec![
                DigestEntry {
                    node: NodeId(0),
                    version: u64::MAX,
                    placed: 42,
                },
                DigestEntry {
                    node: NodeId(7),
                    version: 0,
                    placed: 0,
                },
            ],
        };
        let bytes = encode_to_bytes(&d);
        assert_eq!(decode_from_slice::<LoadDigest>(&bytes).unwrap(), d);
    }
}
