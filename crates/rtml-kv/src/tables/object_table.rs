//! The object table: object ID → size, seal state, producer task, and the
//! set of nodes currently holding a copy.
//!
//! This is the table the paper's global scheduler consults for locality
//! and the one `get`/`wait` subscribe to. The producer field is the
//! lineage edge used for reconstruction: *object → task that creates it*.
//!
//! Since the Ray-style [`ObjectId`] change, that edge normally rides
//! inside the object ID itself ([`ObjectId::producer_task`]) and no
//! record is written at submission time at all — the table only gains a
//! record when a copy is first sealed. Reads synthesize the producer from
//! the ID when the stored record predates it or carries none, so
//! consumers see the same `ObjectInfo` they always did. The explicit
//! [`ObjectTable::declare`] path remains for producer-less records
//! (driver `put`s) and for tests.

use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Receiver;

use rtml_common::codec::{decode_from_slice, encode_to_bytes, Codec, Reader, Writer};
use rtml_common::error::Result;
use rtml_common::ids::{rendezvous_rank, NodeId, ObjectId, TaskId};

use crate::store::KvStore;

const PREFIX: &[u8] = b"obj:";

/// Control-plane record for one object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Size in bytes (0 until first sealed).
    pub size: u64,
    /// Whether the object has been sealed (its value is final) anywhere.
    pub sealed: bool,
    /// Task that produces this object; `None` for driver `put`s and
    /// actor results, whose values did not come from a replayable task
    /// invocation (such objects cannot be reconstructed — the paper's
    /// lineage covers task outputs). Filled from
    /// [`ObjectId::producer_task`] on every read, so it is accurate even
    /// for records created by a bare seal.
    pub producer: Option<TaskId>,
    /// Nodes currently holding a sealed copy.
    pub locations: Vec<NodeId>,
}

impl ObjectInfo {
    /// Whether at least one sealed copy exists.
    pub fn is_available(&self) -> bool {
        self.sealed && !self.locations.is_empty()
    }

    /// The holder a consumer on `local` should pull `object` from: the
    /// top of [`ObjectInfo::holders_ranked`]. Deterministic per
    /// `(object, local)`, so concurrent consumers on one node group
    /// their fetches identically — while *different* reader nodes of a
    /// multi-holder (replicated) object fan out across holders instead
    /// of all funnelling to one.
    pub fn fetch_holder(&self, object: ObjectId, local: NodeId) -> Option<NodeId> {
        self.holders_ranked(object, local).into_iter().next()
    }

    /// Every holder of a sealed copy (excluding `local`), ranked by the
    /// shared rendezvous hash of `(object, reader)`: the first entry is
    /// the holder `local` should pull from, and the rest are the retry
    /// order when holders turn out to be dead or partitioned. With a
    /// single remote holder this degenerates to exactly the pre-
    /// replication choice.
    pub fn holders_ranked(&self, object: ObjectId, local: NodeId) -> Vec<NodeId> {
        if !self.is_available() {
            return Vec::new();
        }
        rendezvous_rank(
            object,
            local.0 as u64,
            self.locations.iter().copied().filter(|n| *n != local),
        )
    }
}

impl Codec for ObjectInfo {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.size);
        self.sealed.encode(w);
        self.producer.encode(w);
        self.locations.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(ObjectInfo {
            size: r.take_varint()?,
            sealed: bool::decode(r)?,
            producer: Option::<TaskId>::decode(r)?,
            locations: Vec::<NodeId>::decode(r)?,
        })
    }
}

/// Typed object-table handle.
#[derive(Clone)]
pub struct ObjectTable {
    kv: Arc<KvStore>,
}

impl ObjectTable {
    /// Creates a handle over `kv`.
    pub fn new(kv: Arc<KvStore>) -> Self {
        ObjectTable { kv }
    }

    fn key(object: ObjectId) -> Bytes {
        super::id_key(PREFIX, object.unique())
    }

    /// Declares an object and (optionally) its producing task.
    ///
    /// Task return objects no longer need this — their IDs embed the
    /// producer ([`ObjectId::producer_task`]) and the submission hot path
    /// writes no object records at all. Declaring is still useful to
    /// make a producer-less record exist before its value does (driver
    /// `put`s) and to pin an explicit producer in tests.
    ///
    /// Keeps an existing record's locations if the object was already
    /// declared (reconstruction re-declares).
    pub fn declare(&self, object: ObjectId, producer: Option<TaskId>) {
        // Preserves existing info; only fills in a missing producer
        // (reconstruction re-declares). Shares the batched update logic.
        self.declare_many(&[(object, producer)]);
    }

    /// Batched [`ObjectTable::declare`]: declares every `(object,
    /// producer)` pair with one lock acquisition per touched shard
    /// instead of one per object. This is the object-table half of the
    /// batched-submission group commit.
    pub fn declare_many(&self, entries: &[(ObjectId, Option<TaskId>)]) {
        if entries.is_empty() {
            return;
        }
        // Pre-encode every vacant-case record in one arena allocation:
        // in the overwhelmingly common case (fresh submission) the
        // closure just installs the prepared bytes, and only the rare
        // re-declare (reconstruction) pays a decode/re-encode.
        let fresh: Vec<ObjectInfo> = entries
            .iter()
            .map(|(_, producer)| ObjectInfo {
                size: 0,
                sealed: false,
                producer: *producer,
                locations: Vec::new(),
            })
            .collect();
        let encoded = rtml_common::codec::encode_batch_to_bytes(&fresh, 24);
        self.kv.update_many(
            entries
                .iter()
                .zip(encoded)
                .map(|((object, producer), fresh_bytes)| {
                    let producer = *producer;
                    let update = move |cur: Option<&Bytes>| {
                        if let Some(bytes) = cur {
                            if let Ok(mut info) = decode_from_slice::<ObjectInfo>(bytes) {
                                if info.producer.is_none() {
                                    info.producer = producer;
                                }
                                return Some(encode_to_bytes(&info));
                            }
                        }
                        Some(fresh_bytes)
                    };
                    (Self::key(*object), update)
                })
                .collect(),
        );
    }

    /// Records that `node` now holds a sealed copy of `object` of `size`
    /// bytes. Notifies subscribers (this is the wake-up edge for blocked
    /// `get`s and `wait`s).
    pub fn add_location(&self, object: ObjectId, node: NodeId, size: u64) {
        self.add_location_many(&[(object, size)], node);
    }

    /// Batched [`ObjectTable::add_location`]: records that `node` holds
    /// sealed copies of every `(object, size)` pair, one lock
    /// acquisition per touched shard instead of one per object — the
    /// object-table half of a multi-object fetch completion.
    pub fn add_location_many(&self, entries: &[(ObjectId, u64)], node: NodeId) {
        self.kv.update_many(
            entries
                .iter()
                .map(|(object, size)| {
                    let size = *size;
                    let producer = object.producer_task();
                    let update = move |cur: Option<&Bytes>| {
                        let mut info = cur
                            .and_then(|b| decode_from_slice::<ObjectInfo>(b).ok())
                            .unwrap_or(ObjectInfo {
                                size: 0,
                                sealed: false,
                                producer,
                                locations: Vec::new(),
                            });
                        info.sealed = true;
                        info.size = size;
                        if !info.locations.contains(&node) {
                            info.locations.push(node);
                        }
                        Some(encode_to_bytes(&info))
                    };
                    (Self::key(*object), update)
                })
                .collect(),
        );
    }

    /// Records that `node` no longer holds `object` (eviction or node
    /// failure). The record itself persists — the lineage must survive the
    /// last copy so reconstruction can find the producer.
    pub fn remove_location(&self, object: ObjectId, node: NodeId) {
        self.remove_location_many(&[object], node);
    }

    /// Batched [`ObjectTable::remove_location`]: drops `node` from every
    /// listed object's location set as one group commit — the shape of
    /// an eviction sweep or a node death.
    pub fn remove_location_many(&self, objects: &[ObjectId], node: NodeId) {
        self.kv.update_many(
            objects
                .iter()
                .map(|object| {
                    let update = move |cur: Option<&Bytes>| {
                        let bytes = cur?;
                        let mut info = decode_from_slice::<ObjectInfo>(bytes).ok()?;
                        info.locations.retain(|n| *n != node);
                        Some(encode_to_bytes(&info))
                    };
                    (Self::key(*object), update)
                })
                .collect(),
        );
    }

    /// Reads the record for `object`, synthesizing the producer from the
    /// ID when the stored record carries none.
    pub fn get(&self, object: ObjectId) -> Option<ObjectInfo> {
        let bytes = self.kv.get(&Self::key(object))?;
        let mut info: ObjectInfo = decode_from_slice(&bytes).ok()?;
        if info.producer.is_none() {
            info.producer = object.producer_task();
        }
        Some(info)
    }

    /// Batched point reads: `out[i]` is the record for `objects[i]`,
    /// with one lock acquisition per touched shard. This is the sweep
    /// `wait` and `get_many` run per readiness check.
    pub fn get_many(&self, objects: &[ObjectId]) -> Vec<Option<ObjectInfo>> {
        let keys = super::id_keys_arena(PREFIX, objects.iter().map(|o| o.unique()));
        self.kv
            .get_many(&keys)
            .into_iter()
            .zip(objects)
            .map(|(b, object)| {
                let mut info: ObjectInfo = decode_from_slice(&b?).ok()?;
                if info.producer.is_none() {
                    info.producer = object.producer_task();
                }
                Some(info)
            })
            .collect()
    }

    /// Subscribes to the record: current value plus a decoded update
    /// stream. The subscription is atomic with respect to writers.
    pub fn subscribe(&self, object: ObjectId) -> (Option<ObjectInfo>, ObjectInfoStream) {
        let (cur, rx) = self.kv.subscribe(Self::key(object));
        let current = cur.and_then(|b| {
            let mut info: ObjectInfo = decode_from_slice(&b).ok()?;
            if info.producer.is_none() {
                info.producer = object.producer_task();
            }
            Some(info)
        });
        (current, ObjectInfoStream { rx })
    }

    /// Whether a sealed copy of `object` exists anywhere.
    pub fn is_available(&self, object: ObjectId) -> bool {
        self.get(object).is_some_and(|info| info.is_available())
    }
}

/// A decoded subscription stream of [`ObjectInfo`] updates.
pub struct ObjectInfoStream {
    rx: Receiver<Bytes>,
}

impl ObjectInfoStream {
    /// Blocks until the next update or `timeout`.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<ObjectInfo> {
        loop {
            match self.rx.recv_timeout(timeout) {
                Ok(bytes) => {
                    if let Ok(info) = decode_from_slice(&bytes) {
                        return Some(info);
                    }
                    // Skip undecodable frames (foreign writes to this key
                    // are a bug, but a stuck waiter would be worse).
                }
                Err(_) => return None,
            }
        }
    }

    /// Non-blocking poll for the next update.
    pub fn try_recv(&self) -> Option<ObjectInfo> {
        while let Ok(bytes) = self.rx.try_recv() {
            if let Ok(info) = decode_from_slice(&bytes) {
                return Some(info);
            }
        }
        None
    }

    /// The raw receiver, for `select!` integration.
    pub fn receiver(&self) -> &Receiver<Bytes> {
        &self.rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::ids::DriverId;
    use std::time::Duration;

    fn ids() -> (ObjectId, TaskId) {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let task = root.child(0);
        (task.return_object(0), task)
    }

    #[test]
    fn declare_then_seal() {
        let kv = KvStore::new(2);
        let table = ObjectTable::new(kv);
        let (obj, task) = ids();
        table.declare(obj, Some(task));
        let info = table.get(obj).unwrap();
        assert!(!info.sealed);
        assert_eq!(info.producer, Some(task));
        assert!(!table.is_available(obj));

        table.add_location(obj, NodeId(1), 64);
        let info = table.get(obj).unwrap();
        assert!(info.sealed);
        assert_eq!(info.size, 64);
        assert_eq!(info.locations, vec![NodeId(1)]);
        assert!(table.is_available(obj));
    }

    #[test]
    fn add_location_is_idempotent() {
        let kv = KvStore::new(2);
        let table = ObjectTable::new(kv);
        let (obj, _) = ids();
        table.add_location(obj, NodeId(1), 64);
        table.add_location(obj, NodeId(1), 64);
        table.add_location(obj, NodeId(2), 64);
        let info = table.get(obj).unwrap();
        assert_eq!(info.locations, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn remove_location_preserves_lineage() {
        let kv = KvStore::new(2);
        let table = ObjectTable::new(kv);
        let (obj, task) = ids();
        table.declare(obj, Some(task));
        table.add_location(obj, NodeId(1), 8);
        table.remove_location(obj, NodeId(1));
        let info = table.get(obj).unwrap();
        assert!(info.locations.is_empty());
        assert!(!info.is_available());
        // The producer edge must survive losing the last copy.
        assert_eq!(info.producer, Some(task));
    }

    #[test]
    fn declare_after_seal_keeps_locations() {
        let kv = KvStore::new(2);
        let table = ObjectTable::new(kv);
        let (obj, task) = ids();
        table.add_location(obj, NodeId(3), 16);
        table.declare(obj, Some(task));
        let info = table.get(obj).unwrap();
        assert_eq!(info.locations, vec![NodeId(3)]);
        assert_eq!(info.producer, Some(task));
    }

    #[test]
    fn declare_many_matches_single_declares() {
        let kv = KvStore::new(4);
        let table = ObjectTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(0));
        let entries: Vec<(ObjectId, Option<TaskId>)> = (0..12)
            .map(|i| {
                let task = root.child(i);
                (task.return_object(0), Some(task))
            })
            .collect();
        // One object already sealed before the batch declaration: its
        // locations must survive and its producer must be filled in.
        table.add_location(entries[3].0, NodeId(5), 32);
        table.declare_many(&entries);
        for (object, producer) in &entries {
            let info = table.get(*object).unwrap();
            assert_eq!(info.producer, *producer);
        }
        let sealed = table.get(entries[3].0).unwrap();
        assert_eq!(sealed.locations, vec![NodeId(5)]);
        assert!(sealed.sealed);
    }

    #[test]
    fn add_and_remove_location_many_match_singles() {
        let kv = KvStore::new(4);
        let table = ObjectTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(0));
        let entries: Vec<(ObjectId, u64)> = (0..12)
            .map(|i| (root.child(i).return_object(0), 8 + i))
            .collect();
        table.add_location_many(&entries, NodeId(2));
        for (object, size) in &entries {
            let info = table.get(*object).unwrap();
            assert!(info.sealed);
            assert_eq!(info.size, *size);
            assert_eq!(info.locations, vec![NodeId(2)]);
        }
        let objects: Vec<ObjectId> = entries.iter().map(|(o, _)| *o).collect();
        table.remove_location_many(&objects[..6], NodeId(2));
        for (i, object) in objects.iter().enumerate() {
            let info = table.get(*object).unwrap();
            if i < 6 {
                assert!(info.locations.is_empty());
                assert!(info.sealed, "lineage record must survive the last copy");
            } else {
                assert_eq!(info.locations, vec![NodeId(2)]);
            }
        }
    }

    #[test]
    fn get_many_is_positional_across_shards() {
        let kv = KvStore::new(4);
        let table = ObjectTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(0));
        let objects: Vec<ObjectId> = (0..20).map(|i| root.child(i).return_object(0)).collect();
        for (i, object) in objects.iter().enumerate() {
            if i % 2 == 0 {
                table.add_location(*object, NodeId(1), i as u64);
            }
        }
        let infos = table.get_many(&objects);
        for (i, info) in infos.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(info.as_ref().unwrap().size, i as u64);
            } else {
                assert!(info.is_none());
            }
        }
    }

    #[test]
    fn holders_ranked_excludes_local_and_spreads_readers() {
        let kv = KvStore::new(2);
        let table = ObjectTable::new(kv);
        let (obj, _) = ids();
        for node in [NodeId(1), NodeId(2), NodeId(3)] {
            table.add_location(obj, node, 8);
        }
        let info = table.get(obj).unwrap();
        // A holder never fetches from itself.
        for reader in [NodeId(1), NodeId(2), NodeId(3)] {
            let ranked = info.holders_ranked(obj, reader);
            assert_eq!(ranked.len(), 2);
            assert!(!ranked.contains(&reader));
            // Deterministic per (object, reader).
            assert_eq!(ranked, info.holders_ranked(obj, reader));
        }
        // Distinct readers spread over the holder set instead of all
        // funnelling to one node.
        let picks: std::collections::HashSet<NodeId> = (10..40)
            .map(|reader| info.fetch_holder(obj, NodeId(reader)).unwrap())
            .collect();
        assert!(picks.len() >= 2, "no spread: {picks:?}");
    }

    #[test]
    fn holders_ranked_is_empty_until_sealed() {
        let kv = KvStore::new(2);
        let table = ObjectTable::new(kv);
        let (obj, task) = ids();
        table.declare(obj, Some(task));
        let info = table.get(obj).unwrap();
        assert!(info.holders_ranked(obj, NodeId(5)).is_empty());
        assert_eq!(info.fetch_holder(obj, NodeId(5)), None);
    }

    #[test]
    fn subscription_wakes_on_seal() {
        let kv = KvStore::new(2);
        let table = ObjectTable::new(kv);
        let (obj, task) = ids();
        table.declare(obj, Some(task));
        let (cur, stream) = table.subscribe(obj);
        assert!(cur.is_some());
        assert!(!cur.unwrap().sealed);

        let t2 = table.clone();
        std::thread::spawn(move || {
            t2.add_location(obj, NodeId(0), 10);
        });
        let info = stream.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(info.sealed);
    }

    #[test]
    fn seal_without_declare_still_has_lineage() {
        // The submission hot path writes no object records: the first
        // record an object gets comes from its seal. The producer edge
        // must still be there — it rides inside the ID.
        let kv = KvStore::new(2);
        let table = ObjectTable::new(kv);
        let (obj, task) = ids();
        table.add_location(obj, NodeId(4), 32);
        let info = table.get(obj).unwrap();
        assert_eq!(info.producer, Some(task));
        assert_eq!(
            table.get_many(&[obj])[0].as_ref().unwrap().producer,
            Some(task)
        );
        let (cur, _stream) = table.subscribe(obj);
        assert_eq!(cur.unwrap().producer, Some(task));
        // Losing the last copy keeps the edge (it is not erasable).
        table.remove_location(obj, NodeId(4));
        assert_eq!(table.get(obj).unwrap().producer, Some(task));
    }

    #[test]
    fn missing_object_is_none() {
        let kv = KvStore::new(2);
        let table = ObjectTable::new(kv);
        let (obj, _) = ids();
        assert!(table.get(obj).is_none());
        assert!(!table.is_available(obj));
    }
}
