//! The event log: append-only, per-(node, component) streams of
//! [`Event`]s, spread across control-plane shards.
//!
//! The paper keeps event logs in the centralized control plane precisely
//! so that profiling and debugging tools (R7) can reconstruct a global
//! timeline without touching the data path. Appends go to a key derived
//! from the emitting node and component, so high-rate logging scales with
//! the shard count like every other control-plane write.
//!
//! Two throughput provisions keep logging off the hot path's back:
//! batched submission appends a whole batch of events with one shard
//! lock acquisition ([`EventLog::append_many`]), and a configurable
//! **retention cap** turns each stream into a ring buffer so sustained
//! throughput runs do not grow control-plane memory without bound. The
//! number of records dropped to enforce the cap is counted and exposed,
//! so profiling output can state when its view is partial.

use std::sync::Arc;

use bytes::Bytes;

use rtml_common::codec::{decode_from_slice, Codec, Reader, Writer};
use rtml_common::event::{Component, Event};
use rtml_common::ids::NodeId;
use rtml_common::metrics::Counter;

use crate::store::KvStore;

const PREFIX: &[u8] = b"ev:";

/// Typed event-log handle.
#[derive(Clone)]
pub struct EventLog {
    kv: Arc<KvStore>,
    enabled: bool,
    /// Maximum records kept per (node, component) stream; `None` means
    /// unbounded (the seed behaviour).
    retention: Option<usize>,
    /// Records dropped across all streams to enforce the retention cap.
    /// Shared across clones so every handle reports the same total.
    dropped: Arc<Counter>,
}

impl EventLog {
    /// Creates an enabled, unbounded event log over `kv`.
    pub fn new(kv: Arc<KvStore>) -> Self {
        EventLog {
            kv,
            enabled: true,
            retention: None,
            dropped: Arc::new(Counter::new()),
        }
    }

    /// Creates a disabled log: appends become no-ops. Used by benchmarks
    /// that want to exclude logging cost from a measurement.
    pub fn disabled(kv: Arc<KvStore>) -> Self {
        EventLog {
            kv,
            enabled: false,
            retention: None,
            dropped: Arc::new(Counter::new()),
        }
    }

    /// Bounds every stream to at most `cap` records, ring-buffer style:
    /// the oldest records are dropped as new ones land, and the events
    /// they contained are counted in [`EventLog::dropped_count`]. A
    /// record is one `append` (one event) or one `append_many` frame
    /// (a batch), so memory per stream is bounded by `cap` x the
    /// largest batch. `None` removes the bound.
    pub fn with_retention(mut self, cap: Option<usize>) -> Self {
        self.retention = cap;
        self
    }

    /// Whether appends are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The per-stream retention cap, if any.
    pub fn retention(&self) -> Option<usize> {
        self.retention
    }

    /// Total records dropped to enforce the retention cap, across all
    /// streams and all clones of this handle.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.get()
    }

    fn key(node: NodeId, component: Component) -> Bytes {
        let mut v = Vec::with_capacity(PREFIX.len() + 5);
        v.extend_from_slice(PREFIX);
        v.extend_from_slice(&node.0.to_le_bytes());
        v.push(match component {
            Component::Driver => 0,
            Component::Worker => 1,
            Component::LocalScheduler => 2,
            Component::GlobalScheduler => 3,
            Component::ObjectStore => 4,
            Component::Supervisor => 5,
            Component::FetchAgent => 6,
            Component::ReplicationAgent => 7,
        });
        Bytes::from(v)
    }

    /// Appends an event attributed to `node` (a frame of one).
    pub fn append(&self, node: NodeId, event: Event) {
        if !self.enabled {
            return;
        }
        self.append_frame(
            Self::key(node, event.component),
            std::slice::from_ref(&event),
        );
    }

    /// Group-commits a batch of events attributed to `node`: events for
    /// the same component are encoded into **one frame record** and land
    /// on their stream with one shard lock acquisition — the per-event
    /// cost of logging a batch submission collapses into a shared buffer
    /// append. Readers decode frames transparently.
    pub fn append_many(&self, node: NodeId, events: Vec<Event>) {
        if !self.enabled || events.is_empty() {
            return;
        }
        // Batches are almost always single-component (one submitter);
        // frame runs of equal components so mixed batches still commit
        // in per-stream order.
        let mut run_start = 0;
        for i in 1..=events.len() {
            if i == events.len() || events[i].component != events[run_start].component {
                let component = events[run_start].component;
                self.append_frame(Self::key(node, component), &events[run_start..i]);
                run_start = i;
            }
        }
    }

    /// Encodes `events` as one length-prefixed frame record and appends
    /// it, charging any records the retention cap evicted to the dropped
    /// counter (by their event counts, read from the frame headers).
    fn append_frame(&self, key: Bytes, events: &[Event]) {
        let mut w = Writer::with_capacity(24 * events.len() + 4);
        w.put_varint(events.len() as u64);
        for event in events {
            event.encode(&mut w);
        }
        let evicted = self
            .kv
            .append_many(key, vec![w.into_bytes()], self.retention);
        if !evicted.is_empty() {
            let events: u64 = evicted.iter().map(|r| Self::frame_len(r) as u64).sum();
            self.dropped.add(events);
        }
    }

    /// Number of events in an encoded frame (its leading varint).
    fn frame_len(record: &[u8]) -> usize {
        Reader::new(record).take_varint().unwrap_or(0) as usize
    }

    /// Decodes a frame record into its events.
    fn decode_frame(record: &[u8]) -> Vec<Event> {
        decode_from_slice::<Vec<Event>>(record).unwrap_or_default()
    }

    /// Reads all events from one (node, component) stream, in append
    /// order.
    pub fn read(&self, node: NodeId, component: Component) -> Vec<Event> {
        self.kv
            .read_log(&Self::key(node, component))
            .iter()
            .flat_map(|b| Self::decode_frame(b))
            .collect()
    }

    /// Reads every event in the system, sorted by timestamp. Tooling path.
    pub fn read_all(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .kv
            .scan_logs_prefix(PREFIX)
            .into_iter()
            .flat_map(|(_k, records)| records)
            .flat_map(|b| Self::decode_frame(&b))
            .collect();
        events.sort_by_key(|e| e.at_nanos);
        events
    }

    /// Total number of events recorded.
    pub fn len(&self) -> usize {
        self.kv
            .scan_logs_prefix(PREFIX)
            .iter()
            .flat_map(|(_k, records)| records.iter())
            .map(|b| Self::frame_len(b))
            .sum()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::event::EventKind;
    use rtml_common::ids::{DriverId, TaskId};

    fn ev(component: Component, nanos: u64) -> Event {
        let root = TaskId::driver_root(DriverId::from_index(0));
        Event {
            at_nanos: nanos,
            component,
            kind: EventKind::TaskSubmitted {
                task: root.child(nanos),
            },
        }
    }

    #[test]
    fn append_and_read_per_stream() {
        let kv = KvStore::new(4);
        let log = EventLog::new(kv);
        log.append(NodeId(0), ev(Component::Worker, 1));
        log.append(NodeId(0), ev(Component::Worker, 2));
        log.append(NodeId(1), ev(Component::Worker, 3));
        let events = log.read(NodeId(0), Component::Worker);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at_nanos, 1);
        assert_eq!(log.read(NodeId(1), Component::Worker).len(), 1);
        assert!(log.read(NodeId(2), Component::Worker).is_empty());
    }

    #[test]
    fn read_all_sorts_by_time() {
        let kv = KvStore::new(4);
        let log = EventLog::new(kv);
        log.append(NodeId(1), ev(Component::LocalScheduler, 30));
        log.append(NodeId(0), ev(Component::Worker, 10));
        log.append(NodeId(2), ev(Component::GlobalScheduler, 20));
        let all = log.read_all();
        assert_eq!(all.len(), 3);
        let times: Vec<u64> = all.iter().map(|e| e.at_nanos).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn disabled_log_drops_appends() {
        let kv = KvStore::new(4);
        let log = EventLog::disabled(kv);
        assert!(!log.is_enabled());
        log.append(NodeId(0), ev(Component::Worker, 1));
        log.append_many(NodeId(0), vec![ev(Component::Worker, 2)]);
        assert!(log.is_empty());
    }

    #[test]
    fn append_many_preserves_order_and_components() {
        let kv = KvStore::new(4);
        let log = EventLog::new(kv);
        log.append_many(
            NodeId(0),
            vec![
                ev(Component::Driver, 1),
                ev(Component::Driver, 2),
                ev(Component::Worker, 3),
                ev(Component::Driver, 4),
            ],
        );
        let driver: Vec<u64> = log
            .read(NodeId(0), Component::Driver)
            .iter()
            .map(|e| e.at_nanos)
            .collect();
        assert_eq!(driver, vec![1, 2, 4]);
        assert_eq!(log.read(NodeId(0), Component::Worker).len(), 1);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn retention_caps_streams_and_counts_drops() {
        let kv = KvStore::new(4);
        let log = EventLog::new(kv).with_retention(Some(5));
        assert_eq!(log.retention(), Some(5));
        for i in 0..12 {
            log.append(NodeId(0), ev(Component::Worker, i));
        }
        let events = log.read(NodeId(0), Component::Worker);
        assert_eq!(events.len(), 5);
        // The survivors are the newest five, in order.
        let times: Vec<u64> = events.iter().map(|e| e.at_nanos).collect();
        assert_eq!(times, vec![7, 8, 9, 10, 11]);
        assert_eq!(log.dropped_count(), 7);
        // Clones share the drop counter. A batch lands as one frame
        // record, so it evicts one single-event record here.
        let clone = log.clone();
        clone.append_many(
            NodeId(0),
            (12..15).map(|i| ev(Component::Worker, i)).collect(),
        );
        assert_eq!(log.dropped_count(), 8);
        let events = log.read(NodeId(0), Component::Worker);
        assert_eq!(events.len(), 7); // 4 surviving singles + 3 framed
        assert_eq!(events.last().unwrap().at_nanos, 14);
    }
}
